//! Cross-crate integration: the paper's storyline exercised through the
//! public umbrella API only.

use redo_recovery::checker::theorems::check_history;
use redo_recovery::theory::explain::{all_explaining_prefixes, find_explaining_prefix};
use redo_recovery::theory::history::examples as paper;
use redo_recovery::theory::history::History;
use redo_recovery::theory::invariant::recovery_invariant;
use redo_recovery::theory::prelude::*;
use redo_recovery::theory::recovery::{analyze_noop, redo_always};
use redo_recovery::theory::replay::exists_recovery_subset;
use redo_recovery::workload::{Shape, WorkloadSpec};

fn ctx(h: &History) -> (ConflictGraph, InstallationGraph, StateGraph, Log) {
    let cg = ConflictGraph::generate(h);
    let ig = InstallationGraph::from_conflict(&cg);
    let sg = StateGraph::from_conflict(h, &cg, &State::zeroed());
    let log = Log::from_history(h);
    (cg, ig, sg, log)
}

#[test]
fn the_full_scenario1_story() {
    // The paper's opening: violating a read-write edge is fatal, and the
    // theory knows it three different ways.
    let h = paper::scenario1();
    let (cg, ig, sg, log) = ctx(&h);
    let bad = State::from_pairs([(Var(1), Value(2))]);

    // 1. Operationally: no replay subset works.
    assert!(exists_recovery_subset(&h, &sg, &bad).is_none());
    // 2. Structurally: no explaining prefix exists.
    assert!(find_explaining_prefix(&cg, &ig, &sg, &bad, 1_000).is_none());
    // 3. Via the invariant: whatever redo set you pick, it fails.
    for mask in 0..4u32 {
        let redo = NodeSet::from_indices(2, (0..2).filter(|i| mask >> i & 1 == 1));
        assert!(
            recovery_invariant(&cg, &ig, &sg, &log, &redo, &bad).is_err(),
            "redo set {redo:?} should not satisfy the invariant"
        );
    }
}

#[test]
fn the_full_scenario2_story() {
    // Write-read edges may be violated: {A} installed is fine, and the
    // abstract recovery procedure with the right redo test fixes it.
    let h = paper::scenario2();
    let (cg, ig, sg, log) = ctx(&h);
    let state = State::from_pairs([(Var(0), Value(3))]);
    let outcome = recover(
        &h,
        &state,
        &log,
        &NodeSet::new(2),
        analyze_noop,
        |op, _, _, _| op.id() == OpId(0),
    );
    assert_eq!(outcome.state, sg.final_state());
    recovery_invariant(&cg, &ig, &sg, &log, &outcome.redo_set, &state).unwrap();
}

#[test]
fn the_full_scenario3_story() {
    // Unexposed garbage is harmless; redo-everything from the partial
    // state diverges unless guided.
    let h = paper::scenario3();
    let (cg, ig, sg, log) = ctx(&h);
    let garbage = State::from_pairs([(Var(0), Value(12345)), (Var(1), Value(1))]);
    // Redo only D.
    let outcome = recover(
        &h,
        &garbage,
        &log,
        &NodeSet::new(2),
        analyze_noop,
        |op, _, _, _| op.id() == OpId(1),
    );
    assert_eq!(outcome.state, sg.final_state());
    recovery_invariant(&cg, &ig, &sg, &log, &outcome.redo_set, &garbage).unwrap();
    // Redo-everything would violate the invariant from this state (C is
    // not applicable: it would read the garbage x).
    let all = NodeSet::full(2);
    assert!(recovery_invariant(&cg, &ig, &sg, &log, &all, &garbage).is_err());
}

#[test]
fn figure5_extra_state_is_real() {
    // The installation graph admits one more prefix than the conflict
    // graph, and the extra {P} state is explainable + recoverable.
    let h = paper::figure4();
    let (cg, ig, sg, _) = ctx(&h);
    assert_eq!(cg.dag().count_prefixes(100), Some(4));
    assert_eq!(ig.count_prefixes(100), Some(5));
    let p_only = NodeSet::from_indices(3, [1]);
    assert!(ig.is_prefix(&p_only) && !cg.dag().is_prefix(&p_only));
    let state = sg.state_determined_by(&p_only);
    assert!(!all_explaining_prefixes(&cg, &ig, &sg, &state, 100).is_empty());
    assert!(potentially_recoverable(&h, &cg, &sg, &p_only, &state));
}

#[test]
fn redo_all_recovers_any_conflict_prefix_state() {
    // Logical/physical style: from any conflict-prefix state with a
    // checkpoint covering it, redo-everything works.
    for seed in 0..5 {
        let h = WorkloadSpec {
            n_ops: 20,
            n_vars: 6,
            ..Default::default()
        }
        .generate(seed);
        let (cg, ig, sg, log) = ctx(&h);
        for cut in [0, 7, 20] {
            let ckpt = NodeSet::from_indices(h.len(), 0..cut);
            let state = sg.state_determined_by(&ckpt);
            let outcome = recover(&h, &state, &log, &ckpt, analyze_noop, redo_always);
            assert_eq!(outcome.state, sg.final_state(), "seed {seed} cut {cut}");
            recovery_invariant(&cg, &ig, &sg, &log, &outcome.redo_set, &state).unwrap();
        }
    }
}

#[test]
fn checker_validates_chain_and_blind_families() {
    for shape in [Shape::Chain, Shape::Blind, Shape::ReadModifyWrite] {
        for seed in 0..3 {
            let h = WorkloadSpec {
                n_ops: 5,
                n_vars: 3,
                max_reads: 1,
                max_writes: 1,
                blind_fraction: 0.5,
                skew: 0.0,
                shape,
            }
            .generate(seed);
            check_history(&h, 50_000, 50_000)
                .unwrap_or_else(|c| panic!("{shape:?} seed {seed}: {c}"));
        }
    }
}

#[test]
fn log_order_flexibility_lemma1() {
    // A conflict-consistent permuted log is as good as the invocation
    // order: recovery over it reaches the same state.
    let h = paper::figure4();
    let (cg, _, sg, _) = ctx(&h);
    cg.for_each_linear_extension(100, |order| {
        let log = Log::from_order(order);
        log.validate_against(&cg).unwrap();
        let outcome = recover(
            &h,
            &State::zeroed(),
            &log,
            &NodeSet::new(3),
            analyze_noop,
            redo_always,
        );
        assert_eq!(outcome.state, sg.final_state());
    })
    .unwrap();
}
