//! The checker must be able to say *no*: exhaustive and harness-based
//! audits against the deliberately broken methods.

use redo_recovery::checker::exhaustive::explore;
use redo_recovery::methods::broken::{LyingCheckpoint, SkippyRedo};
use redo_recovery::methods::harness::{run, HarnessConfig, HarnessFailure};
use redo_recovery::methods::physiological::Physiological;
use redo_recovery::workload::pages::{PageOp, PageWorkloadSpec};

fn tiny(seed: u64) -> Vec<PageOp> {
    PageWorkloadSpec {
        n_ops: 4,
        n_pages: 2,
        slots_per_page: 4,
        max_writes: 1,
        ..Default::default()
    }
    .generate(seed)
}

#[test]
fn exhaustive_exploration_catches_the_off_by_one_redo_test() {
    // Some schedule among the exhaustively explored ones must expose the
    // skipped record; the correct method passes the very same schedules.
    let mut caught = 0;
    for seed in 0..4 {
        let ops = tiny(seed);
        assert!(
            explore(&Physiological, &ops, 4, 100_000).is_ok(),
            "reference method must be clean on seed {seed}"
        );
        if explore(&SkippyRedo, &ops, 4, 100_000).is_err() {
            caught += 1;
        }
    }
    assert!(caught > 0, "no schedule exposed the off-by-one redo test");
}

#[test]
fn harness_catches_the_lying_checkpoint() {
    // The exhaustive explorer never takes checkpoints (it explores
    // flush schedules), so the checkpoint bug needs the harness, whose
    // runs do checkpoint. The same audit that passes the four correct
    // methods must reject this one.
    let mut caught = 0;
    for seed in 0..6 {
        let ops = PageWorkloadSpec {
            n_ops: 80,
            n_pages: 5,
            ..Default::default()
        }
        .generate(seed);
        let cfg = HarnessConfig {
            checkpoint_every: Some(9),
            crash_every: Some(14),
            chaos: Some((0.9, 0.5)),
            seed,
            audit: true,
            slots_per_page: 8,
            pool_capacity: None,
            fault: None,
            ..Default::default()
        };
        match run(&LyingCheckpoint, &ops, &cfg) {
            Err(HarnessFailure::StateMismatch { .. } | HarnessFailure::Invariant { .. }) => {
                caught += 1;
            }
            Err(other) => panic!("unexpected failure class: {other}"),
            Ok(_) => {}
        }
    }
    assert!(
        caught > 0,
        "the harness must expose the non-flushing checkpoint"
    );
}

#[test]
fn violation_reports_name_a_concrete_schedule() {
    // The failure must carry an actionable witness: the flush actions
    // that led to the bad crash.
    for seed in 0..8 {
        if let Err(e) = explore(&SkippyRedo, &tiny(seed), 4, 100_000) {
            assert!(!format!("{e}").is_empty(), "violation display must render");
            // The schedule is replayable: it is a plain Vec of actions.
            let _actions = e.schedule;
            return;
        }
    }
    panic!("expected at least one violating seed");
}
