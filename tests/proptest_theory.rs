//! Property-based tests of the theory core: the paper's lemmas and
//! theorems over proptest-generated histories, and the graph/set data
//! structures against reference models.

use proptest::collection::vec;
use proptest::prelude::*;
use redo_recovery::theory::conflict::ConflictGraph;
use redo_recovery::theory::explain::explains;
use redo_recovery::theory::exposed::{is_exposed, is_exposed_by_graph};
use redo_recovery::theory::graph::{Dag, EdgeKinds, NodeSet};
use redo_recovery::theory::history::History;
use redo_recovery::theory::installation::InstallationGraph;
use redo_recovery::theory::op::{OpId, Operation};
use redo_recovery::theory::replay::{potentially_recoverable, replay_uninstalled};
use redo_recovery::theory::schedule::{replay_parallel, RedoSchedule};
use redo_recovery::theory::state::{State, Value, Var};
use redo_recovery::theory::state_graph::StateGraph;
use redo_recovery::theory::{CoverageFault, Error};
use std::collections::BTreeSet;

/// A proptest strategy for small operations over `n_vars` variables.
fn arb_operation(n_vars: u32) -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (
        vec(0..n_vars, 0..3usize), // reads
        vec(0..n_vars, 1..3usize), // writes
    )
}

fn build_history(specs: &[(Vec<u32>, Vec<u32>)], seed: u64) -> History {
    let ops = specs
        .iter()
        .enumerate()
        .map(|(i, (reads, writes))| {
            let mut b = Operation::builder(OpId(i as u32));
            let mut targets: Vec<u32> = writes.clone();
            targets.sort_unstable();
            targets.dedup();
            for &w in &targets {
                let mut parts = vec![
                    redo_recovery::theory::expr::Expr::constant(seed ^ ((i as u64) << 24)),
                    redo_recovery::theory::expr::Expr::constant(u64::from(w)),
                ];
                parts.extend(
                    reads
                        .iter()
                        .map(|&r| redo_recovery::theory::expr::Expr::read(Var(r))),
                );
                b = b.assign(Var(w), redo_recovery::theory::expr::Expr::mix(parts));
            }
            for &r in reads {
                b = b.declare_read(Var(r));
            }
            b.build().expect("valid")
        })
        .collect();
    History::new(ops).expect("sequential")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 1: every linear extension of the conflict graph regenerates
    /// exactly the same graph.
    #[test]
    fn lemma1_linear_extensions_regenerate(
        specs in vec(arb_operation(4), 1..7),
        seed in any::<u64>(),
    ) {
        let h = build_history(&specs, seed);
        let cg = ConflictGraph::generate(&h);
        cg.for_each_linear_extension(200, |order| {
            let cg2 = ConflictGraph::generate_from_order(&h, order);
            assert_eq!(&cg, &cg2);
        });
    }

    /// The two exposure implementations (fast accessor-chain path and
    /// literal graph-minimality path) agree on every subset.
    #[test]
    fn exposure_implementations_agree(
        specs in vec(arb_operation(3), 1..6),
        seed in any::<u64>(),
        mask in any::<u64>(),
    ) {
        let h = build_history(&specs, seed);
        let cg = ConflictGraph::generate(&h);
        let n = h.len();
        let set = NodeSet::from_indices(n, (0..n).filter(|i| mask >> i & 1 == 1));
        for x in cg.vars().collect::<Vec<_>>() {
            prop_assert_eq!(
                is_exposed(&cg, &set, x),
                is_exposed_by_graph(&cg, &set, x),
                "var {:?} set {:?}", x, set
            );
        }
    }

    /// Lemma 2: the prefix induced by the first `i` operations
    /// determines exactly the `i`-th state of the sequence.
    #[test]
    fn lemma2_prefix_states(
        specs in vec(arb_operation(4), 1..8),
        seed in any::<u64>(),
    ) {
        let h = build_history(&specs, seed);
        let s0 = State::zeroed();
        let sg = StateGraph::conflict_state_graph(&h, &s0);
        let states = h.states(&s0);
        for (i, expected) in states.iter().enumerate() {
            let prefix = NodeSet::from_indices(h.len(), 0..i);
            prop_assert_eq!(&sg.state_determined_by(&prefix), expected);
        }
    }

    /// Theorem 3 on arbitrary installation prefixes: determined states
    /// are explained and replay to the final state.
    #[test]
    fn theorem3_on_generated_histories(
        specs in vec(arb_operation(4), 1..7),
        seed in any::<u64>(),
    ) {
        let h = build_history(&specs, seed);
        let s0 = State::zeroed();
        let cg = ConflictGraph::generate(&h);
        let ig = InstallationGraph::from_conflict(&cg);
        let sg = StateGraph::from_conflict(&h, &cg, &s0);
        ig.dag().for_each_prefix(500, |p| {
            let state = sg.state_determined_by(p);
            assert!(explains(&cg, &sg, p, &state));
            assert!(potentially_recoverable(&h, &cg, &sg, p, &state));
        });
    }

    /// Conflict prefixes are installation prefixes, and the installation
    /// graph never has more edges than the conflict graph.
    #[test]
    fn installation_weakens_conflict(
        specs in vec(arb_operation(4), 1..8),
        seed in any::<u64>(),
    ) {
        let h = build_history(&specs, seed);
        let cg = ConflictGraph::generate(&h);
        let ig = InstallationGraph::from_conflict(&cg);
        prop_assert!(ig.dag().edge_count() <= cg.dag().edge_count());
        prop_assert_eq!(
            ig.dag().edge_count() + ig.removed_edges().len(),
            cg.dag().edge_count()
        );
        cg.dag().for_each_prefix(300, |p| {
            assert!(ig.is_prefix(p));
        });
    }

    /// Replay from the final state with everything installed is the
    /// empty replay; replay from S0 with nothing installed reproduces
    /// the whole execution.
    #[test]
    fn replay_boundary_conditions(
        specs in vec(arb_operation(4), 1..8),
        seed in any::<u64>(),
    ) {
        let h = build_history(&specs, seed);
        let s0 = State::zeroed();
        let cg = ConflictGraph::generate(&h);
        let sg = StateGraph::from_conflict(&h, &cg, &s0);
        let all = NodeSet::full(h.len());
        let none = NodeSet::new(h.len());
        prop_assert_eq!(
            replay_uninstalled(&h, &sg, &all, &sg.final_state()).unwrap(),
            sg.final_state()
        );
        prop_assert_eq!(
            replay_uninstalled(&h, &sg, &none, &s0).unwrap(),
            sg.final_state()
        );
    }

    /// NodeSet behaves like a BTreeSet.
    #[test]
    fn nodeset_models_btreeset(ops in vec((0..64usize, any::<bool>()), 0..60)) {
        let mut ns = NodeSet::new(64);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (i, insert) in ops {
            if insert {
                prop_assert_eq!(ns.insert(i), model.insert(i));
            } else {
                prop_assert_eq!(ns.remove(i), model.remove(&i));
            }
            prop_assert_eq!(ns.count(), model.len());
        }
        prop_assert_eq!(ns.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
        let c = ns.complement();
        prop_assert_eq!(c.count(), 64 - model.len());
    }

    /// Prefix closure is idempotent, monotone, and produces prefixes.
    #[test]
    fn prefix_closure_properties(
        edges in vec((0..8usize, 0..8usize), 0..16),
        mask in any::<u8>(),
    ) {
        let mut dag = Dag::new(8);
        for (u, v) in edges {
            // Orient edges upward to keep the graph acyclic.
            let (a, b) = (u.min(v), u.max(v));
            if a != b {
                dag.add_edge(a, b, EdgeKinds::WW).unwrap();
            }
        }
        let seed = NodeSet::from_indices(8, (0..8).filter(|i| mask >> i & 1 == 1));
        let closure = dag.prefix_closure(&seed);
        prop_assert!(dag.is_prefix(&closure));
        prop_assert!(seed.is_subset(&closure));
        prop_assert_eq!(dag.prefix_closure(&closure).count(), closure.count());
    }

    /// Operations are deterministic: applying the same op to equal
    /// states yields equal states (the property replay relies on).
    #[test]
    fn operations_are_deterministic(
        specs in vec(arb_operation(4), 1..6),
        seed in any::<u64>(),
        pairs in vec((0..4u32, any::<u64>()), 0..4),
    ) {
        let h = build_history(&specs, seed);
        let mut s1 = State::zeroed();
        for (x, v) in pairs {
            s1.set(Var(x), Value(v));
        }
        let mut s2 = s1.clone();
        for op in h.iter() {
            op.apply(&mut s1);
            op.apply(&mut s2);
            prop_assert_eq!(&s1, &s2);
        }
    }

    /// The parallel scheduler agrees with sequential replay on every
    /// installation prefix, at an arbitrary worker count.
    #[test]
    fn parallel_replay_equals_serial(
        specs in vec(arb_operation(4), 1..8),
        seed in any::<u64>(),
        threads in 1..9usize,
    ) {
        let h = build_history(&specs, seed);
        let s0 = State::zeroed();
        let cg = ConflictGraph::generate(&h);
        let ig = InstallationGraph::from_conflict(&cg);
        let sg = StateGraph::from_conflict(&h, &cg, &s0);
        ig.dag().for_each_prefix(200, |p| {
            let state = sg.state_determined_by(p);
            let serial = replay_uninstalled(&h, &sg, p, &state).unwrap();
            let parallel = replay_parallel(&h, &cg, &sg, p, &state, threads).unwrap();
            assert_eq!(serial, parallel, "prefix {p:?} threads {threads}");
            assert_eq!(serial, sg.final_state());
        });
    }

    /// Reversing the schedule turns every conflict edge backward, which
    /// validation must reject (whenever the history has a conflict at
    /// all — conflict-free histories admit any order).
    #[test]
    fn reversed_schedule_is_rejected(
        specs in vec(arb_operation(3), 2..8),
        seed in any::<u64>(),
    ) {
        let h = build_history(&specs, seed);
        let cg = ConflictGraph::generate(&h);
        let none = NodeSet::new(h.len());
        let planned = RedoSchedule::plan(&cg, &none);
        planned.validate(&cg, &none).unwrap();
        let reversed = RedoSchedule::from_levels(
            planned.order().into_iter().rev().map(|id| vec![id]).collect(),
        );
        let verdict = reversed.validate(&cg, &none);
        if cg.dag().edge_count() > 0 {
            prop_assert!(
                matches!(verdict, Err(Error::LogOrderViolation { .. })),
                "expected LogOrderViolation, got {verdict:?}"
            );
        } else {
            prop_assert!(verdict.is_ok());
        }
    }

    /// A schedule that skips an uninstalled operation is reported as a
    /// coverage mismatch naming the missing operation — not as a bogus
    /// `NoSuchOp`.
    #[test]
    fn incomplete_schedule_reports_coverage_mismatch(
        specs in vec(arb_operation(3), 2..8),
        seed in any::<u64>(),
        drop_ix in any::<prop::sample::Index>(),
    ) {
        let h = build_history(&specs, seed);
        let cg = ConflictGraph::generate(&h);
        let none = NodeSet::new(h.len());
        let planned = RedoSchedule::plan(&cg, &none);
        let mut order = planned.order();
        let dropped = order.remove(drop_ix.index(order.len()));
        let partial =
            RedoSchedule::from_levels(order.into_iter().map(|id| vec![id]).collect());
        let verdict = partial.validate(&cg, &none);
        prop_assert!(
            matches!(
                verdict,
                Err(Error::OrderCoverageMismatch { op, fault: CoverageFault::Missing })
                    if op == dropped
            ),
            "expected coverage mismatch on {dropped:?}, got {verdict:?}"
        );
    }
}

/// Pinned regression (proptest seed `081699c6…`, shrunk input
/// `specs = [([3], [1]), ([3], [0])], seed = 0`): two operations that
/// *read* a variable nothing ever writes. Historically this input
/// surfaced failures in the history-shaped properties above, so it runs
/// them all, unconditionally, as a plain unit test.
#[test]
fn regression_081699c6_read_only_var() {
    let specs: Vec<(Vec<u32>, Vec<u32>)> = vec![(vec![3], vec![1]), (vec![3], vec![0])];
    let h = build_history(&specs, 0);
    let s0 = State::zeroed();
    let cg = ConflictGraph::generate(&h);
    let ig = InstallationGraph::from_conflict(&cg);
    let sg = StateGraph::from_conflict(&h, &cg, &s0);

    // Lemma 1: linear extensions regenerate the conflict graph.
    cg.for_each_linear_extension(200, |order| {
        assert_eq!(&cg, &ConflictGraph::generate_from_order(&h, order));
    });

    // Exposure implementations agree on every subset — including the
    // read-only variable 3, which no set can expose.
    let n = h.len();
    for mask in 0..1u64 << n {
        let set = NodeSet::from_indices(n, (0..n).filter(|i| mask >> i & 1 == 1));
        for x in cg.vars().collect::<Vec<_>>() {
            assert_eq!(
                is_exposed(&cg, &set, x),
                is_exposed_by_graph(&cg, &set, x),
                "var {x:?} set {set:?}"
            );
        }
    }

    // Lemma 2: index prefixes determine the state sequence.
    for (i, expected) in h.states(&s0).iter().enumerate() {
        assert_eq!(
            &sg.state_determined_by(&NodeSet::from_indices(n, 0..i)),
            expected
        );
    }

    // Theorem 3 + parallel replay on every installation prefix.
    ig.dag().for_each_prefix(500, |p| {
        let state = sg.state_determined_by(p);
        assert!(explains(&cg, &sg, p, &state));
        assert!(potentially_recoverable(&h, &cg, &sg, p, &state));
        for threads in [1, 2, 4] {
            assert_eq!(
                replay_parallel(&h, &cg, &sg, p, &state, threads).unwrap(),
                sg.final_state()
            );
        }
    });

    // Installation weakens conflict.
    assert!(ig.dag().edge_count() <= cg.dag().edge_count());
    cg.dag().for_each_prefix(300, |p| assert!(ig.is_prefix(p)));
}
