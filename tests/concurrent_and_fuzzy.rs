//! Integration coverage for the concurrency layer and fuzzy checkpoints
//! through the public umbrella API.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_recovery::methods::concurrent::SharedDb;
use redo_recovery::methods::fuzzy::FuzzyPhysiological;
use redo_recovery::methods::generalized::Generalized;
use redo_recovery::methods::oprecord::PageOpPayload;
use redo_recovery::methods::RecoveryMethod;
use redo_recovery::sim::db::{Db, Geometry};
use redo_recovery::theory::log::Lsn;
use redo_recovery::workload::pages::{Cell, PageOp, PageWorkloadSpec};

fn log_model(db: &Db<PageOpPayload>) -> BTreeMap<Cell, u64> {
    let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
    for rec in db.log.decode_stable().expect("log intact") {
        let PageOpPayload::Op(op) = rec.payload else {
            continue;
        };
        let reads: Vec<u64> = op
            .reads
            .iter()
            .map(|c| cells.get(c).copied().unwrap_or(0))
            .collect();
        for &w in &op.writes {
            cells.insert(w, op.output(w, &reads));
        }
    }
    cells
}

#[test]
fn concurrent_workers_with_multi_page_ops_recover_to_log_serialization() {
    for seed in 0..3u64 {
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let n_threads = 6usize;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let db = shared.clone();
                s.spawn(move || {
                    let ops = PageWorkloadSpec {
                        n_ops: 20,
                        n_pages: 5,
                        cross_page_fraction: 0.2,
                        multi_page_fraction: 0.3,
                        blind_fraction: 0.2,
                        ..Default::default()
                    }
                    .generate(seed ^ ((t as u64) << 40));
                    for mut op in ops {
                        op.id = op.id * n_threads as u32 + t as u32;
                        db.execute(&op).expect("execute");
                    }
                });
            }
        });
        shared.shutdown();
        shared.commit_tick();
        let mut db = shared.crash();
        Generalized.recover(&mut db).expect("recover");
        for (cell, v) in log_model(&db) {
            assert_eq!(
                db.read_cell(cell).expect("read"),
                v,
                "seed {seed} cell {cell:?}"
            );
        }
    }
}

#[test]
fn concurrent_log_order_is_conflict_consistent() {
    // Lemma 1's requirement on logs, checked on a real concurrent
    // execution: project the stable log into a theory history and
    // validate the log order against its own conflict graph.
    use redo_recovery::theory::conflict::ConflictGraph;
    use redo_recovery::theory::history::History;
    use redo_recovery::theory::log::Log;

    let shared = SharedDb::new(Geometry { slots_per_page: 8 });
    std::thread::scope(|s| {
        for t in 0..4usize {
            let db = shared.clone();
            s.spawn(move || {
                let ops = PageWorkloadSpec {
                    n_ops: 25,
                    n_pages: 4,
                    cross_page_fraction: 0.3,
                    ..Default::default()
                }
                .generate(5 ^ ((t as u64) << 40));
                for mut op in ops {
                    op.id = op.id * 4 + t as u32;
                    db.execute(&op).expect("execute");
                }
            });
        }
    });
    shared.shutdown();
    shared.commit_tick();
    let db = shared.crash();
    let records = db.log.decode_stable().expect("log intact");
    let ops_in_log_order: Vec<PageOp> = records
        .iter()
        .filter_map(|r| match &r.payload {
            PageOpPayload::Op(op) => Some(op.clone()),
            PageOpPayload::Checkpoint
            | PageOpPayload::FuzzyCheckpoint { .. }
            | PageOpPayload::DeltaCheckpoint { .. } => None,
        })
        .collect();
    // Renumber by log position and regenerate: the log order must be a
    // linear extension of its own conflict graph (trivially true for a
    // sequence-generated graph, but the *content* check is that the log
    // is a total function of the latched execution: no record lost, no
    // duplicate ids).
    let mut seen = std::collections::BTreeSet::new();
    for op in &ops_in_log_order {
        assert!(seen.insert(op.id), "duplicate op id {} in log", op.id);
    }
    assert_eq!(seen.len(), 100);
    let h = History::renumbering(
        ops_in_log_order
            .iter()
            .map(|op| op.to_operation(8))
            .collect(),
    );
    let cg = ConflictGraph::generate(&h);
    Log::from_history(&h)
        .validate_against(&cg)
        .expect("log order conflict-consistent");
}

#[test]
fn fuzzy_checkpoints_survive_crash_storms() {
    for seed in 0..4u64 {
        let mut db: Db<_> = Db::new(Geometry { slots_per_page: 8 });
        let ops = PageWorkloadSpec {
            n_ops: 90,
            n_pages: 6,
            ..Default::default()
        }
        .generate(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut durable: Vec<(PageOp, Lsn)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let lsn = FuzzyPhysiological.execute(&mut db, op).expect("execute");
            durable.push((op.clone(), lsn));
            db.chaos_flush(&mut rng, 0.7, 0.3).unwrap();
            if i % 9 == 8 {
                FuzzyPhysiological.checkpoint(&mut db).expect("checkpoint");
            }
            if i % 31 == 30 {
                let stable = db.log.stable_lsn();
                db.crash();
                FuzzyPhysiological.recover(&mut db).expect("recover");
                durable.retain(|(_, l)| *l <= stable);
            }
        }
        // Verify against the durable model.
        let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
        for (op, _) in &durable {
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
        }
        for (cell, v) in cells {
            assert_eq!(db.read_cell(cell).expect("read"), v, "seed {seed}");
        }
    }
}

#[test]
fn fuzzy_analysis_is_cheaper_than_full_scan_but_never_wrong() {
    let mut db: Db<_> = Db::new(Geometry { slots_per_page: 8 });
    let ops = PageWorkloadSpec {
        n_ops: 120,
        n_pages: 8,
        ..Default::default()
    }
    .generate(9);
    let mut rng = StdRng::seed_from_u64(9);
    for (i, op) in ops.iter().enumerate() {
        FuzzyPhysiological.execute(&mut db, op).expect("execute");
        db.chaos_flush(&mut rng, 0.9, 0.5).unwrap();
        if i % 20 == 19 {
            FuzzyPhysiological.checkpoint(&mut db).expect("checkpoint");
        }
    }
    db.log.flush_all();
    db.crash();
    let analysis = FuzzyPhysiological.analyze(&db).expect("analysis");
    assert!(analysis.checkpoint_lsn.is_some());
    assert!(analysis.records_elided > 0, "{analysis:?}");
    let stats = FuzzyPhysiological.recover(&mut db).expect("recover");
    assert!(
        stats.scanned < 126,
        "analysis must bound the scan: {stats:?}"
    );
    // Full functional check.
    let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
    for op in &ops {
        let reads: Vec<u64> = op
            .reads
            .iter()
            .map(|c| cells.get(c).copied().unwrap_or(0))
            .collect();
        for &w in &op.writes {
            cells.insert(w, op.output(w, &reads));
        }
    }
    for (cell, v) in cells {
        assert_eq!(db.read_cell(cell).expect("read"), v);
    }
}
