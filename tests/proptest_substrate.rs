//! Property-based tests of the storage substrate and the recovery
//! methods: codec roundtrips, WAL-rule preservation under arbitrary
//! flush interleavings, and method correctness on generated workloads.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_recovery::btree::{BTree, SplitStrategy};
use redo_recovery::methods::fuzzy::FuzzyPhysiological;
use redo_recovery::methods::generalized::Generalized;
use redo_recovery::methods::harness::{run, HarnessConfig};
use redo_recovery::methods::logical::Logical;
use redo_recovery::methods::ondemand::OnDemand;
use redo_recovery::methods::online::GeneralizedOnline;
use redo_recovery::methods::oprecord::PageOpPayload;
use redo_recovery::methods::parallel::{ParallelOnline, ParallelPhysical, ParallelPhysiological};
use redo_recovery::methods::physical::Physical;
use redo_recovery::methods::physiological::Physiological;
use redo_recovery::methods::RecoveryMethod;
use redo_recovery::sim::backend::BackendKind;
use redo_recovery::sim::db::{Db, Geometry};
use redo_recovery::sim::wal::{codec, LogManager, LogPayload};
use redo_recovery::sim::SimResult;
use redo_recovery::theory::log::Lsn;
use redo_recovery::workload::pages::{Cell, PageId, PageOp, PageOpKind, PageWorkloadSpec, SlotId};
use std::collections::BTreeMap;

#[derive(Clone, Debug, PartialEq)]
struct Blob(Vec<u8>);

impl LogPayload for Blob {
    fn encode(&self, buf: &mut Vec<u8>) -> SimResult<()> {
        codec::put_u32(buf, self.0.len() as u32);
        buf.extend_from_slice(&self.0);
        Ok(())
    }
    fn decode(input: &[u8], pos: &mut usize) -> SimResult<Self> {
        let n = codec::get_u32(input, pos)? as usize;
        let end = pos
            .checked_add(n)
            .filter(|&e| e <= input.len())
            .ok_or(redo_recovery::sim::SimError::Corrupt(*pos))?;
        let out = input[*pos..end].to_vec();
        *pos = end;
        Ok(Blob(out))
    }
}

fn arb_page_op(n_pages: u32, spp: u16) -> impl Strategy<Value = PageOp> {
    (
        0..n_pages,
        0..n_pages,
        0..spp,
        0..spp,
        0..3u8,
        any::<u64>(),
        any::<u32>(),
    )
        .prop_map(move |(wp, rp, ws, rs, kind, f_seed, id)| {
            let write = Cell {
                page: PageId(wp),
                slot: SlotId(ws),
            };
            let (kind, reads) = match kind {
                0 => (PageOpKind::Blind, vec![]),
                1 => (
                    PageOpKind::Physiological,
                    vec![Cell {
                        page: PageId(wp),
                        slot: SlotId(rs),
                    }],
                ),
                _ => (
                    PageOpKind::Generalized,
                    vec![Cell {
                        page: PageId(rp),
                        slot: SlotId(rs),
                    }],
                ),
            };
            PageOp {
                id,
                kind,
                reads,
                writes: vec![write],
                f_seed,
            }
        })
}

/// Runs `method` over `ops` twice — classic single WAL vs four
/// per-partition log shards — and demands identical semantic outcomes.
/// The harness itself verifies exact state equality against the durable
/// prefix at every crash in *both* runs; this comparison adds that the
/// two runs crashed at the same points and replayed, skipped, kept, and
/// lost the same operations. Decode telemetry (bytes scanned, records
/// decoded, seek hits) legitimately differs: sharded scans see marker
/// frames and broadcast copies.
fn assert_shard_count_invariant<M: RecoveryMethod>(
    method: &M,
    ops: &[PageOp],
    base: &HarnessConfig,
) -> Result<(), TestCaseError> {
    let single = run(
        method,
        ops,
        &HarnessConfig {
            log_shards: 1,
            ..base.clone()
        },
    )
    .map_err(|e| TestCaseError::fail(format!("{} single-log: {e}", method.name())))?;
    let sharded = run(
        method,
        ops,
        &HarnessConfig {
            log_shards: 4,
            ..base.clone()
        },
    )
    .map_err(|e| TestCaseError::fail(format!("{} sharded-log: {e}", method.name())))?;
    let name = method.name();
    prop_assert_eq!(single.crashes, sharded.crashes, "{}: crashes", name);
    prop_assert_eq!(
        single.total_replayed,
        sharded.total_replayed,
        "{}: replayed",
        name
    );
    prop_assert_eq!(
        single.total_skipped,
        sharded.total_skipped,
        "{}: skipped",
        name
    );
    prop_assert_eq!(single.survivors, sharded.survivors, "{}: survivors", name);
    prop_assert_eq!(single.lost, sharded.lost, "{}: lost", name);
    prop_assert_eq!(single.log_bytes, sharded.log_bytes, "{}: log bytes", name);
    Ok(())
}

/// Replays an operation sequence from genesis, producing the final cell
/// values — the reference model for point-in-time recovery.
fn replay_cells(ops: &[PageOp]) -> BTreeMap<Cell, u64> {
    let mut cells = BTreeMap::new();
    for op in ops {
        let reads: Vec<u64> = op
            .reads
            .iter()
            .map(|c| cells.get(c).copied().unwrap_or(0))
            .collect();
        for &w in &op.writes {
            cells.insert(w, op.output(w, &reads));
        }
    }
    cells
}

/// The sharded-vs-single equivalence against the fsync-backed file
/// backend: fewer seeds (every run pays real I/O), same invariant.
#[test]
fn sharded_log_recovery_matches_single_log_on_files() {
    for seed in 0..3u64 {
        let cfg = HarnessConfig {
            backend: BackendKind::File,
            audit: false,
            seed,
            ..Default::default()
        };
        let physio = PageWorkloadSpec {
            n_ops: 40,
            n_pages: 5,
            ..Default::default()
        }
        .generate(seed);
        let cross = PageWorkloadSpec {
            n_ops: 40,
            n_pages: 5,
            cross_page_fraction: 0.4,
            multi_page_fraction: 0.2,
            blind_fraction: 0.1,
            ..Default::default()
        }
        .generate(seed);
        assert_shard_count_invariant(&Physiological, &physio, &cfg).unwrap();
        assert_shard_count_invariant(&GeneralizedOnline, &cross, &cfg).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary byte payloads survive the stable-log encode/decode
    /// cycle across arbitrary flush points and crashes.
    #[test]
    fn log_roundtrip_with_flushes_and_crashes(
        blobs in vec(vec(any::<u8>(), 0..40), 1..20),
        flush_at in vec(any::<bool>(), 1..20),
    ) {
        let mut log: LogManager<Blob> = LogManager::new();
        let mut durable: Vec<Blob> = Vec::new();
        let mut pending: Vec<Blob> = Vec::new();
        for (i, bytes) in blobs.iter().enumerate() {
            let blob = Blob(bytes.clone());
            log.append(blob.clone()).unwrap();
            pending.push(blob);
            if flush_at.get(i).copied().unwrap_or(false) {
                log.flush_all();
                durable.append(&mut pending);
            }
        }
        log.crash();
        let decoded: Vec<Blob> = log.decode_stable().unwrap().into_iter().map(|r| r.payload).collect();
        prop_assert_eq!(decoded, durable);
    }

    /// PageOp codec roundtrips arbitrary operations.
    #[test]
    fn page_op_codec_roundtrip(op in arb_page_op(8, 8)) {
        let mut buf = Vec::new();
        codec::put_page_op(&mut buf, &op).unwrap();
        let mut pos = 0;
        prop_assert_eq!(codec::get_page_op(&buf, &mut pos).unwrap(), op);
        prop_assert_eq!(pos, buf.len());
    }

    /// Truncating an encoded PageOp anywhere yields Corrupt, never a
    /// panic or a bogus success.
    #[test]
    fn truncated_page_op_is_corrupt(op in arb_page_op(8, 8), cut in any::<prop::sample::Index>()) {
        let mut buf = Vec::new();
        codec::put_page_op(&mut buf, &op).unwrap();
        let cut = cut.index(buf.len()); // 0..len-1: strictly truncated
        let mut pos = 0;
        let r = codec::get_page_op(&buf[..cut], &mut pos);
        prop_assert!(r.is_err(), "decoded {:?} from a truncated buffer", r);
    }

    /// The WAL rule is a substrate invariant: no matter how chaotically
    /// we flush, no disk page ever carries an LSN beyond the stable log.
    #[test]
    fn wal_rule_is_unbreakable(
        ops in vec(arb_page_op(4, 8), 1..25),
        chaos in vec((any::<bool>(), 0..4u32), 1..25),
    ) {
        let mut db: Db<Blob> = Db::new(Geometry { slots_per_page: 8 });
        for (i, op) in ops.iter().enumerate() {
            let lsn = db.log.append(Blob(vec![0u8; 4])).unwrap();
            db.apply_page_op(op, lsn).unwrap();
            if let Some(&(flush_log, page)) = chaos.get(i) {
                if flush_log {
                    db.log.flush_all();
                }
                let stable = db.log.stable_lsn();
                let _ = db.pool.flush_page(&mut db.disk, PageId(page), stable);
            }
            for (id, p) in db.disk.pages() {
                prop_assert!(
                    p.lsn() <= db.log.stable_lsn(),
                    "page {:?} at {:?} > stable {:?}", id, p.lsn(), db.log.stable_lsn()
                );
            }
        }
    }

    /// Every method recovers the durable prefix under harness-driven
    /// chaos, for arbitrary seeds and crash cadences.
    #[test]
    fn methods_recover_under_chaos(
        seed in any::<u64>(),
        crash_every in 5..25usize,
        ckpt_every in prop::option::of(3..15usize),
    ) {
        let cfg = HarnessConfig {
            checkpoint_every: ckpt_every,
            crash_every: Some(crash_every),
            chaos: Some((0.7, 0.3)),
            seed,
            audit: false, // keep proptest runs fast; audited suites run elsewhere
            slots_per_page: 8,
            pool_capacity: None,
            fault: None,
            backend: BackendKind::Mem,
            log_shards: 1,
        };
        let blind = PageWorkloadSpec { n_ops: 40, n_pages: 5, blind_fraction: 1.0, ..Default::default() }
            .generate(seed);
        let physio = PageWorkloadSpec { n_ops: 40, n_pages: 5, ..Default::default() }.generate(seed);
        let cross = PageWorkloadSpec {
            n_ops: 40, n_pages: 5, cross_page_fraction: 0.4, multi_page_fraction: 0.2,
            blind_fraction: 0.1, ..Default::default()
        }.generate(seed);
        run(&Physical, &blind, &cfg).map_err(|e| TestCaseError::fail(e.to_string()))?;
        run(&Physiological, &physio, &cfg).map_err(|e| TestCaseError::fail(e.to_string()))?;
        run(&Generalized, &cross, &cfg).map_err(|e| TestCaseError::fail(e.to_string()))?;
        run(&Logical, &cross, &cfg).map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    /// Splitting the WAL into per-partition logs must not change what
    /// any crash-audit roster method recovers: the same schedule driven
    /// over one log and over four shards produces the same durable
    /// prefixes and the same replay decisions (satellite of the
    /// sharded-log PR; the crash audit covers the fault-injected side).
    #[test]
    fn sharded_log_recovery_is_state_identical_to_single_log(
        seed in any::<u64>(),
        crash_every in 5..25usize,
        ckpt_every in prop::option::of(3..15usize),
    ) {
        let cfg = HarnessConfig {
            checkpoint_every: ckpt_every,
            crash_every: Some(crash_every),
            chaos: Some((0.7, 0.3)),
            seed,
            audit: false, // both runs still verify state at every crash
            slots_per_page: 8,
            pool_capacity: None,
            fault: None,
            backend: BackendKind::Mem,
            log_shards: 1,
        };
        let blind = PageWorkloadSpec { n_ops: 40, n_pages: 5, blind_fraction: 1.0, ..Default::default() }
            .generate(seed);
        let physio = PageWorkloadSpec { n_ops: 40, n_pages: 5, ..Default::default() }.generate(seed);
        let cross = PageWorkloadSpec {
            n_ops: 40, n_pages: 5, cross_page_fraction: 0.4, multi_page_fraction: 0.2,
            blind_fraction: 0.1, ..Default::default()
        }.generate(seed);
        assert_shard_count_invariant(&Physical, &blind, &cfg)?;
        assert_shard_count_invariant(&Physiological, &physio, &cfg)?;
        assert_shard_count_invariant(&FuzzyPhysiological, &physio, &cfg)?;
        assert_shard_count_invariant(&Logical, &cross, &cfg)?;
        assert_shard_count_invariant(&Generalized, &cross, &cfg)?;
        assert_shard_count_invariant(&GeneralizedOnline, &cross, &cfg)?;
        assert_shard_count_invariant(&OnDemand, &cross, &cfg)?;
        assert_shard_count_invariant(&ParallelPhysiological { threads: 3 }, &physio, &cfg)?;
        assert_shard_count_invariant(&ParallelPhysical { threads: 3 }, &blind, &cfg)?;
        assert_shard_count_invariant(&ParallelOnline { threads: 3 }, &physio, &cfg)?;
    }

    /// Point-in-time replay over `archive ∥ live` at the truncation
    /// boundary reproduces exactly the operations — and therefore the
    /// state — of the pre-truncation prefix the live log no longer
    /// holds.
    #[test]
    fn pit_replay_at_truncation_boundary_matches_pre_truncation_state(
        seed in any::<u64>(),
        n_ops in 24..48usize,
        ckpt_every in 4..10usize,
        log_shards_pow in 0..3u32,
    ) {
        let ops = PageWorkloadSpec {
            n_ops, n_pages: 6, cross_page_fraction: 0.4, multi_page_fraction: 0.2,
            blind_fraction: 0.1, ..Default::default()
        }.generate(seed);
        let mut db: Db<PageOpPayload> = Db::on_sharded(
            BackendKind::Mem,
            Geometry { slots_per_page: 8 },
            None,
            1 << log_shards_pow,
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        let mut committed: Vec<(PageOp, Lsn)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let lsn = GeneralizedOnline
                .execute(&mut db, op)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            committed.push((op.clone(), lsn));
            db.chaos_flush(&mut rng, 0.8, 0.4)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            if (i + 1) % ckpt_every == 0 {
                GeneralizedOnline::checkpoint_online(&mut db)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
            }
        }
        db.log.flush_all();
        // The truncation boundary: everything below `first_stable` has
        // left the live log and survives only in the archive tier.
        let upto = Lsn(db.log.first_stable().0.saturating_sub(1));
        let pit: Vec<PageOp> = db
            .log
            .pit_records(upto)
            .map_err(|e| TestCaseError::fail(e.to_string()))?
            .into_iter()
            .filter_map(|r| match r.payload {
                PageOpPayload::Op(op) => Some(op),
                _ => None,
            })
            .collect();
        let expected: Vec<PageOp> = committed
            .iter()
            .filter(|(_, lsn)| *lsn <= upto)
            .map(|(op, _)| op.clone())
            .collect();
        prop_assert_eq!(&pit, &expected, "archive ∥ live must hold the drained prefix record for record");
        prop_assert_eq!(replay_cells(&pit), replay_cells(&expected));
    }

    /// The B+tree agrees with a BTreeMap model under arbitrary
    /// insert/remove/crash sequences.
    #[test]
    fn btree_models_btreemap(
        actions in vec((0..4u8, 0..200u64, any::<u64>()), 1..80),
        strategy_pick in any::<bool>(),
    ) {
        let strategy = if strategy_pick { SplitStrategy::Generalized } else { SplitStrategy::Physiological };
        let mut tree = BTree::new(strategy, 16).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (kind, key, val) in actions {
            match kind {
                0 | 1 => {
                    tree.insert(key, val).unwrap();
                    model.insert(key, val);
                }
                2 => {
                    let in_tree = tree.remove(key).unwrap();
                    prop_assert_eq!(in_tree, model.remove(&key).is_some());
                }
                _ => {
                    tree.db.log.flush_all();
                    tree.crash();
                    tree.recover().unwrap();
                }
            }
            if model.len().is_multiple_of(17) {
                for (&k, &v) in &model {
                    prop_assert_eq!(tree.get(k).unwrap(), Some(v));
                }
            }
        }
        prop_assert_eq!(tree.validate().unwrap(), model.len());
        let all = tree.range(0, u64::MAX).unwrap();
        prop_assert_eq!(all, model.into_iter().collect::<Vec<_>>());
    }
}
