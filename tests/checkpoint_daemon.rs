//! Property tests for online fuzzy-checkpoint publication under fault
//! injection: a torn, partial, or unpublished checkpoint record must be
//! structurally discarded, recovery must fall back to the *previous*
//! published checkpoint, and the recovered state must be identical to
//! what a full log scan (no checkpoint, no seek index) produces.

use proptest::prelude::*;
use redo_recovery::methods::online::GeneralizedOnline;
use redo_recovery::methods::oprecord::PageOpPayload;
use redo_recovery::methods::RecoveryMethod;
use redo_recovery::sim::db::{Db, Geometry};
use redo_recovery::sim::fault::{FaultKind, FaultPlan};
use redo_recovery::theory::log::Lsn;
use redo_recovery::workload::pages::{Cell, PageOp, PageWorkloadSpec};
use std::collections::BTreeMap;

fn workload(n: usize, seed: u64) -> Vec<PageOp> {
    PageWorkloadSpec {
        n_ops: n,
        n_pages: 5,
        cross_page_fraction: 0.3,
        multi_page_fraction: 0.2,
        blind_fraction: 0.1,
        ..Default::default()
    }
    .generate(seed)
}

/// Replays `ops` in issue order against a plain cell map — the ground
/// truth the recovered database must match. (The stable log cannot play
/// this role here: checkpoints truncate its prefix.)
fn model(ops: &[PageOp]) -> BTreeMap<Cell, u64> {
    let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
    for op in ops {
        let reads: Vec<u64> = op
            .reads
            .iter()
            .map(|c| cells.get(c).copied().unwrap_or(0))
            .collect();
        for &w in &op.writes {
            cells.insert(w, op.output(w, &reads));
        }
    }
    cells
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arm a fault on the second checkpoint's publication — tearing its
    /// record mid-flush, stopping before the flush, or suppressing the
    /// pointer swing after the record landed. In every case the attempt
    /// is abandoned, the first checkpoint stays in force, and recovery
    /// reaches exactly the durable prefix's state — the same state a
    /// checkpoint-blind full scan reaches.
    #[test]
    fn torn_checkpoint_falls_back_to_previous_published_one(
        seed in any::<u64>(),
        n1 in 6..20usize,
        n2 in 6..20usize,
        variant in 0..3u8,
        torn_bytes in 1..24usize,
    ) {
        let mut db: Db<PageOpPayload> = Db::new(Geometry { slots_per_page: 8 });
        let ops1 = workload(n1, seed);
        let ops2 = workload(n2, seed ^ 0x5eed);
        let mut committed: Vec<(PageOp, Lsn)> = Vec::new();
        for op in &ops1 {
            let lsn = GeneralizedOnline.execute(&mut db, op).unwrap();
            committed.push((op.clone(), lsn));
        }
        // First checkpoint: no faults armed, publication must land.
        let first = GeneralizedOnline::checkpoint_online(&mut db)
            .unwrap()
            .expect("unfaulted publication lands");
        for mut op in ops2 {
            op.id += n1 as u32; // unique ids across the two batches
            let lsn = GeneralizedOnline.execute(&mut db, &op).unwrap();
            committed.push((op, lsn));
        }
        // Pre-force the log so the second checkpoint's own flush moves
        // exactly one record: event 1 is the checkpoint-record flush,
        // event 2 the master-pointer write.
        db.log.flush_all();
        let plan = match variant {
            0 => FaultPlan { at: 1, kind: FaultKind::TornFlush { bytes: torn_bytes } },
            1 => FaultPlan { at: 1, kind: FaultKind::Clean },
            _ => FaultPlan { at: 2, kind: FaultKind::Clean },
        };
        db.arm_faults(plan);
        let second = GeneralizedOnline::checkpoint_online(&mut db).unwrap();
        prop_assert_eq!(second, None, "a faulted publication must be abandoned");

        db.crash();
        let repair = db.repair_after_crash();
        if variant == 0 {
            prop_assert!(
                repair.log_bytes_dropped > 0,
                "a torn checkpoint record leaves a fragment for repair to drop"
            );
        }
        prop_assert_eq!(db.disk.master(), first, "previous checkpoint still published");

        // Probe: the same crashed image, recovered checkpoint-blind
        // (master cleared, seek index disabled) — a full scan of the
        // retained log.
        let mut blind = db.clone();
        blind.disk.set_master(Lsn::ZERO).unwrap();
        blind.log.disable_seek_index();

        let stats = GeneralizedOnline.recover(&mut db).unwrap();
        prop_assert_eq!(
            stats.checkpoint_lsn, Some(first),
            "recovery starts from the fallback checkpoint"
        );
        let blind_stats = GeneralizedOnline.recover(&mut blind).unwrap();
        prop_assert_eq!(blind_stats.checkpoint_lsn, None);
        prop_assert_eq!(
            db.volatile_theory_state(),
            blind.volatile_theory_state(),
            "checkpointed and full-scan recovery must agree"
        );

        // Exactness: every op the stable log retained (all of them — the
        // final flush_all above preceded the armed fault) is reflected.
        let stable = db.log.stable_lsn();
        committed.retain(|(_, lsn)| *lsn <= stable);
        let durable: Vec<PageOp> = committed.into_iter().map(|(op, _)| op).collect();
        for (cell, v) in model(&durable) {
            prop_assert_eq!(db.read_cell(cell).unwrap(), v, "cell {:?} diverged", cell);
        }
    }

    /// With no faults at all, every publication lands and repeated
    /// checkpoint/crash cycles keep recovery exact while the log keeps
    /// shrinking — the truncation protocol never eats a needed record.
    #[test]
    fn repeated_publication_and_crash_cycles_stay_exact(
        seed in any::<u64>(),
        rounds in 2..5usize,
        per_round in 4..12usize,
    ) {
        let mut db: Db<PageOpPayload> = Db::new(Geometry { slots_per_page: 8 });
        let mut all_ops: Vec<PageOp> = Vec::new();
        for round in 0..rounds {
            let mut ops = workload(per_round, seed ^ (round as u64) << 8);
            for op in &mut ops {
                op.id += (round * per_round) as u32;
                GeneralizedOnline.execute(&mut db, op).unwrap();
            }
            all_ops.extend(ops);
            // Early rounds checkpoint fuzzily (dirty pages pin their
            // recLSNs); the last round cleans the pool first, so its
            // checkpoint's redo-start passes every earlier record and
            // truncation must reclaim a nonempty prefix.
            if round + 1 == rounds {
                db.log.flush_all();
                db.pool.flush_all(&mut db.disk, db.log.stable_lsn()).unwrap();
            }
            GeneralizedOnline::checkpoint_online(&mut db)
                .unwrap()
                .expect("unfaulted publication lands");
            db.log.flush_all();
            db.crash();
            db.repair_after_crash();
            GeneralizedOnline.recover(&mut db).unwrap();
            for (cell, v) in model(&all_ops) {
                prop_assert_eq!(db.read_cell(cell).unwrap(), v, "cell {:?} diverged", cell);
            }
        }
        prop_assert!(
            db.log.truncated_bytes() > 0,
            "repeated checkpoints must reclaim log prefix"
        );
    }
}
