//! Property tests for the checkpoint-aware parallel restart.
//!
//! The tentpole contract: restarting through the DPT-fed partitioned
//! scheduler ([`recover_physiological_parallel`]) from a crashed image
//! carrying online fuzzy checkpoints must reach *exactly* the state
//! that sequential, checkpoint-blind, full-scan recovery reaches — the
//! reference that uses no dirty-page table, no redo-start seek, and no
//! partitioning, only the per-page LSN redo test over the entire
//! surviving stable log. Theorem 3 says the two replay orders are
//! interchangeable; the fuzzy-checkpoint contract says the records the
//! seek skips were all provably installed. The property exercises both
//! at once, across thread counts, arbitrary checkpoint cadences,
//! chaotic flush schedules, and injected crash-point faults (clean
//! stops, torn page writes, torn log flushes).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_recovery::methods::online::GeneralizedOnline;
use redo_recovery::methods::oprecord::PageOpPayload;
use redo_recovery::methods::parallel::recover_physiological_parallel;
use redo_recovery::methods::physiological::Physiological;
use redo_recovery::methods::RecoveryMethod;
use redo_recovery::sim::db::{Db, Geometry};
use redo_recovery::sim::fault::{FaultKind, FaultPlan};
use redo_recovery::sim::wal::ShardedScanner;
use redo_recovery::theory::log::Lsn;
use redo_recovery::workload::pages::{PageOp, PageWorkloadSpec};

/// Runs the workload under the online fuzzy-checkpoint discipline with
/// chaotic flushing and an optional armed crash-point fault, then
/// crashes. Once a fault trips the machine is dying — substrate errors
/// are expected and the run ends at the next operation boundary, the
/// same discipline the method harness uses.
fn crashed_image(
    ops: &[PageOp],
    seed: u64,
    ck_every: usize,
    chaos: (f64, f64),
    fault: Option<FaultPlan>,
) -> Db<PageOpPayload> {
    let mut db = Db::new(Geometry::default());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    if let Some(plan) = fault {
        db.arm_faults(plan);
    }
    for (i, op) in ops.iter().enumerate() {
        match Physiological.execute(&mut db, op) {
            Ok(_) => {}
            Err(_) if db.fault_tripped() => break,
            Err(e) => panic!("execute failed without a fault: {e}"),
        }
        match db.chaos_flush(&mut rng, chaos.0, chaos.1) {
            Ok(()) => {}
            Err(_) if db.fault_tripped() => break,
            Err(e) => panic!("chaos flush failed without a fault: {e}"),
        }
        if (i + 1) % ck_every == 0 {
            match GeneralizedOnline::checkpoint_online(&mut db) {
                // Ok(None) is a publication the fault interrupted
                // mid-protocol — a legal crash state.
                Ok(_) => {}
                Err(_) if db.fault_tripped() => break,
                Err(e) => panic!("checkpoint failed without a fault: {e}"),
            }
        }
        if db.fault_tripped() {
            break;
        }
    }
    db.log.flush_all();
    db.crash();
    db
}

/// The reference recovery: sequential, checkpoint-blind, full-scan.
/// Scans the entire surviving stable log from its first record (no
/// dirty-page table, no seek), applies the per-page LSN redo test to
/// every page-op record, and ignores checkpoint payloads entirely.
fn recover_full_scan(db: &mut Db<PageOpPayload>) -> usize {
    db.repair_after_crash();
    let spp = db.geometry.slots_per_page;
    let mut scanner = ShardedScanner::seek(&db.log, Lsn(1));
    let mut replayed = 0;
    loop {
        let batch = scanner
            .next_batch(&db.log, 32)
            .expect("surviving stable log decodes");
        if batch.is_empty() {
            return replayed;
        }
        for rec in batch {
            let PageOpPayload::Op(op) = rec.payload else {
                continue;
            };
            let page = op.written_pages()[0];
            let stable = db.log.stable_lsn();
            db.pool
                .fetch(&mut db.disk, page, spp, stable)
                .expect("recovery fetch");
            let installed = db.pool.get(page).expect("just fetched").lsn() >= rec.lsn;
            if !installed {
                db.apply_page_op(&op, rec.lsn).expect("redo applies");
                replayed += 1;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DPT-fed parallel restart == checkpoint-blind full-scan recovery,
    /// for every thread count, under arbitrary fuzzy-checkpoint
    /// cadence, flush chaos, and injected crash schedules.
    #[test]
    fn parallel_restart_matches_checkpoint_blind_full_scan(
        seed in any::<u64>(),
        n_ops in 20..60usize,
        n_pages in 3..8u32,
        ck_every in 3..12usize,
        log_pct in 30..100u32,
        page_pct in 0..50u32,
        fault in prop::option::of((1..80u64, 0..3u8, 1..6usize)),
    ) {
        let (log_p, page_p) = (f64::from(log_pct) / 100.0, f64::from(page_pct) / 100.0);
        let ops = PageWorkloadSpec { n_ops, n_pages, ..Default::default() }.generate(seed);
        let plan = fault.map(|(at, kind, n)| FaultPlan {
            at,
            kind: match kind {
                0 => FaultKind::Clean,
                1 => FaultKind::TornWrite { sectors: n as u16 },
                _ => FaultKind::TornFlush { bytes: n * 5 },
            },
        });
        let mut ref_db = crashed_image(&ops, seed, ck_every, (log_p, page_p), plan);
        let ref_replayed = recover_full_scan(&mut ref_db);
        let reference = ref_db.volatile_theory_state();
        for threads in [1usize, 2, 4, 8] {
            let mut db = crashed_image(&ops, seed, ck_every, (log_p, page_p), plan);
            let stats = recover_physiological_parallel(&mut db, threads)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(
                db.volatile_theory_state(),
                reference.clone(),
                "threads={} stats={:?}",
                threads,
                stats
            );
            // The checkpoint seek only ever *narrows* redo work: the
            // partitioned path must never replay more than the
            // checkpoint-blind reference scan did.
            prop_assert!(
                stats.replay_count() <= ref_replayed,
                "threads={}: parallel replayed {} > blind full scan {}",
                threads,
                stats.replay_count(),
                ref_replayed
            );
        }
    }

    /// Parallel restart is idempotent: a second crash immediately after
    /// recovery (no new work) recovers to the identical state, at any
    /// thread count.
    #[test]
    fn parallel_restart_is_idempotent(
        seed in any::<u64>(),
        ck_every in 3..10usize,
        threads in 1..8usize,
    ) {
        let ops = PageWorkloadSpec { n_ops: 30, n_pages: 5, ..Default::default() }.generate(seed);
        let mut db = crashed_image(&ops, seed, ck_every, (0.7, 0.3), None);
        recover_physiological_parallel(&mut db, threads)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let once = db.volatile_theory_state();
        db.crash();
        recover_physiological_parallel(&mut db, threads)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(db.volatile_theory_state(), once);
    }
}
