//! B+tree crash-recovery integration across both split strategies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redo_recovery::btree::{BTree, SplitStrategy};
use redo_recovery::workload::pages::mix64;
use std::collections::BTreeMap;

const STRATEGIES: [SplitStrategy; 2] = [SplitStrategy::Physiological, SplitStrategy::Generalized];

#[test]
fn mixed_workload_with_periodic_crashes() {
    for strategy in STRATEGIES {
        for seed in 0..3u64 {
            let mut tree = BTree::new(strategy, 16).unwrap();
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            let mut rng = StdRng::seed_from_u64(seed);
            for step in 0..400u64 {
                match rng.gen_range(0..10) {
                    0..=6 => {
                        let k = rng.gen_range(0..600);
                        let v = mix64(k ^ step);
                        tree.insert(k, v).unwrap();
                        model.insert(k, v);
                    }
                    7 => {
                        let k = rng.gen_range(0..600);
                        assert_eq!(tree.remove(k).unwrap(), model.remove(&k).is_some());
                    }
                    8 => {
                        tree.db.chaos_flush(&mut rng, 0.8, 0.4).unwrap();
                    }
                    _ => {
                        if rng.gen_bool(0.3) {
                            tree.checkpoint().unwrap();
                        } else {
                            tree.db.log.flush_all();
                            tree.crash();
                            tree.recover().unwrap();
                        }
                    }
                }
            }
            tree.db.log.flush_all();
            tree.crash();
            tree.recover().unwrap();
            for (&k, &v) in &model {
                assert_eq!(
                    tree.get(k).unwrap(),
                    Some(v),
                    "{strategy:?} seed {seed} key {k}"
                );
            }
            assert_eq!(tree.validate().unwrap(), model.len());
        }
    }
}

#[test]
fn strategies_agree_on_query_results() {
    let mut a = BTree::new(SplitStrategy::Physiological, 16).unwrap();
    let mut b = BTree::new(SplitStrategy::Generalized, 16).unwrap();
    for k in 0..500u64 {
        let key = mix64(k) % 10_000;
        a.insert(key, k).unwrap();
        b.insert(key, k).unwrap();
    }
    assert_eq!(a.range(0, u64::MAX).unwrap(), b.range(0, u64::MAX).unwrap());
    assert_eq!(a.range(100, 5_000).unwrap(), b.range(100, 5_000).unwrap());
}

#[test]
fn recovery_is_idempotent_across_repeated_crashes() {
    for strategy in STRATEGIES {
        let mut tree = BTree::new(strategy, 16).unwrap();
        for k in 0..300u64 {
            tree.insert(mix64(k), k).unwrap();
        }
        tree.db.log.flush_all();
        let mut last = None;
        for _ in 0..4 {
            tree.crash();
            tree.recover().unwrap();
            let snapshot = tree.range(0, u64::MAX).unwrap();
            if let Some(prev) = &last {
                assert_eq!(&snapshot, prev);
            }
            last = Some(snapshot);
        }
        assert_eq!(last.unwrap().len(), 300);
    }
}

#[test]
fn checkpointed_tree_survives_crash_without_log_tail() {
    for strategy in STRATEGIES {
        let mut tree = BTree::new(strategy, 16).unwrap();
        for k in 0..200u64 {
            tree.insert(k, k + 7).unwrap();
        }
        tree.checkpoint().unwrap();
        // Post-checkpoint inserts never make it to the stable log.
        for k in 200..260u64 {
            tree.insert(k, k + 7).unwrap();
        }
        tree.crash();
        tree.recover().unwrap();
        for k in 0..200u64 {
            assert_eq!(tree.get(k).unwrap(), Some(k + 7));
        }
        for k in 200..260u64 {
            assert_eq!(
                tree.get(k).unwrap(),
                None,
                "{strategy:?}: key {k} should be lost"
            );
        }
        tree.validate().unwrap();
    }
}

#[test]
fn deep_trees_stay_uniform_depth() {
    // Small pages force depth > 3; validate() enforces uniform depth.
    let mut tree = BTree::new(SplitStrategy::Generalized, 8).unwrap();
    for k in 0..1_000u64 {
        tree.insert(mix64(k), k).unwrap();
    }
    assert_eq!(tree.validate().unwrap(), 1_000);
    tree.db.log.flush_all();
    tree.crash();
    tree.recover().unwrap();
    assert_eq!(tree.validate().unwrap(), 1_000);
}
