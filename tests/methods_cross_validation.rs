//! Cross-method integration: all four §6 recovery methods against the
//! crash-injection harness, with the theory audit enabled, across seeds
//! and knob settings.

use redo_recovery::methods::generalized::Generalized;
use redo_recovery::methods::harness::{run, HarnessConfig, HarnessReport};
use redo_recovery::methods::logical::Logical;
use redo_recovery::methods::physical::Physical;
use redo_recovery::methods::physiological::Physiological;
use redo_recovery::methods::RecoveryMethod;
use redo_recovery::sim::backend::BackendKind;
use redo_recovery::workload::pages::{PageOp, PageWorkloadSpec};

fn blind_ops(n: usize, seed: u64) -> Vec<PageOp> {
    PageWorkloadSpec {
        n_ops: n,
        n_pages: 6,
        blind_fraction: 1.0,
        ..Default::default()
    }
    .generate(seed)
}

fn physio_ops(n: usize, seed: u64) -> Vec<PageOp> {
    PageWorkloadSpec {
        n_ops: n,
        n_pages: 6,
        ..Default::default()
    }
    .generate(seed)
}

fn cross_ops(n: usize, seed: u64) -> Vec<PageOp> {
    PageWorkloadSpec {
        n_ops: n,
        n_pages: 6,
        cross_page_fraction: 0.5,
        blind_fraction: 0.1,
        ..Default::default()
    }
    .generate(seed)
}

fn sweep<M: RecoveryMethod>(method: &M, ops_for: fn(usize, u64) -> Vec<PageOp>) -> HarnessReport {
    let mut last = HarnessReport::default();
    for seed in 0..6 {
        for (ckpt, crash) in [(Some(8), Some(13)), (None, Some(20)), (Some(5), Some(7))] {
            let cfg = HarnessConfig {
                checkpoint_every: ckpt,
                crash_every: crash,
                chaos: Some((0.7, 0.3)),
                seed,
                audit: true,
                slots_per_page: 8,
                pool_capacity: None,
                fault: None,
                backend: BackendKind::Mem,
                log_shards: 1,
            };
            last = run(method, &ops_for(80, seed), &cfg).unwrap_or_else(|e| {
                panic!(
                    "{} seed {seed} ckpt {ckpt:?} crash {crash:?}: {e}",
                    method.name()
                )
            });
            assert!(last.crashes > 0);
            assert!(last.audits > 0);
        }
    }
    last
}

#[test]
fn physical_sweep() {
    let r = sweep(&Physical, blind_ops);
    assert_eq!(r.total_skipped, 0, "physical's redo test is constant true");
}

#[test]
fn physiological_sweep() {
    sweep(&Physiological, physio_ops);
}

#[test]
fn generalized_sweep() {
    sweep(&Generalized, cross_ops);
}

#[test]
fn logical_sweep() {
    sweep(&Logical, cross_ops);
}

#[test]
fn generalized_multi_page_sweep_with_audit() {
    // §5's multi-variable write sets: atomic flush groups must keep
    // every crash state explainable, which the audit verifies against
    // the theory at each crash.
    for seed in 0..6 {
        let ops = PageWorkloadSpec {
            n_ops: 80,
            n_pages: 6,
            cross_page_fraction: 0.3,
            multi_page_fraction: 0.3,
            blind_fraction: 0.1,
            ..Default::default()
        }
        .generate(seed);
        let cfg = HarnessConfig {
            checkpoint_every: Some(9),
            crash_every: Some(13),
            chaos: Some((0.8, 0.4)),
            seed,
            audit: true,
            slots_per_page: 8,
            pool_capacity: None,
            fault: None,
            backend: BackendKind::Mem,
            log_shards: 1,
        };
        run(&Generalized, &ops, &cfg).unwrap_or_else(|e| panic!("multi-page seed {seed}: {e}"));
    }
}

#[test]
fn logical_disk_only_moves_at_checkpoints() {
    // Between checkpoints the installed state is frozen; the page-write
    // count only advances through staging + pointer swing.
    use redo_recovery::sim::db::{Db, Geometry};
    let ops = cross_ops(30, 1);
    let mut db: Db<_> = Db::new(Geometry { slots_per_page: 8 });
    for op in &ops[..10] {
        Logical.execute(&mut db, op).unwrap();
    }
    assert_eq!(db.disk.page_writes(), 0);
    Logical.checkpoint(&mut db).unwrap();
    let after_first = db.disk.page_writes();
    assert!(after_first > 0);
    for op in &ops[10..20] {
        Logical.execute(&mut db, op).unwrap();
    }
    assert_eq!(db.disk.page_writes(), after_first);
}

#[test]
fn bounded_pool_methods_still_recover() {
    // A tiny buffer pool forces evictions (and thus page flushes) on
    // the LSN methods; recovery must still be exact.
    for seed in 0..3 {
        let cfg = HarnessConfig {
            checkpoint_every: Some(10),
            crash_every: Some(15),
            chaos: Some((0.9, 0.2)),
            seed,
            audit: true,
            slots_per_page: 8,
            pool_capacity: Some(3),
            fault: None,
            backend: BackendKind::Mem,
            log_shards: 1,
        };
        run(&Physiological, &physio_ops(60, seed), &cfg)
            .unwrap_or_else(|e| panic!("physiological bounded pool seed {seed}: {e}"));
        run(&Generalized, &cross_ops(60, seed), &cfg)
            .unwrap_or_else(|e| panic!("generalized bounded pool seed {seed}: {e}"));
    }
}

#[test]
fn more_frequent_checkpoints_never_hurt_replay_volume() {
    let mk = |every| HarnessConfig {
        checkpoint_every: every,
        crash_every: Some(20),
        chaos: Some((1.0, 0.0)),
        seed: 3,
        audit: false,
        slots_per_page: 8,
        pool_capacity: None,
        fault: None,
        backend: BackendKind::Mem,
        log_shards: 1,
    };
    let rare = run(&Physical, &blind_ops(100, 3), &mk(Some(50))).unwrap();
    let frequent = run(&Physical, &blind_ops(100, 3), &mk(Some(5))).unwrap();
    assert!(
        frequent.total_replayed <= rare.total_replayed,
        "{} > {}",
        frequent.total_replayed,
        rare.total_replayed
    );
}

#[test]
fn log_volume_ordering_physical_vs_physiological() {
    // Physical logs after-images per cell; physiological logs the
    // operation. For single-cell blind ops the volumes are comparable,
    // but for multi-cell operations physical grows with the write set.
    let multi = PageWorkloadSpec {
        n_ops: 80,
        n_pages: 4,
        blind_fraction: 1.0,
        max_writes: 4,
        ..Default::default()
    }
    .generate(9);
    let cfg = HarnessConfig {
        checkpoint_every: None,
        crash_every: None,
        chaos: None,
        seed: 0,
        audit: false,
        slots_per_page: 8,
        pool_capacity: None,
        fault: None,
        backend: BackendKind::Mem,
        log_shards: 1,
    };
    let phys = run(&Physical, &multi, &cfg).unwrap();
    let physio = run(&Physiological, &physio_ops(80, 9), &cfg).unwrap();
    assert!(phys.log_bytes > 0 && physio.log_bytes > 0);
}
