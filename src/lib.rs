//! # redo-recovery
//!
//! Umbrella crate for the mechanized reproduction of *A Theory of Redo
//! Recovery* (Lomet & Tuttle, SIGMOD 2003). Re-exports the workspace
//! crates under one roof:
//!
//! * [`theory`] — the paper's formalism: conflict/installation/state/
//!   write graphs, exposed variables, explainable states, the abstract
//!   recovery procedure and the recovery invariant.
//! * [`workload`] — operation-sequence generators.
//! * [`sim`] — the simulated storage substrate (pages, disk, buffer
//!   pool, write-ahead log, checkpoints, crash injection).
//! * [`methods`] — the four concrete recovery methods of §6.
//! * [`btree`] — a paged B-tree exercising physiological vs
//!   generalized-LSN split logging (Figure 8).
//! * [`checker`] — the exhaustive recovery model checker.
//!
//! See `examples/` for runnable walkthroughs, starting with
//! `examples/quickstart.rs`.

pub use redo_btree as btree;
pub use redo_checker as checker;
pub use redo_methods as methods;
pub use redo_sim as sim;
pub use redo_theory as theory;
pub use redo_workload as workload;
