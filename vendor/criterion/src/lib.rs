//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors a small timing harness with the same shape: benchmark
//! groups, `bench_function` / `bench_with_input`, `iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!`
//! macros. It calibrates an iteration count per benchmark, takes a few
//! samples, and prints the median ns/iter — no statistics engine, no
//! HTML reports.
//!
//! Environment knobs: `BENCH_MEASURE_MS` (per-sample budget,
//! default 20) and `BENCH_SAMPLES` (default 5).

use std::fmt;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub mod measurement {
    //! Measurement marker types (the stand-in only measures wall time).

    /// Wall-clock time measurement.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies a benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id for `function_name` at `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { name }
    }
}

/// Throughput annotation (recorded but not rendered by the stand-in).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the
/// stand-in; every iteration gets a fresh input).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    measure: Duration,
    samples: u32,
}

impl Settings {
    fn from_env() -> Settings {
        let ms = std::env::var("BENCH_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        let samples = std::env::var("BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5);
        Settings {
            measure: Duration::from_millis(ms),
            samples: samples.max(1),
        }
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            settings: Settings::from_env(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            group: name.into(),
            settings: self.settings,
            _m: PhantomData,
        }
    }

    /// Benchmarks a single routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().name, self.settings, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    group: String,
    settings: Settings,
    _m: PhantomData<&'a M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Records the work performed per iteration (accepted for API
    /// compatibility; the stand-in does not derive rates from it).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.group, id.name), self.settings, f);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Times a routine for one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, settings: Settings, mut f: F) {
    // Calibrate: grow the iteration count until one sample fills the
    // per-sample budget (or the count is clearly large enough).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= settings.measure || iters >= 1 << 20 {
            break;
        }
        let per_iter = (b.elapsed.as_nanos() / u128::from(iters)).max(1);
        let target = (settings.measure.as_nanos() / per_iter).max(1);
        let next = u64::try_from(target)
            .unwrap_or(u64::MAX)
            .min(iters.saturating_mul(100));
        iters = next.max(iters + 1).min(1 << 20);
    }

    let mut samples: Vec<f64> = (0..settings.samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = samples[samples.len() / 2];
    println!(
        "{name:<60} {median:>12.1} ns/iter  ({iters} iters x {} samples)",
        samples.len()
    );
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        std::env::set_var("BENCH_MEASURE_MS", "1");
        std::env::set_var("BENCH_SAMPLES", "2");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        let mut ran = false;
        group.throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::new("noop", 4), |b| {
            b.iter(|| black_box(2 + 2));
            ran = true;
        });
        group.bench_with_input("with_input", &3u64, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::SmallInput);
        });
        group.finish();
        assert!(ran);
    }
}
