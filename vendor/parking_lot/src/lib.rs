//! Offline stand-in for the subset of the `parking_lot` 0.12 API this
//! workspace uses: a `Mutex` whose `lock()` returns the guard directly
//! (no poisoning). Backed by `std::sync::Mutex`; a poisoned std lock
//! (panicking holder) is transparently recovered, matching
//! `parking_lot`'s no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard { inner }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_counter() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }
}
