//! The standard RNG: xoshiro256++, a small, fast, high-quality PRNG.
//! (Real `rand 0.8` uses ChaCha12 here; nothing in this workspace
//! depends on the exact stream, only on determinism per seed.)

use crate::{RngCore, SeedableRng};

/// A deterministic, seedable RNG (xoshiro256++).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> StdRng {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state.
            let mut sm = 0x5eed_5eed_5eed_5eed;
            for word in &mut s {
                *word = crate::splitmix64(&mut sm);
            }
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0), "{draws:?}");
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = a.clone();
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }
}
