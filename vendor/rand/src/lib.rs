//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors the handful of APIs it needs instead of the real crate: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, uniform integer/float
//! range sampling, and a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via splitmix64). The distributions are uniform
//! via 64-bit modulo reduction — statistically fine for tests and
//! benches, which is all this workspace asks of it.

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Low-level source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be sampled uniformly from their full value range by
/// [`Rng::gen`] (the stand-in for the `Standard` distribution).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from the type's full range (`Standard`
    /// distribution in real `rand`; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of [0, 1]"
        );
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it with splitmix64 —
    /// the same scheme real `rand` uses (up to constants).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm);
            for (b, s) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=5u8);
            assert_eq!(w, 5);
            let s: usize = rng.gen_range(0..1);
            assert_eq!(s, 0);
            let i: i32 = rng.gen_range(-4..4);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }
}
