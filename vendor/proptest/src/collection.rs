//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Generates a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let strat = vec(0..4u32, 2..5);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn nested_vec_composes() {
        let mut rng = StdRng::seed_from_u64(7);
        let strat = vec(vec(0..10u8, 0..3), 1..4);
        let v = strat.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 4);
    }
}
