//! The case runner behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs were unsuitable; it does not count as a failure.
    Reject(String),
    /// The property does not hold.
    Fail(String),
}

impl TestCaseError {
    /// A failing outcome with the given message.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (skipped) outcome with the given message.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(msg) => write!(f, "case rejected: {msg}"),
            TestCaseError::Fail(msg) => write!(f, "case failed: {msg}"),
        }
    }
}

/// Outcome of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs `config.cases` generated cases of one property.
///
/// `case` generates inputs from the RNG and returns the body's outcome
/// (caught panics included) plus a rendering of the inputs for failure
/// reports. The RNG is seeded from the fully-qualified test name, so
/// every test gets a distinct, reproducible sequence.
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) on the first failing case,
/// with the generated inputs in the message.
pub fn run_cases<F>(config: &Config, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> (std::thread::Result<TestCaseResult>, String),
{
    let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
    for case_no in 0..config.cases {
        let (outcome, inputs) = case(&mut rng);
        match outcome {
            Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "{name}: case {case_no}/{} failed: {msg}\ninputs:\n{inputs}",
                    config.cases
                )
            }
            Err(payload) => {
                eprintln!(
                    "{name}: case {case_no}/{} panicked; inputs:\n{inputs}",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_names_get_distinct_seeds() {
        assert_ne!(fnv1a(b"mod::test_a"), fnv1a(b"mod::test_b"));
    }

    #[test]
    fn runs_exactly_cases_times() {
        let mut runs = 0;
        run_cases(&Config::with_cases(17), "counter", |_| {
            runs += 1;
            (Ok(Ok(())), String::new())
        });
        assert_eq!(runs, 17);
    }

    #[test]
    fn rejects_do_not_fail() {
        run_cases(&Config::with_cases(3), "rejects", |_| {
            (Ok(Err(TestCaseError::reject("skip"))), String::new())
        });
    }

    #[test]
    #[should_panic(expected = "bad case")]
    fn failures_panic_with_message() {
        run_cases(&Config::with_cases(3), "fails", |_| {
            (Ok(Err(TestCaseError::fail("bad case"))), "  x = 1\n".into())
        });
    }
}
