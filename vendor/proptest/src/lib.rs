//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors what it needs: the [`Strategy`](strategy::Strategy) trait
//! with range/tuple/vec/map combinators, `any::<T>()`, `prop::sample`,
//! `prop::option`, a test runner with per-test deterministic seeding,
//! and the `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim; minimize by hand or by pinning a unit test.
//! * **No persistence.** `*.proptest-regressions` files are neither
//!   read nor written; regressions worth keeping become unit tests.
//! * Generation is uniform rather than size-biased.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` module alias (`prop::sample::Index`, `prop::option::of`, …).
    pub mod prop {
        pub use crate::{collection, option, sample, strategy};
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                &$config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, __rng);)+
                    let __inputs = ::std::format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                        $(&$arg,)+
                    );
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> $crate::test_runner::TestCaseResult {
                                { $body }
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    (__result, __inputs)
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// the generated inputs attached) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        $crate::prop_assert_eq!($left, $right, "prop_assert_eq!")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "{}: left = {:?}, right = {:?}",
            ::std::format!($($fmt)+),
            __left,
            __right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        $crate::prop_assert_ne!($left, $right, "prop_assert_ne!")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "{}: both sides = {:?}",
            ::std::format!($($fmt)+),
            __left
        );
    }};
}
