//! `prop::option` — strategies for `Option<T>`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Generates `Some` of the inner strategy about half the time, `None`
/// otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_bool(0.5) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn produces_both_variants() {
        let mut rng = StdRng::seed_from_u64(8);
        let strat = of(0..10usize);
        let draws: Vec<_> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().flatten().all(|&v| v < 10));
    }
}
