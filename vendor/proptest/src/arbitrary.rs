//! `any::<T>()` — strategies for types with a canonical distribution.

use std::fmt;
use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::RngCore;

use crate::strategy::Strategy;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Clone + fmt::Debug {
    /// Draws one value from the type's canonical distribution.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_u8_covers_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = any::<u8>();
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 250);
    }
}
