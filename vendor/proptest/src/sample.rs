//! `prop::sample` — sampling helpers.

use rand::rngs::StdRng;
use rand::RngCore;

use crate::arbitrary::Arbitrary;

/// A deferred index: a random draw that can be projected onto any
/// non-empty collection length after generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects the draw onto `0..size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "cannot index an empty collection");
        (self.0 % size as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut StdRng) -> Index {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projects_into_bounds() {
        for raw in [0, 1, 41, u64::MAX] {
            let idx = Index(raw);
            for size in [1usize, 2, 7, 1_000] {
                assert!(idx.index(size) < size);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_collection_panics() {
        let _ = Index(3).index(0);
    }
}
