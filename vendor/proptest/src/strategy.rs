//! The [`Strategy`] trait and the combinators the workspace uses:
//! integer ranges, tuples, and `prop_map`.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating test-case values.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the runner's RNG.
pub trait Strategy {
    /// The type of generated values. `Clone` lets the runner keep a copy
    /// for the failure report; `Debug` lets it print one.
    type Value: Clone + fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F, O>
    where
        Self: Sized,
        O: Clone + fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            f,
            _out: PhantomData,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F, O> {
    source: S,
    f: F,
    _out: PhantomData<fn() -> O>,
}

impl<S, F, O> Strategy for Map<S, F, O>
where
    S: Strategy,
    O: Clone + fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! strategy_for_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_for_tuple {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
strategy_for_tuple!(A.0);
strategy_for_tuple!(A.0, B.1);
strategy_for_tuple!(A.0, B.1, C.2);
strategy_for_tuple!(A.0, B.1, C.2, D.3);
strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4);
strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);
strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = StdRng::seed_from_u64(11);
        let strat = (0..5u32, 10..20usize).prop_map(|(a, b)| a as usize + b);
        for _ in 0..1_000 {
            let v = strat.generate(&mut rng);
            assert!((10..25).contains(&v), "{v}");
        }
    }
}
