//! # redo-workload
//!
//! Deterministic workload generators for the redo-recovery experiments.
//!
//! Every figure-level benchmark and most property tests need operation
//! sequences with controllable *conflict structure*: how often operations
//! read what earlier operations wrote (write-read edges the installation
//! graph may ignore), how often they blindly overwrite (unexposed
//! variables), how skewed variable access is (collapse pressure on the
//! write graph), and how long dependency chains grow. [`WorkloadSpec`]
//! exposes those knobs; [`WorkloadSpec::generate`] renders a
//! [`History`] reproducibly from a seed.
//!
//! The [`pages`] module generates *page-structured* workloads — abstract
//! descriptions of operations over `(page, slot)` cells — which
//! `redo-sim` and `redo-methods` interpret against the storage substrate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod pages;
mod zipf;

pub use zipf::Zipf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redo_theory::expr::Expr;
use redo_theory::history::History;
use redo_theory::op::{OpId, Operation};
use redo_theory::state::Var;

/// The overall conflict shape of a generated history.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Shape {
    /// Independent reads and writes drawn from the variable distribution.
    Random,
    /// Operation *i* reads a variable written by operation *i−1*,
    /// producing one long write-read/read-write chain — the worst case
    /// for installation freedom.
    Chain,
    /// Blind writes only: the physical-logging regime of §6.2. No
    /// read-write or write-read conflicts exist, so the installation
    /// graph is a union of per-variable write chains.
    Blind,
    /// Read-modify-write: every operation reads exactly the variables it
    /// writes (`x ← f(x)`), the classic page-update pattern of
    /// physiological logging (§6.3).
    ReadModifyWrite,
    /// Write-read heavy: most reads target recently written variables,
    /// maximizing the edges the installation graph gets to drop.
    WriteReadHeavy,
    /// Per-operation mixture: with probability `blind_fraction` the
    /// operation is a blind write, otherwise a read-modify-write of its
    /// target. The cleanest knob for sweeping *exposure*: a variable is
    /// unexposed exactly when its next uninstalled accessor drew the
    /// blind branch.
    MixedRmwBlind,
}

/// Parameters of a generated history.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of distinct variables.
    pub n_vars: u32,
    /// Number of operations.
    pub n_ops: usize,
    /// Maximum read-set size (actual sizes are drawn uniformly from
    /// `0..=max_reads`, except where the shape dictates otherwise).
    pub max_reads: usize,
    /// Maximum write-set size (sizes drawn from `1..=max_writes`).
    pub max_writes: usize,
    /// Probability that a written variable is written *blindly*
    /// (its assignment ignores every read), creating unexposed variables.
    pub blind_fraction: f64,
    /// Zipf skew of variable selection; `0.0` is uniform, larger values
    /// concentrate accesses on few variables (collapse pressure).
    pub skew: f64,
    /// The conflict shape.
    pub shape: Shape,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            n_vars: 16,
            n_ops: 32,
            max_reads: 2,
            max_writes: 2,
            blind_fraction: 0.3,
            skew: 0.0,
            shape: Shape::Random,
        }
    }
}

impl WorkloadSpec {
    /// A small spec suitable for the exhaustive checker (≤ `n_ops`
    /// operations over few variables so prefix enumeration stays cheap).
    #[must_use]
    pub fn tiny(n_ops: usize, n_vars: u32) -> WorkloadSpec {
        WorkloadSpec {
            n_vars,
            n_ops,
            max_reads: 1,
            max_writes: 1,
            ..WorkloadSpec::default()
        }
    }

    /// The physical-logging regime: blind single-variable writes.
    #[must_use]
    pub fn physical(n_ops: usize, n_vars: u32) -> WorkloadSpec {
        WorkloadSpec {
            n_vars,
            n_ops,
            max_reads: 0,
            max_writes: 1,
            blind_fraction: 1.0,
            shape: Shape::Blind,
            ..WorkloadSpec::default()
        }
    }

    /// The physiological regime: single-variable read-modify-writes.
    #[must_use]
    pub fn physiological(n_ops: usize, n_vars: u32) -> WorkloadSpec {
        WorkloadSpec {
            n_vars,
            n_ops,
            max_reads: 1,
            max_writes: 1,
            blind_fraction: 0.0,
            shape: Shape::ReadModifyWrite,
            ..WorkloadSpec::default()
        }
    }

    /// Generates the history deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n_vars == 0`, or if `max_writes == 0`.
    #[must_use]
    pub fn generate(&self, seed: u64) -> History {
        assert!(self.n_vars > 0, "need at least one variable");
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = Zipf::new(self.n_vars as usize, self.skew);
        let mut last_written: Option<Var> = None;
        let mut recently_written: Vec<Var> = Vec::new();
        let mut ops = Vec::with_capacity(self.n_ops);

        for i in 0..self.n_ops {
            let id = OpId(i as u32);
            let mut builder = Operation::builder(id);
            let (reads, writes) = match self.shape {
                Shape::Blind => (Vec::new(), self.draw_writes(&mut rng, &zipf)),
                Shape::ReadModifyWrite => {
                    let w = self.draw_writes(&mut rng, &zipf);
                    (w.clone(), w)
                }
                Shape::Chain => {
                    let reads = match last_written {
                        Some(v) => vec![v],
                        None => Vec::new(),
                    };
                    (reads, self.draw_writes(&mut rng, &zipf))
                }
                Shape::WriteReadHeavy => {
                    let n_reads = rng.gen_range(0..=self.max_reads);
                    let reads = (0..n_reads)
                        .map(|_| {
                            if !recently_written.is_empty() && rng.gen_bool(0.8) {
                                let k = rng.gen_range(0..recently_written.len());
                                recently_written[k]
                            } else {
                                Var(zipf.sample(&mut rng) as u32)
                            }
                        })
                        .collect();
                    (reads, self.draw_writes(&mut rng, &zipf))
                }
                Shape::Random => {
                    let n_reads = rng.gen_range(0..=self.max_reads);
                    let reads = (0..n_reads)
                        .map(|_| Var(zipf.sample(&mut rng) as u32))
                        .collect();
                    (reads, self.draw_writes(&mut rng, &zipf))
                }
                Shape::MixedRmwBlind => {
                    let w = self.draw_writes(&mut rng, &zipf);
                    if rng.gen_bool(self.blind_fraction.clamp(0.0, 1.0)) {
                        (Vec::new(), w)
                    } else {
                        (w.clone(), w)
                    }
                }
            };

            let mut dedup_writes = writes;
            dedup_writes.sort_unstable();
            dedup_writes.dedup();
            for &target in &dedup_writes {
                let blind = self.shape == Shape::Blind
                    || reads.is_empty()
                    || rng.gen_bool(self.blind_fraction.clamp(0.0, 1.0));
                let expr = if blind {
                    // A unique constant per (operation, target): any
                    // misordered install shows up as a value mismatch.
                    Expr::mix(vec![
                        Expr::constant(seed),
                        Expr::constant(i as u64),
                        Expr::constant(u64::from(target.0)),
                    ])
                } else {
                    let mut parts = vec![Expr::constant(seed ^ ((i as u64) << 20))];
                    parts.extend(reads.iter().map(|&r| Expr::read(r)));
                    Expr::mix(parts)
                };
                builder = builder.assign(target, expr);
            }
            // Reads that feed no expression still conflict; declare them.
            for &r in &reads {
                builder = builder.declare_read(r);
            }
            let op = builder
                .build()
                .expect("generator produces valid operations");
            last_written = op.writes().iter().next().copied();
            recently_written.extend(op.writes().iter().copied());
            let len = recently_written.len();
            if len > 8 {
                recently_written.drain(0..len - 8);
            }
            ops.push(op);
        }
        History::new(ops).expect("sequentially numbered")
    }

    fn draw_writes(&self, rng: &mut StdRng, zipf: &Zipf) -> Vec<Var> {
        assert!(
            self.max_writes > 0,
            "operations must write at least one variable"
        );
        let n = rng.gen_range(1..=self.max_writes);
        (0..n).map(|_| Var(zipf.sample(rng) as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redo_theory::conflict::ConflictGraph;
    use redo_theory::installation::InstallationGraph;
    use redo_theory::state::State;
    use redo_theory::state_graph::StateGraph;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.generate(7), spec.generate(7));
        assert_ne!(spec.generate(7), spec.generate(8));
    }

    #[test]
    fn generates_requested_counts() {
        let spec = WorkloadSpec {
            n_ops: 50,
            ..WorkloadSpec::default()
        };
        let h = spec.generate(1);
        assert_eq!(h.len(), 50);
        for op in h.iter() {
            assert!(!op.writes().is_empty());
            assert!(op.writes().iter().all(|v| v.0 < spec.n_vars));
            assert!(op.reads().iter().all(|v| v.0 < spec.n_vars));
        }
    }

    #[test]
    fn blind_shape_has_no_reads() {
        let h = WorkloadSpec::physical(40, 8).generate(3);
        for op in h.iter() {
            assert!(op.reads().is_empty(), "{op:?}");
            assert_eq!(op.writes().len(), 1);
        }
        // With no reads the installation graph equals the conflict graph.
        let cg = ConflictGraph::generate(&h);
        let ig = InstallationGraph::from_conflict(&cg);
        assert_eq!(cg.dag().edge_count(), ig.dag().edge_count());
    }

    #[test]
    fn read_modify_write_reads_equal_writes() {
        let h = WorkloadSpec::physiological(40, 8).generate(5);
        for op in h.iter() {
            assert_eq!(op.reads(), op.writes(), "{op:?}");
        }
    }

    #[test]
    fn chain_shape_builds_long_chains() {
        let spec = WorkloadSpec {
            n_ops: 30,
            n_vars: 64,
            shape: Shape::Chain,
            blind_fraction: 0.0,
            ..WorkloadSpec::default()
        };
        let h = spec.generate(11);
        let cg = ConflictGraph::generate(&h);
        // Each op (after the first) reads its predecessor's write, so
        // consecutive ops are connected.
        for i in 1..h.len() {
            assert!(
                !h.op(OpId(i as u32)).reads().is_empty(),
                "op {i} should read the previous write"
            );
        }
        assert!(cg.dag().edge_count() >= h.len() - 1);
    }

    #[test]
    fn write_read_heavy_drops_edges_in_installation_graph() {
        let spec = WorkloadSpec {
            n_ops: 60,
            n_vars: 16,
            shape: Shape::WriteReadHeavy,
            blind_fraction: 0.9,
            max_reads: 2,
            max_writes: 1,
            ..WorkloadSpec::default()
        };
        let h = spec.generate(13);
        let cg = ConflictGraph::generate(&h);
        let ig = InstallationGraph::from_conflict(&cg);
        assert!(
            !ig.removed_edges().is_empty(),
            "write-read heavy workloads should produce droppable edges"
        );
    }

    #[test]
    fn skewed_workloads_concentrate_accesses() {
        let uniform = WorkloadSpec {
            skew: 0.0,
            n_ops: 400,
            n_vars: 64,
            ..Default::default()
        };
        let skewed = WorkloadSpec {
            skew: 1.5,
            n_ops: 400,
            n_vars: 64,
            ..Default::default()
        };
        let hot = |h: &History| {
            let mut counts = vec![0usize; 64];
            for op in h.iter() {
                for v in op.writes() {
                    counts[v.0 as usize] += 1;
                }
            }
            *counts.iter().max().unwrap()
        };
        assert!(hot(&skewed.generate(2)) > hot(&uniform.generate(2)));
    }

    #[test]
    fn generated_histories_satisfy_theorem3_on_prefixes() {
        // Smoke-level cross-check with the theory crate: conflict-order
        // prefixes of generated workloads are recoverable.
        for seed in 0..5 {
            let h = WorkloadSpec {
                n_ops: 12,
                ..Default::default()
            }
            .generate(seed);
            let s0 = State::zeroed();
            let cg = ConflictGraph::generate(&h);
            let sg = StateGraph::from_conflict(&h, &cg, &s0);
            for cut in [0, h.len() / 2, h.len()] {
                let prefix = redo_theory::graph::NodeSet::from_indices(h.len(), 0..cut);
                let state = sg.state_determined_by(&prefix);
                assert!(redo_theory::replay::potentially_recoverable(
                    &h, &cg, &sg, &prefix, &state
                ));
            }
        }
    }
}
