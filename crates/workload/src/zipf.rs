//! A small Zipf/uniform sampler over `0..n`.
//!
//! `rand_distr` is not in the approved offline crate set, and we only
//! need inverse-CDF sampling over a fixed, modest support, so a
//! precomputed cumulative table is simpler and faster than rejection
//! sampling anyway.

use rand::Rng;

/// A sampler drawing indices in `0..n` with probability proportional to
/// `1 / (i + 1)^s`. With `s == 0` this degenerates to the uniform
/// distribution.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with exponent `s ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "empty support");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of items in the support.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Is the support empty? (Never true; kept for API symmetry.)
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(z: &Zipf, draws: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; z.len()];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(4, 0.0);
        let counts = histogram(&z, 40_000);
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn skew_prefers_low_indices() {
        let z = Zipf::new(16, 1.2);
        let counts = histogram(&z, 40_000);
        assert!(counts[0] > counts[8] * 4, "{counts:?}");
        // Monotone-ish: first item dominates the tail sum of the last 8.
        let tail: usize = counts[8..].iter().sum();
        assert!(counts[0] > tail / 2);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn single_item_support() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
