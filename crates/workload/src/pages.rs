//! Page-structured workloads.
//!
//! The storage substrate (`redo-sim`) organizes state into pages of
//! fixed-size slots. A [`PageOp`] describes one logged operation at that
//! granularity: the cells it reads, the cells it writes, and a seed that
//! makes its output values unique. The same description serves three
//! consumers:
//!
//! * `redo-sim` executes it against the buffer pool;
//! * `redo-methods` logs it under each §6 recovery method;
//! * [`PageWorkloadSpec::to_history`] projects it into a theory-level
//!   [`History`] so the recovery invariant can be audited
//!   against the simulated database.
//!
//! Physiological operations (§6.3) read and write a single page.
//! Generalized-LSN operations (§6.4) may *read* other pages but still
//! write one page (the B-tree split's "read old page, write new page").
//! Blind writes never read (physical logging, §6.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redo_theory::expr::Expr;
use redo_theory::history::History;
use redo_theory::op::{OpId, Operation};
use redo_theory::state::Var;

use crate::Zipf;

/// Identifier of a page in the simulated database.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageId(pub u32);

/// Slot index within a page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SlotId(pub u16);

/// One addressable cell: a slot of a page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Cell {
    /// Containing page.
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

impl Cell {
    /// The theory variable this cell projects to, given the workload's
    /// page geometry.
    #[must_use]
    pub fn var(self, slots_per_page: u16) -> Var {
        Var(self.page.0 * u32::from(slots_per_page) + u32::from(self.slot.0))
    }
}

/// How the operation is allowed to touch pages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageOpKind {
    /// Reads and writes exactly one page (§6.3).
    Physiological,
    /// Writes one page but may read others (§6.4).
    Generalized,
    /// Writes without reading (§6.2).
    Blind,
    /// Reads and writes cells across *several* pages — §5's
    /// multi-variable write sets, requiring an atomic multi-page
    /// install.
    MultiPage,
}

/// A logged operation over page slots.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PageOp {
    /// Sequence number within the workload (doubles as the theory OpId).
    pub id: u32,
    /// The operation's structural class.
    pub kind: PageOpKind,
    /// Cells read, in a fixed order (the order feeds the output mix).
    pub reads: Vec<Cell>,
    /// Cells written; all on one page for physiological and generalized
    /// operations.
    pub writes: Vec<Cell>,
    /// Seed folded into every output value.
    pub f_seed: u64,
}

/// The splitmix64 finalizer; the deterministic "logic" of generated
/// operations.
#[must_use]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl PageOp {
    /// A geometry-free 64-bit code for a cell, folded into output values
    /// and into the theory projection identically.
    #[must_use]
    pub fn cell_code(cell: Cell) -> u64 {
        (u64::from(cell.page.0) << 16) | u64::from(cell.slot.0)
    }

    /// The value this operation writes into `cell`, given the values of
    /// its read cells (in `self.reads` order). Deterministic, so redo
    /// replay reproduces it exactly.
    ///
    /// The computation is *bit-identical* to evaluating the
    /// [`Expr::Mix`] body produced by [`PageOp::to_operation`]: the
    /// simulated database and the theory model therefore agree on every
    /// slot value, not merely on conflict structure, which lets the
    /// crash harness compare them with plain equality.
    #[must_use]
    pub fn output(&self, cell: Cell, read_values: &[u64]) -> u64 {
        debug_assert_eq!(read_values.len(), self.reads.len());
        // Mirrors Expr::Mix evaluation: acc starts at the mix tag and
        // folds each part with xor-then-finalize.
        let mut acc = 0x51ed_270bu64;
        acc = mix64(acc ^ (self.f_seed ^ u64::from(self.id)));
        acc = mix64(acc ^ Self::cell_code(cell));
        for &v in read_values {
            acc = mix64(acc ^ v);
        }
        acc
    }

    /// The distinct pages in the write set (one for physiological and
    /// generalized ops).
    #[must_use]
    pub fn written_pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self.writes.iter().map(|c| c.page).collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    /// The distinct pages in the read set.
    #[must_use]
    pub fn read_pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self.reads.iter().map(|c| c.page).collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    /// Projects this operation into a theory-level [`Operation`] at slot
    /// granularity. The expression body evaluates to *exactly* the values
    /// [`PageOp::output`] computes (same mix chain over the same reads),
    /// so the theory-level state sequence and the simulated database
    /// agree slot-for-slot — the crash harness exploits this to audit the
    /// recovery invariant against real disk contents.
    #[must_use]
    pub fn to_operation(&self, slots_per_page: u16) -> Operation {
        let mut b = Operation::builder(OpId(self.id));
        for &w in &self.writes {
            let mut parts = vec![
                Expr::constant(self.f_seed ^ u64::from(self.id)),
                Expr::constant(Self::cell_code(w)),
            ];
            parts.extend(
                self.reads
                    .iter()
                    .map(|&r| Expr::read(r.var(slots_per_page))),
            );
            b = b.assign(w.var(slots_per_page), Expr::mix(parts));
        }
        for &r in &self.reads {
            b = b.declare_read(r.var(slots_per_page));
        }
        b.build().expect("generated page ops are well-formed")
    }
}

/// Parameters for page-structured workload generation.
#[derive(Clone, Debug)]
pub struct PageWorkloadSpec {
    /// Number of pages.
    pub n_pages: u32,
    /// Slots per page.
    pub slots_per_page: u16,
    /// Number of operations.
    pub n_ops: usize,
    /// Zipf skew of page selection.
    pub skew: f64,
    /// Fraction of operations that read a second page (generalized ops);
    /// the rest are physiological unless blind.
    pub cross_page_fraction: f64,
    /// Fraction of operations that *write* two pages (multi-page ops,
    /// needing atomic installs). Checked after the blind/cross draws.
    pub multi_page_fraction: f64,
    /// Fraction of operations that are blind single-cell writes.
    pub blind_fraction: f64,
    /// Maximum cells written per operation (within one page).
    pub max_writes: usize,
}

impl Default for PageWorkloadSpec {
    fn default() -> Self {
        PageWorkloadSpec {
            n_pages: 8,
            slots_per_page: 8,
            n_ops: 64,
            skew: 0.0,
            cross_page_fraction: 0.0,
            blind_fraction: 0.0,
            multi_page_fraction: 0.0,
            max_writes: 2,
        }
    }
}

impl PageWorkloadSpec {
    /// Generates the page operations deterministically from `seed`.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Vec<PageOp> {
        assert!(self.n_pages > 0 && self.slots_per_page > 0 && self.max_writes > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = Zipf::new(self.n_pages as usize, self.skew);
        let mut ops = Vec::with_capacity(self.n_ops);
        for i in 0..self.n_ops {
            let page = PageId(zipf.sample(&mut rng) as u32);
            let cell = |rng: &mut StdRng, p: PageId| Cell {
                page: p,
                slot: SlotId(rng.gen_range(0..self.slots_per_page)),
            };
            let blind = rng.gen_bool(self.blind_fraction.clamp(0.0, 1.0));
            let cross = !blind && rng.gen_bool(self.cross_page_fraction.clamp(0.0, 1.0));
            let multi = !blind
                && !cross
                && self.n_pages > 1
                && rng.gen_bool(self.multi_page_fraction.clamp(0.0, 1.0));
            let (kind, reads, writes) = if multi {
                // Read one cell of the primary page, write one cell on
                // each of two pages: the E/F-style entangled update.
                let mut other = PageId(zipf.sample(&mut rng) as u32);
                while other == page {
                    other = PageId(rng.gen_range(0..self.n_pages));
                }
                let mut writes = vec![cell(&mut rng, page), cell(&mut rng, other)];
                writes.sort_unstable();
                writes.dedup();
                (PageOpKind::MultiPage, vec![cell(&mut rng, page)], writes)
            } else if blind {
                (PageOpKind::Blind, Vec::new(), vec![cell(&mut rng, page)])
            } else if cross && self.n_pages > 1 {
                // Read one cell of a different page, write this page.
                let mut other = PageId(zipf.sample(&mut rng) as u32);
                while other == page {
                    other = PageId(rng.gen_range(0..self.n_pages));
                }
                let mut writes: Vec<Cell> = (0..rng.gen_range(1..=self.max_writes))
                    .map(|_| cell(&mut rng, page))
                    .collect();
                writes.sort_unstable();
                writes.dedup();
                (
                    PageOpKind::Generalized,
                    vec![cell(&mut rng, other), cell(&mut rng, page)],
                    writes,
                )
            } else {
                let mut writes: Vec<Cell> = (0..rng.gen_range(1..=self.max_writes))
                    .map(|_| cell(&mut rng, page))
                    .collect();
                writes.sort_unstable();
                writes.dedup();
                (
                    PageOpKind::Physiological,
                    vec![cell(&mut rng, page)],
                    writes,
                )
            };
            ops.push(PageOp {
                id: i as u32,
                kind,
                reads,
                writes,
                f_seed: mix64(seed ^ i as u64),
            });
        }
        ops
    }

    /// Projects a generated workload into a theory-level history at slot
    /// granularity.
    #[must_use]
    pub fn to_history(&self, ops: &[PageOp]) -> History {
        History::new(
            ops.iter()
                .map(|op| op.to_operation(self.slots_per_page))
                .collect(),
        )
        .expect("sequential ids")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_project_to_distinct_vars() {
        let a = Cell {
            page: PageId(0),
            slot: SlotId(7),
        };
        let b = Cell {
            page: PageId(1),
            slot: SlotId(0),
        };
        assert_ne!(a.var(8), b.var(8));
        assert_eq!(a.var(8), Var(7));
        assert_eq!(b.var(8), Var(8));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = PageWorkloadSpec::default();
        assert_eq!(spec.generate(3), spec.generate(3));
    }

    #[test]
    fn physiological_ops_stay_on_one_page() {
        let spec = PageWorkloadSpec {
            n_ops: 80,
            ..Default::default()
        };
        for op in spec.generate(1) {
            assert_eq!(op.kind, PageOpKind::Physiological);
            assert_eq!(op.written_pages().len(), 1);
            assert_eq!(op.read_pages(), op.written_pages());
        }
    }

    #[test]
    fn blind_ops_never_read() {
        let spec = PageWorkloadSpec {
            blind_fraction: 1.0,
            n_ops: 40,
            ..Default::default()
        };
        for op in spec.generate(2) {
            assert_eq!(op.kind, PageOpKind::Blind);
            assert!(op.reads.is_empty());
        }
    }

    #[test]
    fn generalized_ops_read_other_pages_but_write_one() {
        let spec = PageWorkloadSpec {
            cross_page_fraction: 1.0,
            n_pages: 4,
            n_ops: 40,
            ..Default::default()
        };
        let ops = spec.generate(3);
        let generalized: Vec<_> = ops
            .iter()
            .filter(|o| o.kind == PageOpKind::Generalized)
            .collect();
        assert!(!generalized.is_empty());
        for op in generalized {
            assert_eq!(op.written_pages().len(), 1);
            assert!(op.read_pages().len() >= 2, "{op:?}");
        }
    }

    #[test]
    fn output_depends_on_reads_and_cell() {
        let op = PageOp {
            id: 5,
            kind: PageOpKind::Physiological,
            reads: vec![Cell {
                page: PageId(0),
                slot: SlotId(0),
            }],
            writes: vec![Cell {
                page: PageId(0),
                slot: SlotId(1),
            }],
            f_seed: 99,
        };
        let c = op.writes[0];
        assert_eq!(op.output(c, &[1]), op.output(c, &[1]));
        assert_ne!(op.output(c, &[1]), op.output(c, &[2]));
        let other = Cell {
            page: PageId(0),
            slot: SlotId(2),
        };
        assert_ne!(op.output(c, &[1]), op.output(other, &[1]));
    }

    #[test]
    fn projection_preserves_conflict_structure() {
        let spec = PageWorkloadSpec {
            n_ops: 30,
            cross_page_fraction: 0.5,
            blind_fraction: 0.2,
            ..Default::default()
        };
        let ops = spec.generate(9);
        let h = spec.to_history(&ops);
        assert_eq!(h.len(), ops.len());
        for (page_op, theory_op) in ops.iter().zip(h.iter()) {
            let want_reads: std::collections::BTreeSet<Var> = page_op
                .reads
                .iter()
                .map(|c| c.var(spec.slots_per_page))
                .collect();
            let want_writes: std::collections::BTreeSet<Var> = page_op
                .writes
                .iter()
                .map(|c| c.var(spec.slots_per_page))
                .collect();
            assert_eq!(theory_op.reads(), &want_reads);
            assert_eq!(theory_op.writes(), &want_writes);
        }
    }

    #[test]
    fn mix64_spreads() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn output_matches_theory_expression_bit_for_bit() {
        // The cornerstone of the sim/theory cross-validation: running a
        // page workload against the substrate and running its projection
        // through the theory produce identical slot values.
        use redo_theory::state::{State, Value};
        let spec = PageWorkloadSpec {
            n_ops: 40,
            cross_page_fraction: 0.4,
            blind_fraction: 0.2,
            n_pages: 4,
            ..Default::default()
        };
        let ops = spec.generate(17);
        let h = spec.to_history(&ops);
        // Simulated execution over a plain slot map.
        let mut cells: std::collections::BTreeMap<Cell, u64> = std::collections::BTreeMap::new();
        // Theory execution.
        let mut theory = State::zeroed();
        for (page_op, theory_op) in ops.iter().zip(h.iter()) {
            let reads: Vec<u64> = page_op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &page_op.writes {
                cells.insert(w, page_op.output(w, &reads));
            }
            theory_op.apply(&mut theory);
        }
        for (&cell, &v) in &cells {
            assert_eq!(
                theory.get(cell.var(spec.slots_per_page)),
                Value(v),
                "cell {cell:?} diverged between sim and theory"
            );
        }
    }
}
