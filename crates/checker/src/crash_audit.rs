//! Seeded crash-schedule audit with fault injection.
//!
//! [`crate::exhaustive`] enumerates every *flush* schedule of a tiny
//! workload, but its crashes are polite: whole pages, whole log
//! records. This module samples many larger schedules and makes the
//! crashes hostile — each schedule arms a random
//! [`FaultPlan`](redo_sim::fault::FaultPlan) (a clean stop, a torn page
//! write, or a partial log flush at a random faultable I/O event) and
//! then drives the method through the full degradation loop the paper's
//! Corollary 4 must survive:
//!
//! 1. **Run** the workload with background chaos and checkpoints until
//!    the fault trips (or the workload ends), then crash and run media
//!    repair ([`redo_sim::db::Db::repair_after_crash`]).
//! 2. **Probe recovery**: on a clone of the crashed image, run recovery
//!    to completion and check the Recovery Invariant — the realized
//!    redo set joined with the repaired disk state must be explained by
//!    an installation-graph prefix of the durable history — plus exact
//!    state equality with the durable prefix's final state. A *second*
//!    clone recovers with the LSN seek index disabled: the index is
//!    purely an access-path optimization, so both probes must reach the
//!    identical recovered state with identical semantic redo stats. A
//!    *third* clone — for methods whose discipline admits one — runs
//!    the page-partitioned **parallel restart**
//!    ([`RecoveryMethod::parallel_restart`]) and must reach the same
//!    state while passing the invariant for its own redo set. A
//!    *fourth* clone — for methods implementing the instant-restart
//!    path ([`RecoveryMethod::ondemand_restart`]) — opens immediately
//!    and serves a read probe on every durable cell *while recovery is
//!    still running*; each mid-recovery value must equal what the page
//!    finally holds, and the drained state must match the sequential
//!    probe exactly.
//! 3. **Crash mid-recovery**: on the real image, arm a *second* fault
//!    plan and run recovery again, then crash unconditionally. Because
//!    recovery's replay is volatile until a post-recovery checkpoint,
//!    this discards all of recovery's work regardless of where the
//!    fault landed; for methods whose recovery does touch stable
//!    storage (evictions under a bounded pool), the armed plan
//!    additionally tears or suppresses that I/O partway.
//! 4. **Recover again** after repairing, and verify the invariant and
//!    final state once more.
//! 5. **Idempotence**: crash and recover a third time; the recovered
//!    state must be unchanged.
//!
//! The invariant is checked after *every completed* recovery (steps 2,
//! 4, and 5) — an interrupted recovery has no realized redo set to
//! check, only the obligation that the next one still succeeds.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redo_methods::harness::HarnessFailure;
use redo_methods::online::GeneralizedOnline;
use redo_methods::oprecord::PageOpPayload;
use redo_methods::{RecoveryMethod, RecoveryStats};
use redo_sim::backend::BackendKind;
use redo_sim::db::{Db, Geometry};
use redo_sim::fault::{FaultKind, FaultPlan, InjectedFault};
use redo_theory::conflict::ConflictGraph;
use redo_theory::graph::NodeSet;
use redo_theory::history::History;
use redo_theory::installation::InstallationGraph;
use redo_theory::invariant::recovery_invariant;
use redo_theory::log::Log;
use redo_theory::log::Lsn;
use redo_theory::state::State;
use redo_theory::state_graph::StateGraph;
use redo_workload::pages::{Cell, PageOp, PageWorkloadSpec};

/// Crash-audit configuration.
#[derive(Clone, Debug)]
pub struct CrashAuditConfig {
    /// Seeded crash schedules per method.
    pub schedules: u64,
    /// Operations per schedule.
    pub n_ops: usize,
    /// Pages in the workload.
    pub n_pages: u32,
    /// Base RNG seed; schedule `s` derives its own stream from it.
    pub seed: u64,
    /// Buffer-pool capacity (`None` = unbounded). Methods that forbid
    /// page chaos (logical) always get an unbounded pool: an eviction
    /// is a page write, and their discipline freezes the disk between
    /// checkpoints.
    pub pool_capacity: Option<usize>,
    /// Checkpoint cadence within a schedule.
    pub checkpoint_every: Option<usize>,
    /// Background `(log, page)` flush probabilities; page chaos is
    /// suppressed for methods that forbid it.
    pub chaos: Option<(f64, f64)>,
    /// Page geometry.
    pub slots_per_page: u16,
    /// Which stable-storage backend each schedule's disk and log live
    /// on: the in-memory simulation, or real files in a fresh tempdir
    /// (every probe clone deep-copies into its own directory, so the
    /// degradation loop exercises real I/O end to end).
    pub backend: BackendKind,
    /// How many per-partition log shards the WAL is split into (a power
    /// of two; `1` is the classic single log). With more than one
    /// shard, multi-page records become cross-shard atomic flush
    /// groups, so the injected faults now land *between* a group's
    /// closure markers too — the audit proves the epoch-closure
    /// analysis makes every group all-or-nothing.
    pub log_shards: usize,
}

impl Default for CrashAuditConfig {
    fn default() -> Self {
        CrashAuditConfig {
            schedules: 100,
            n_ops: 40,
            n_pages: 6,
            seed: 0,
            pool_capacity: Some(4),
            checkpoint_every: Some(7),
            chaos: Some((0.7, 0.4)),
            slots_per_page: 8,
            backend: BackendKind::Mem,
            log_shards: 1,
        }
    }
}

/// What a crash audit observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashAuditReport {
    /// Schedules driven.
    pub schedules: u64,
    /// Total crashes injected (three per schedule).
    pub crashes: u64,
    /// Crashes that discarded an in-flight recovery (one per schedule).
    pub mid_recovery_crashes: u64,
    /// Armed faults that actually fired.
    pub faults_tripped: u64,
    /// Fired faults that tore a page write.
    pub torn_writes: u64,
    /// Fired faults that truncated a log flush.
    pub torn_flushes: u64,
    /// Fired faults that stopped the machine cleanly (planned, or a
    /// torn kind that degraded on the wrong device).
    pub clean_stops: u64,
    /// Torn pages restored from their pre-images.
    pub torn_pages_repaired: usize,
    /// Torn log-tail bytes discarded.
    pub log_bytes_dropped: usize,
    /// Completed recoveries whose invariant and final state were
    /// verified (three per schedule).
    pub recoveries_verified: u64,
    /// Seek-index equivalence probes: recoveries re-run with the seek
    /// index disabled that reached the identical durable state and
    /// semantic redo stats (one per schedule).
    pub seekless_probes: u64,
    /// Parallel-restart equivalence probes: crashed images re-recovered
    /// through the page-partitioned parallel path
    /// ([`RecoveryMethod::parallel_restart`]) that reached the identical
    /// durable state and passed the Recovery Invariant (one per schedule
    /// for methods whose discipline admits a parallel restart; zero for
    /// the rest).
    pub parallel_probes: u64,
    /// On-demand (instant restart) equivalence probes: crashed images
    /// reopened through [`RecoveryMethod::ondemand_restart`], serving
    /// every durable cell mid-recovery, whose served values matched the
    /// final page contents and whose drained state matched the
    /// sequential probe (one per schedule for methods with a lazy
    /// path; zero for the rest).
    pub ondemand_probes: u64,
    /// Operations replayed across all verified recoveries.
    pub replayed: usize,
    /// Operations bypassed as installed across all verified recoveries.
    pub skipped: usize,
}

/// A schedule on which the method failed.
#[derive(Clone, Debug)]
pub struct CrashAuditFailure {
    /// The method under audit.
    pub method: &'static str,
    /// Which schedule (0-based).
    pub schedule: u64,
    /// Which step of the degradation loop.
    pub phase: &'static str,
    /// What went wrong.
    pub failure: HarnessFailure,
}

impl fmt::Display for CrashAuditFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: schedule {} failed during {}: {}",
            self.method, self.schedule, self.phase, self.failure
        )
    }
}

impl std::error::Error for CrashAuditFailure {}

/// The theory-level projection of a durable prefix.
struct View {
    cg: ConflictGraph,
    ig: InstallationGraph,
    sg: StateGraph,
    log: Log,
    n: usize,
    position_of: BTreeMap<u32, usize>,
}

fn view_of(durable: &[PageOp], spp: u16) -> View {
    let history = History::renumbering(durable.iter().map(|op| op.to_operation(spp)).collect());
    let cg = ConflictGraph::generate(&history);
    let ig = InstallationGraph::from_conflict(&cg);
    let sg = StateGraph::from_conflict(&history, &cg, &State::zeroed());
    let log = Log::from_history(&history);
    let n = history.len();
    let position_of = durable
        .iter()
        .enumerate()
        .map(|(i, op)| (op.id, i))
        .collect();
    View {
        cg,
        ig,
        sg,
        log,
        n,
        position_of,
    }
}

/// Checks one *completed* recovery: exact state equality with the
/// durable prefix's final state, and the Recovery Invariant for the
/// realized redo set against the pre-recovery disk state.
fn verify_recovery(
    view: &View,
    stats: &RecoveryStats,
    recovered: &State,
    pre_disk: &State,
    crash: u64,
) -> Result<(), HarnessFailure> {
    if *recovered != view.sg.final_state() {
        return Err(HarnessFailure::StateMismatch { crash: Some(crash) });
    }
    let mut redo_set = NodeSet::new(view.n);
    for id in &stats.replayed {
        match view.position_of.get(id) {
            Some(&pos) => {
                redo_set.insert(pos);
            }
            None => {
                return Err(HarnessFailure::Invariant {
                    crash,
                    detail: format!("recovery replayed non-durable operation {id}"),
                })
            }
        }
    }
    recovery_invariant(&view.cg, &view.ig, &view.sg, &view.log, &redo_set, pre_disk).map_err(|v| {
        HarnessFailure::Invariant {
            crash,
            detail: v.to_string(),
        }
    })
}

/// Samples a fault plan whose crash point lies in `1..=max_at`.
fn sample_plan(rng: &mut StdRng, max_at: u64) -> FaultPlan {
    let at = rng.gen_range(1..=max_at.max(1));
    let kind = match rng.gen_range(0u32..10) {
        0..=3 => FaultKind::TornWrite {
            sectors: rng.gen_range(1..=3),
        },
        4..=7 => FaultKind::TornFlush {
            bytes: rng.gen_range(1..=24),
        },
        _ => FaultKind::Clean,
    };
    FaultPlan { at, kind }
}

/// Generates the operation shapes a method's logging discipline admits
/// (mirrors the harness and the `schedules` explorer).
fn shaped_workload(method_name: &str, cfg: &CrashAuditConfig, seed: u64) -> Vec<PageOp> {
    let (cross, blind, multi) = match method_name {
        "physical" | "physical-parallel" => (0.0, 1.0, 0.0),
        "generalized-lsn" | "generalized-online" | "ondemand" | "media" | "control" => {
            (0.5, 0.1, 0.2)
        }
        "logical" => (0.5, 0.1, 0.0),
        _ => (0.0, 0.2, 0.0),
    };
    PageWorkloadSpec {
        n_ops: cfg.n_ops,
        n_pages: cfg.n_pages,
        slots_per_page: cfg.slots_per_page,
        cross_page_fraction: cross,
        multi_page_fraction: multi,
        blind_fraction: blind,
        ..Default::default()
    }
    .generate(seed)
}

/// Drives `method` through `cfg.schedules` seeded crash schedules (see
/// the module docs for the per-schedule degradation loop).
///
/// # Errors
///
/// The first schedule on which a completed recovery violated the
/// Recovery Invariant, mismatched the durable prefix's state, failed to
/// be idempotent, or the substrate refused an operation with no fault
/// armed as an excuse.
pub fn audit<M: RecoveryMethod>(
    method: &M,
    cfg: &CrashAuditConfig,
) -> Result<CrashAuditReport, CrashAuditFailure> {
    let mut report = CrashAuditReport::default();
    for s in 0..cfg.schedules {
        run_schedule(method, cfg, s, &mut report).map_err(|(phase, failure)| {
            CrashAuditFailure {
                method: method.name(),
                schedule: s,
                phase,
                failure,
            }
        })?;
        report.schedules += 1;
    }
    Ok(report)
}

/// What a delta-checkpoint (control-method) audit observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ControlAuditReport {
    /// Schedules driven.
    pub schedules: u64,
    /// Crashes injected (two per schedule — one per twin).
    pub crashes: u64,
    /// Schedules on which the shared fault plan actually fired.
    pub faults_tripped: u64,
    /// Completed recoveries whose invariant and final state were
    /// verified (two per schedule — one per twin).
    pub recoveries_verified: u64,
    /// Schedules on which both twins survived the same durable prefix
    /// and their recovered states were bit-identical.
    pub identity_checks: u64,
    /// Schedules whose surviving master named a
    /// [`PageOpPayload::DeltaCheckpoint`] — proof the crash landed
    /// while an incremental chain was in force.
    pub delta_masters: u64,
}

/// Drives the incremental-checkpoint method through seeded crash
/// schedules as a *twin run*: two databases with identical geometry,
/// backend, workload, chaos stream, and fault plan — one checkpointing
/// through the [`Control`](redo_methods::control::Control) delta chain,
/// the other through [`GeneralizedOnline`]'s full snapshots. Both twins
/// see the same append/flush/publish event sequence (delta records
/// differ only in payload bytes), so the armed fault trips at the same
/// protocol step in each — including inside delta-chain publication.
/// After the crash each twin's recovery is verified against its own
/// durable prefix (Recovery Invariant + exact state), and whenever the
/// twins kept the same durable prefix their recovered states must be
/// bit-identical: the delta chain is an *encoding* of the full
/// snapshot, never a semantic difference.
///
/// # Errors
///
/// The first schedule on which either twin's recovery failed
/// verification, or the twins diverged on an identical durable prefix.
pub fn audit_control(cfg: &CrashAuditConfig) -> Result<ControlAuditReport, CrashAuditFailure> {
    let mut report = ControlAuditReport::default();
    for s in 0..cfg.schedules {
        run_control_schedule(cfg, s, &mut report).map_err(|(phase, failure)| {
            CrashAuditFailure {
                method: "control",
                schedule: s,
                phase,
                failure,
            }
        })?;
        report.schedules += 1;
    }
    Ok(report)
}

/// Runs one twin through the shared workload: execute each operation,
/// apply background chaos, checkpoint on the configured cadence via
/// `checkpoint`, and stop once the armed fault trips. Returns the
/// committed operations with their LSNs.
fn drive_twin(
    db: &mut Db<PageOpPayload>,
    ops: &[PageOp],
    cfg: &CrashAuditConfig,
    chaos_rng: &mut StdRng,
    checkpoint: &dyn Fn(&mut Db<PageOpPayload>) -> redo_sim::SimResult<()>,
) -> Result<Vec<(PageOp, Lsn)>, HarnessFailure> {
    let mut committed = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match redo_methods::generalized::Generalized.execute(db, op) {
            Ok(lsn) => committed.push((op.clone(), lsn)),
            Err(_) if db.fault_tripped() => {}
            Err(e) => return Err(e.into()),
        }
        if let Some((log_p, page_p)) = cfg.chaos {
            match db.chaos_flush(chaos_rng, log_p, page_p) {
                Ok(()) => {}
                Err(_) if db.fault_tripped() => {}
                Err(e) => return Err(e.into()),
            }
        }
        if cfg.checkpoint_every.is_some_and(|k| (i + 1) % k == 0) {
            match checkpoint(db) {
                Ok(()) => {}
                Err(_) if db.fault_tripped() => {}
                Err(e) => return Err(e.into()),
            }
        }
        if db.fault_tripped() {
            break;
        }
    }
    Ok(committed)
}

fn run_control_schedule(
    cfg: &CrashAuditConfig,
    s: u64,
    report: &mut ControlAuditReport,
) -> PhaseResult {
    use redo_methods::control::Control;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let ops = shaped_workload("control", cfg, cfg.seed.wrapping_add(s));
    let fail = |phase: &'static str, e: HarnessFailure| (phase, e);
    let plan = sample_plan(&mut rng, ops.len() as u64 * 4);
    let geometry = Geometry {
        slots_per_page: cfg.slots_per_page,
    };

    let mut inc: Db<PageOpPayload> =
        Db::on_sharded(cfg.backend, geometry, cfg.pool_capacity, cfg.log_shards);
    let mut full: Db<PageOpPayload> =
        Db::on_sharded(cfg.backend, geometry, cfg.pool_capacity, cfg.log_shards);
    inc.arm_faults(plan);
    full.arm_faults(plan);
    // Cloned chaos streams: both twins draw the same flush decisions.
    let mut chaos_inc = StdRng::seed_from_u64(cfg.seed ^ s.wrapping_mul(0xD1B5_4A32_D192_ED03));
    let mut chaos_full = chaos_inc.clone();

    let committed_inc = drive_twin(&mut inc, &ops, cfg, &mut chaos_inc, &|db| {
        Control.checkpoint(db)
    })
    .map_err(|e| fail("workload", e))?;
    let committed_full = drive_twin(&mut full, &ops, cfg, &mut chaos_full, &|db| {
        GeneralizedOnline.checkpoint(db)
    })
    .map_err(|e| fail("workload", e))?;
    if inc.fault_tripped() || full.fault_tripped() {
        report.faults_tripped += 1;
    }

    inc.crash();
    full.crash();
    report.crashes += 2;
    inc.repair_after_crash();
    full.repair_after_crash();
    if matches!(
        inc.log.record_at_lsn(inc.disk.master()),
        Ok(Some(rec)) if matches!(rec.payload, PageOpPayload::DeltaCheckpoint { .. })
    ) {
        report.delta_masters += 1;
    }

    // Each twin verifies against its own durable prefix.
    let durable_inc: Vec<(u32, Lsn)> = committed_inc
        .iter()
        .filter(|(_, lsn)| *lsn <= inc.log.stable_lsn())
        .map(|(op, lsn)| (op.id, *lsn))
        .collect();
    let durable_full: Vec<(u32, Lsn)> = committed_full
        .iter()
        .filter(|(_, lsn)| *lsn <= full.log.stable_lsn())
        .map(|(op, lsn)| (op.id, *lsn))
        .collect();
    for (db, committed, method_name) in [
        (&mut inc, &committed_inc, "control recovery"),
        (&mut full, &committed_full, "full-snapshot recovery"),
    ] {
        let stable = db.log.stable_lsn();
        let durable: Vec<PageOp> = committed
            .iter()
            .filter(|(_, lsn)| *lsn <= stable)
            .map(|(op, _)| op.clone())
            .collect();
        let view = view_of(&durable, cfg.slots_per_page);
        let pre = db.stable_theory_state();
        let stats = Control
            .recover(db)
            .map_err(|e| fail(method_name, e.into()))?;
        verify_recovery(&view, &stats, &db.volatile_theory_state(), &pre, 1)
            .map_err(|e| fail(method_name, e))?;
        report.recoveries_verified += 1;
    }

    // Cross-twin identity: same durable operations at the same LSNs
    // means the recovered states must agree exactly — the delta chain
    // may change what analysis *reads*, never what recovery *rebuilds*.
    if durable_inc == durable_full {
        if inc.volatile_theory_state() != full.volatile_theory_state() {
            return Err(fail(
                "delta/full identity",
                HarnessFailure::StateMismatch { crash: Some(1) },
            ));
        }
        report.identity_checks += 1;
    }
    Ok(())
}

/// What a point-in-time (archive-tier) audit observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PitAuditReport {
    /// Schedules driven.
    pub schedules: u64,
    /// Crashes injected (one per schedule).
    pub crashes: u64,
    /// Armed faults that actually fired.
    pub faults_tripped: u64,
    /// Schedules on which `archive ∥ live` reproduced the *entire*
    /// durable operation history, record for record (one per schedule).
    pub full_replays_verified: u64,
    /// Schedules on which replaying the point-in-time record sequence
    /// at the truncation boundary reproduced the pre-truncation state —
    /// the prefix the live log no longer holds (zero only if no
    /// checkpoint ever archived anything).
    pub truncation_replays_verified: u64,
    /// Bytes resident in the archive tiers across all schedules.
    pub archived_bytes: u64,
}

/// Drives the archive tier through seeded crash schedules and verifies
/// point-in-time recovery: the workload runs under
/// [`GeneralizedOnline`], whose published checkpoints move the
/// drained log prefix into the archive
/// ([`redo_sim::wal::ShardedLog::archive_prefix`]); after the crash,
/// [`redo_sim::wal::ShardedLog::pit_records`] must reproduce (a) the
/// entire durable operation history from `archive ∥ live`, and (b) at
/// the truncation boundary, exactly the state the system had before
/// the prefix left the live log.
///
/// # Errors
///
/// The first schedule on which an archived record went missing, a
/// phantom record appeared, or the truncation-point replay reached a
/// different state than the durable prefix it claims to reproduce.
pub fn audit_pit(cfg: &CrashAuditConfig) -> Result<PitAuditReport, CrashAuditFailure> {
    let mut report = PitAuditReport::default();
    for s in 0..cfg.schedules {
        run_pit_schedule(cfg, s, &mut report).map_err(|(phase, failure)| CrashAuditFailure {
            method: "pit",
            schedule: s,
            phase,
            failure,
        })?;
        report.schedules += 1;
    }
    Ok(report)
}

fn run_pit_schedule(cfg: &CrashAuditConfig, s: u64, report: &mut PitAuditReport) -> PhaseResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let method = GeneralizedOnline;
    let ops = shaped_workload(method.name(), cfg, cfg.seed.wrapping_add(s));
    let mut db: Db<PageOpPayload> = Db::on_sharded(
        cfg.backend,
        Geometry {
            slots_per_page: cfg.slots_per_page,
        },
        cfg.pool_capacity,
        cfg.log_shards,
    );
    let fail = |phase: &'static str, e: HarnessFailure| (phase, e);

    db.arm_faults(sample_plan(&mut rng, ops.len() as u64 * 4));
    let mut committed: Vec<(PageOp, Lsn)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match method.execute(&mut db, op) {
            Ok(lsn) => committed.push((op.clone(), lsn)),
            Err(_) if db.fault_tripped() => {}
            Err(e) => return Err(fail("workload", e.into())),
        }
        if let Some((log_p, page_p)) = cfg.chaos {
            match db.chaos_flush(&mut rng, log_p, page_p) {
                Ok(()) => {}
                Err(_) if db.fault_tripped() => {}
                Err(e) => return Err(fail("workload", e.into())),
            }
        }
        if cfg.checkpoint_every.is_some_and(|k| (i + 1) % k == 0) {
            match method.checkpoint(&mut db) {
                Ok(()) => {}
                Err(_) if db.fault_tripped() => {}
                Err(e) => return Err(fail("checkpoint", e.into())),
            }
        }
        if db.fault_tripped() {
            break;
        }
    }
    if db.fault_tripped() {
        report.faults_tripped += 1;
    }
    db.crash();
    report.crashes += 1;
    db.repair_after_crash();

    let stable = db.log.stable_lsn();
    committed.retain(|(_, lsn)| *lsn <= stable);
    let pit_ops = |upto: Lsn| -> Result<Vec<PageOp>, (&'static str, HarnessFailure)> {
        let records = db
            .log
            .pit_records(upto)
            .map_err(|e| fail("pit decode", e.into()))?;
        Ok(records
            .into_iter()
            .filter_map(|rec| match rec.payload {
                PageOpPayload::Op(op) => Some(op),
                PageOpPayload::Checkpoint
                | PageOpPayload::FuzzyCheckpoint { .. }
                | PageOpPayload::DeltaCheckpoint { .. } => None,
            })
            .collect())
    };

    // (a) Full history: `archive ∥ live` up to the stable LSN is the
    // durable operation sequence, record for record — archiving moved
    // the prefix, it did not lose, duplicate, or reorder anything.
    let durable: Vec<PageOp> = committed.iter().map(|(op, _)| op.clone()).collect();
    let replayable = pit_ops(stable)?;
    if replayable != durable {
        return Err(fail(
            "pit full replay",
            HarnessFailure::Invariant {
                crash: 1,
                detail: format!(
                    "archive ∥ live holds {} replayable operations, durable history has {}",
                    replayable.len(),
                    durable.len()
                ),
            },
        ));
    }
    report.full_replays_verified += 1;

    // (b) Truncation point: replaying the point-in-time sequence at the
    // archive/live boundary must reproduce the state the system had
    // when that prefix was truncated — records the live log no longer
    // holds at all.
    let boundary = db.log.first_stable();
    if boundary > Lsn(1) && stable >= boundary {
        let upto = Lsn(boundary.0 - 1);
        let replayed = view_of(&pit_ops(upto)?, cfg.slots_per_page)
            .sg
            .final_state();
        let prefix: Vec<PageOp> = committed
            .iter()
            .filter(|(_, lsn)| *lsn <= upto)
            .map(|(op, _)| op.clone())
            .collect();
        if replayed != view_of(&prefix, cfg.slots_per_page).sg.final_state() {
            return Err(fail(
                "pit truncation replay",
                HarnessFailure::StateMismatch { crash: Some(1) },
            ));
        }
        report.truncation_replays_verified += 1;
    }
    report.archived_bytes += db.log.archived_bytes();
    Ok(())
}

/// What a media-recovery audit observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MediaAuditReport {
    /// Schedules driven.
    pub schedules: u64,
    /// Crashes injected across all schedules.
    pub crashes: u64,
    /// Armed faults that actually fired (workload or interrupted leg).
    pub faults_tripped: u64,
    /// Pages destroyed by the media-failure adversary (one per schedule
    /// whose crashed image had any durable page; zero-page images skip
    /// the damage legs).
    pub pages_destroyed: u64,
    /// Damaged images whose sequential media recovery reached state
    /// identity with the undamaged probe.
    pub rebuilds_verified: u64,
    /// Damaged images whose on-demand restart (lost page gated, image
    /// installed lazily) reached the same identity, serving every
    /// durable cell mid-recovery.
    pub ondemand_rebuilds_verified: u64,
    /// Damaged images whose rebuild was interrupted by a second armed
    /// fault, re-crashed, and still converged to the undamaged state —
    /// the idempotence leg.
    pub interrupted_rebuilds_verified: u64,
    /// File-backend schedules that deleted the shard page file outright.
    pub file_deletions: u64,
    /// File-backend schedules that truncated the page file out-of-band
    /// (`truncate(2)` to zero length).
    pub file_truncations: u64,
}

/// Drives media recovery through seeded crash schedules: run a
/// [`Media`](redo_methods::media::Media) workload with chaos,
/// checkpoints, and an armed fault; crash; then destroy one durable
/// page **out-of-band** — [`Db::destroy_page`](redo_sim::disk::Disk::destroy_page)
/// on the memory backend, a deleted or `truncate(2)`-zeroed page file
/// on the file backend — and demand that media recovery rebuilds the
/// damaged image to *state identity* with an undamaged probe of the
/// same crash, through the sequential path, the on-demand path, and
/// across a second fault injected mid-rebuild.
///
/// The Recovery Invariant is checked on the undamaged probe only: a
/// destroyed page is outside the crash model the invariant assumes
/// (stable storage is no longer explainable by any installation-graph
/// prefix); identity with the undamaged recovery is exactly the
/// obligation that remains.
///
/// # Errors
///
/// The first schedule on which a rebuild diverged from the undamaged
/// probe, failed to converge after an interrupted rebuild, or the
/// substrate refused an operation with no fault armed as an excuse.
pub fn audit_media(cfg: &CrashAuditConfig) -> Result<MediaAuditReport, CrashAuditFailure> {
    let mut report = MediaAuditReport::default();
    for s in 0..cfg.schedules {
        run_media_schedule(cfg, s, &mut report).map_err(|(phase, failure)| CrashAuditFailure {
            method: "media",
            schedule: s,
            phase,
            failure,
        })?;
        report.schedules += 1;
    }
    Ok(report)
}

fn run_media_schedule(
    cfg: &CrashAuditConfig,
    s: u64,
    report: &mut MediaAuditReport,
) -> PhaseResult {
    use redo_methods::media::Media;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let method = Media;
    let ops = shaped_workload(method.name(), cfg, cfg.seed.wrapping_add(s));
    let mut db: Db<PageOpPayload> = Db::on_sharded(
        cfg.backend,
        Geometry {
            slots_per_page: cfg.slots_per_page,
        },
        cfg.pool_capacity,
        cfg.log_shards,
    );
    let fail = |phase: &'static str, e: HarnessFailure| (phase, e);

    // Run the workload until the armed fault trips (or it ends).
    db.arm_faults(sample_plan(&mut rng, ops.len() as u64 * 4));
    let mut committed: Vec<(PageOp, Lsn)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match method.execute(&mut db, op) {
            Ok(lsn) => committed.push((op.clone(), lsn)),
            Err(_) if db.fault_tripped() => {}
            Err(e) => return Err(fail("workload", e.into())),
        }
        if let Some((log_p, page_p)) = cfg.chaos {
            match db.chaos_flush(&mut rng, log_p, page_p) {
                Ok(()) => {}
                Err(_) if db.fault_tripped() => {}
                Err(e) => return Err(fail("workload", e.into())),
            }
        }
        if cfg.checkpoint_every.is_some_and(|k| (i + 1) % k == 0) {
            match method.checkpoint(&mut db) {
                Ok(()) => {}
                Err(_) if db.fault_tripped() => {}
                Err(e) => return Err(fail("checkpoint", e.into())),
            }
        }
        if db.fault_tripped() {
            break;
        }
    }
    if db.fault_tripped() {
        report.faults_tripped += 1;
    }
    db.crash();
    report.crashes += 1;
    db.repair_after_crash();

    let stable = db.log.stable_lsn();
    committed.retain(|(_, lsn)| *lsn <= stable);
    let durable: Vec<PageOp> = committed.iter().map(|(op, _)| op.clone()).collect();
    let view = view_of(&durable, cfg.slots_per_page);
    let pre1 = db.stable_theory_state();

    // Undamaged probe: the reference every damaged leg must match. The
    // invariant and durable-prefix identity are checked here, once.
    let mut undamaged = db.clone();
    let stats = method
        .recover(&mut undamaged)
        .map_err(|e| fail("undamaged probe", e.into()))?;
    verify_recovery(&view, &stats, &undamaged.volatile_theory_state(), &pre1, 1)
        .map_err(|e| fail("undamaged probe", e))?;
    let reference = undamaged.volatile_theory_state();
    drop(undamaged);

    // The media-failure adversary destroys one durable page. A crashed
    // image with no durable pages at all has nothing to destroy — the
    // undamaged probe above already covered it.
    let pages = db.disk.pages();
    if pages.is_empty() {
        return Ok(());
    }
    let victim = pages[rng.gen_range(0..pages.len())].0;
    let mut damaged = db.clone();
    drop(db);
    match cfg.backend {
        BackendKind::Mem => damaged.disk.destroy_page(victim),
        BackendKind::File => {
            // Out-of-band damage on the real files, as a failing medium
            // would inflict it; the doublewrite journal copy goes too
            // (a torn-repair path must not mask the loss).
            let dir = damaged
                .disk
                .dir()
                .expect("file backend has a directory")
                .to_path_buf();
            let page_file = dir.join("pages").join(format!("p{}.pg", victim.0));
            if s.is_multiple_of(2) {
                std::fs::remove_file(&page_file)
                    .map_err(|e| fail("damage", HarnessFailure::Io(e.to_string())))?;
                report.file_deletions += 1;
            } else {
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&page_file)
                    .and_then(|f| f.set_len(0))
                    .map_err(|e| fail("damage", HarnessFailure::Io(e.to_string())))?;
                report.file_truncations += 1;
            }
            let _ = std::fs::remove_file(dir.join("journal").join(format!("p{}.pg", victim.0)));
        }
    }
    // Re-crash so the damage sits in a cold image — on the file backend
    // this is the rescan that diffs the manifest and marks the loss.
    damaged.crash();
    report.crashes += 1;
    if !damaged.disk.is_lost(victim) {
        return Err(fail(
            "damage",
            HarnessFailure::Invariant {
                crash: 1,
                detail: format!("destroyed page {victim:?} was not detected as media loss"),
            },
        ));
    }
    report.pages_destroyed += 1;

    // Sequential rebuild: state identity with the undamaged probe.
    let mut probe = damaged.clone();
    method
        .recover(&mut probe)
        .map_err(|e| fail("media rebuild", e.into()))?;
    if !probe.disk.lost_pages().is_empty() {
        return Err(fail(
            "media rebuild",
            HarnessFailure::Invariant {
                crash: 1,
                detail: "recovery completed with pages still lost".into(),
            },
        ));
    }
    if probe.volatile_theory_state() != reference {
        return Err(fail(
            "media rebuild",
            HarnessFailure::StateMismatch { crash: Some(1) },
        ));
    }
    report.rebuilds_verified += 1;
    drop(probe);

    // On-demand rebuild: the lost page is a gated page whose residual
    // chain is its whole archived history; serve every durable cell
    // mid-recovery and demand the same identity.
    let probes: Vec<Cell> = durable
        .iter()
        .flat_map(|op| op.writes.iter().copied())
        .collect::<BTreeSet<Cell>>()
        .into_iter()
        .collect();
    let mut od_probe = damaged.clone();
    if let Some(res) = method.ondemand_restart(&mut od_probe, &probes) {
        let (_, served) = res.map_err(|e| fail("ondemand rebuild", e.into()))?;
        if od_probe.volatile_theory_state() != reference {
            return Err(fail(
                "ondemand rebuild",
                HarnessFailure::StateMismatch { crash: Some(1) },
            ));
        }
        for (&cell, &mid) in probes.iter().zip(&served) {
            let fin = od_probe
                .read_cell(cell)
                .map_err(|e| fail("ondemand rebuild", e.into()))?;
            if mid != fin {
                return Err(fail(
                    "ondemand rebuild",
                    HarnessFailure::Invariant {
                        crash: 1,
                        detail: format!(
                            "cell {cell:?} served {mid} mid-rebuild but holds {fin} after the drain"
                        ),
                    },
                ));
            }
        }
        report.ondemand_rebuilds_verified += 1;
    }
    drop(od_probe);

    // Interrupted rebuild: arm a second fault, let recovery die partway
    // through the install pass (or anywhere else), crash, and demand
    // the re-run still converges — the rebuild must be idempotent.
    damaged.arm_faults(sample_plan(&mut rng, 4));
    match method.recover(&mut damaged) {
        Ok(_) => {}
        Err(_) if damaged.fault_tripped() => {}
        Err(e) => return Err(fail("interrupted rebuild", e.into())),
    }
    if damaged.fault_tripped() {
        report.faults_tripped += 1;
    }
    damaged.crash();
    report.crashes += 1;
    method
        .recover(&mut damaged)
        .map_err(|e| fail("interrupted rebuild", e.into()))?;
    if damaged.volatile_theory_state() != reference {
        return Err(fail(
            "interrupted rebuild",
            HarnessFailure::StateMismatch { crash: Some(2) },
        ));
    }
    // Idempotence: once more around, nothing may move.
    damaged.crash();
    report.crashes += 1;
    method
        .recover(&mut damaged)
        .map_err(|e| fail("interrupted rebuild idempotence", e.into()))?;
    if damaged.volatile_theory_state() != reference {
        return Err(fail(
            "interrupted rebuild idempotence",
            HarnessFailure::StateMismatch { crash: Some(3) },
        ));
    }
    report.interrupted_rebuilds_verified += 1;
    Ok(())
}

type PhaseResult = Result<(), (&'static str, HarnessFailure)>;

fn run_schedule<M: RecoveryMethod>(
    method: &M,
    cfg: &CrashAuditConfig,
    s: u64,
    report: &mut CrashAuditReport,
) -> PhaseResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let ops = shaped_workload(method.name(), cfg, cfg.seed.wrapping_add(s));
    let capacity = if method.allows_page_chaos() {
        cfg.pool_capacity
    } else {
        None
    };
    let mut db: Db<M::Payload> = Db::on_sharded(
        cfg.backend,
        Geometry {
            slots_per_page: cfg.slots_per_page,
        },
        capacity,
        cfg.log_shards,
    );
    let fail = |phase: &'static str, e: HarnessFailure| (phase, e);

    // Step 1: run until the armed fault trips (or the workload ends).
    db.arm_faults(sample_plan(&mut rng, ops.len() as u64 * 4));
    let mut committed: Vec<(PageOp, redo_theory::log::Lsn)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match method.execute(&mut db, op) {
            Ok(lsn) => committed.push((op.clone(), lsn)),
            Err(_) if db.fault_tripped() => {}
            Err(e) => return Err(fail("workload", e.into())),
        }
        if let Some((log_p, page_p)) = cfg.chaos {
            let page_p = if method.allows_page_chaos() {
                page_p
            } else {
                0.0
            };
            match db.chaos_flush(&mut rng, log_p, page_p) {
                Ok(()) => {}
                Err(_) if db.fault_tripped() => {}
                Err(e) => return Err(fail("workload", e.into())),
            }
        }
        if cfg.checkpoint_every.is_some_and(|k| (i + 1) % k == 0) {
            match method.checkpoint(&mut db) {
                Ok(()) => {}
                Err(_) if db.fault_tripped() => {}
                Err(e) => return Err(fail("checkpoint", e.into())),
            }
        }
        if db.fault_tripped() {
            break;
        }
    }
    tally_fault(&db, report);
    db.crash();
    report.crashes += 1;
    let repair = db.repair_after_crash();
    report.torn_pages_repaired += repair.torn_pages.len();
    report.log_bytes_dropped += repair.log_bytes_dropped;

    let stable = db.log.stable_lsn();
    committed.retain(|(_, lsn)| *lsn <= stable);
    let durable: Vec<PageOp> = committed.iter().map(|(op, _)| op.clone()).collect();
    let view = view_of(&durable, cfg.slots_per_page);
    let pre1 = db.stable_theory_state();

    // Step 2: probe recovery on a clone of the crashed image. The clone
    // shares the (now disarmed) injector; it is discarded before the
    // second plan is armed.
    let mut probe = db.clone();
    let stats = method
        .recover(&mut probe)
        .map_err(|e| fail("probe recovery", e.into()))?;
    verify_recovery(&view, &stats, &probe.volatile_theory_state(), &pre1, 1)
        .map_err(|e| fail("probe recovery", e))?;
    report.recoveries_verified += 1;
    report.replayed += stats.replay_count();
    report.skipped += stats.skipped.len();

    // Seek-index equivalence: recover the same crashed image with the
    // seek index disabled. The index only changes where the scan enters
    // the stable log, so the recovered state and the semantic redo
    // stats (scanned / replayed / skipped) must be identical.
    let mut unseeked = db.clone();
    unseeked.log.disable_seek_index();
    let unseeked_stats = method
        .recover(&mut unseeked)
        .map_err(|e| fail("seekless probe", e.into()))?;
    if unseeked_stats != stats {
        return Err(fail(
            "seekless probe",
            HarnessFailure::Invariant {
                crash: 1,
                detail: format!(
                    "seeked and unseeked recovery disagree: {stats:?} vs {unseeked_stats:?}"
                ),
            },
        ));
    }
    if unseeked.volatile_theory_state() != probe.volatile_theory_state() {
        return Err(fail(
            "seekless probe",
            HarnessFailure::StateMismatch { crash: Some(1) },
        ));
    }
    report.seekless_probes += 1;
    drop(unseeked);

    // Parallel-restart equivalence: if the method's discipline admits a
    // page-partitioned restart, re-recover the same crashed image
    // through it with a fixed worker count and demand the identical
    // durable state plus the Recovery Invariant for its own realized
    // redo set. Theorem 3 says per-page replay order is all that
    // matters, so the partitioned path must land exactly where the
    // serial probe did — including from a fuzzy checkpoint's
    // dirty-page-table seek.
    let mut par_probe = db.clone();
    if let Some(res) = method.parallel_restart(&mut par_probe, 4) {
        let par_stats = res.map_err(|e| fail("parallel probe", e.into()))?;
        verify_recovery(
            &view,
            &par_stats,
            &par_probe.volatile_theory_state(),
            &pre1,
            1,
        )
        .map_err(|e| fail("parallel probe", e))?;
        if par_probe.volatile_theory_state() != probe.volatile_theory_state() {
            return Err(fail(
                "parallel probe",
                HarnessFailure::StateMismatch { crash: Some(1) },
            ));
        }
        report.parallel_probes += 1;
    }
    drop(par_probe);

    // On-demand (instant restart) equivalence: if the method has a lazy
    // per-page path, reopen the same crashed image through it and serve
    // a read on every durable cell mid-recovery. Three obligations:
    // each served value is *final* (re-reading after the drain returns
    // the same value — a served page's content never changes), the
    // realized redo set passes the Recovery Invariant, and the drained
    // state equals the sequential probe's.
    let probes: Vec<Cell> = durable
        .iter()
        .flat_map(|op| op.writes.iter().copied())
        .collect::<BTreeSet<Cell>>()
        .into_iter()
        .collect();
    let mut od_probe = db.clone();
    if let Some(res) = method.ondemand_restart(&mut od_probe, &probes) {
        let (od_stats, served) = res.map_err(|e| fail("ondemand probe", e.into()))?;
        verify_recovery(
            &view,
            &od_stats,
            &od_probe.volatile_theory_state(),
            &pre1,
            1,
        )
        .map_err(|e| fail("ondemand probe", e))?;
        if od_probe.volatile_theory_state() != probe.volatile_theory_state() {
            return Err(fail(
                "ondemand probe",
                HarnessFailure::StateMismatch { crash: Some(1) },
            ));
        }
        for (&cell, &mid) in probes.iter().zip(&served) {
            let fin = od_probe
                .read_cell(cell)
                .map_err(|e| fail("ondemand probe", e.into()))?;
            if mid != fin {
                return Err(fail(
                    "ondemand probe",
                    HarnessFailure::Invariant {
                        crash: 1,
                        detail: format!(
                            "cell {cell:?} served {mid} mid-recovery but holds {fin} after the drain"
                        ),
                    },
                ));
            }
        }
        report.ondemand_probes += 1;
    }
    drop(od_probe);
    drop(probe);

    // Step 3: crash the real image mid-recovery.
    db.arm_faults(sample_plan(&mut rng, 6));
    match method.recover(&mut db) {
        Ok(_) => {}
        Err(_) if db.fault_tripped() => {}
        Err(e) => return Err(fail("interrupted recovery", e.into())),
    }
    tally_fault(&db, report);
    db.crash();
    report.crashes += 1;
    report.mid_recovery_crashes += 1;
    let repair = db.repair_after_crash();
    report.torn_pages_repaired += repair.torn_pages.len();
    report.log_bytes_dropped += repair.log_bytes_dropped;

    // Step 4: recovery after the mid-recovery crash. The durable prefix
    // is unchanged (recovery appends nothing to the log), but the disk
    // may hold more installed work than at crash 1 — legal flushes the
    // interrupted recovery performed before its fault tripped.
    let pre2 = db.stable_theory_state();
    let stats = method
        .recover(&mut db)
        .map_err(|e| fail("re-recovery", e.into()))?;
    verify_recovery(&view, &stats, &db.volatile_theory_state(), &pre2, 2)
        .map_err(|e| fail("re-recovery", e))?;
    report.recoveries_verified += 1;
    report.replayed += stats.replay_count();
    report.skipped += stats.skipped.len();
    let recovered = db.volatile_theory_state();

    // Step 5: idempotence — crash the recovered-but-unchekpointed
    // system and recover once more; the state must not move.
    db.crash();
    report.crashes += 1;
    let repair = db.repair_after_crash();
    report.torn_pages_repaired += repair.torn_pages.len();
    report.log_bytes_dropped += repair.log_bytes_dropped;
    let pre3 = db.stable_theory_state();
    let stats = method
        .recover(&mut db)
        .map_err(|e| fail("idempotence", e.into()))?;
    verify_recovery(&view, &stats, &db.volatile_theory_state(), &pre3, 3)
        .map_err(|e| fail("idempotence", e))?;
    report.recoveries_verified += 1;
    report.replayed += stats.replay_count();
    report.skipped += stats.skipped.len();
    if db.volatile_theory_state() != recovered {
        return Err(fail(
            "idempotence",
            HarnessFailure::StateMismatch { crash: None },
        ));
    }
    Ok(())
}

fn tally_fault<P: redo_sim::wal::LogPayload>(db: &Db<P>, report: &mut CrashAuditReport) {
    if !db.fault_tripped() {
        return;
    }
    report.faults_tripped += 1;
    match db.fault_injector().injected() {
        Some(InjectedFault::TornWrite(_)) => report.torn_writes += 1,
        Some(InjectedFault::TornFlush) => report.torn_flushes += 1,
        Some(InjectedFault::Clean) | None => report.clean_stops += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redo_methods::fuzzy::FuzzyPhysiological;
    use redo_methods::generalized::Generalized;
    use redo_methods::logical::Logical;
    use redo_methods::ondemand::OnDemand;
    use redo_methods::online::GeneralizedOnline;
    use redo_methods::parallel::{ParallelOnline, ParallelPhysical, ParallelPhysiological};
    use redo_methods::physical::Physical;
    use redo_methods::physiological::Physiological;

    fn small() -> CrashAuditConfig {
        CrashAuditConfig {
            schedules: 12,
            n_ops: 24,
            ..Default::default()
        }
    }

    fn assert_clean(report: &CrashAuditReport, cfg: &CrashAuditConfig) {
        assert_eq!(report.schedules, cfg.schedules);
        assert_eq!(report.mid_recovery_crashes, cfg.schedules);
        assert_eq!(report.crashes, cfg.schedules * 3);
        assert_eq!(report.recoveries_verified, cfg.schedules * 3);
        assert_eq!(report.seekless_probes, cfg.schedules);
        assert!(report.faults_tripped > 0, "no fault ever fired: {report:?}");
    }

    #[test]
    fn physical_survives_crash_audit() {
        let cfg = small();
        let report = audit(&Physical, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(report.parallel_probes, cfg.schedules);
    }

    #[test]
    fn physiological_survives_crash_audit() {
        let cfg = small();
        let report = audit(&Physiological, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(report.parallel_probes, cfg.schedules);
    }

    #[test]
    fn generalized_survives_crash_audit() {
        let cfg = small();
        let report = audit(&Generalized, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(
            report.parallel_probes, 0,
            "generalized reads cross pages: no parallel path"
        );
    }

    #[test]
    fn generalized_online_survives_crash_audit() {
        // The online method's checkpoint is a multi-step publication
        // (force, swing, truncate) and every step is a faultable crash
        // point: this audit drives crashes *into* checkpoint writes and
        // demands fallback to the previous published checkpoint.
        let cfg = small();
        let report = audit(&GeneralizedOnline, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(report.parallel_probes, 0);
    }

    #[test]
    fn control_survives_crash_audit() {
        // The control method's delta-checkpoint publication adds chained
        // incremental records to the fault surface: crashes land inside
        // delta appends and master swings, and recovery must fold the
        // surviving chain (or fall back to its base snapshot).
        let cfg = small();
        let report = audit(&redo_methods::control::Control, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(report.parallel_probes, 0, "generalized discipline");
    }

    #[test]
    fn control_dual_run_matches_full_snapshots() {
        let cfg = small();
        let report = audit_control(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.schedules, cfg.schedules);
        assert_eq!(report.crashes, cfg.schedules * 2);
        assert_eq!(report.recoveries_verified, cfg.schedules * 2);
        assert!(report.faults_tripped > 0, "no fault ever fired: {report:?}");
        assert!(
            report.identity_checks > 0,
            "twins never shared a durable prefix: {report:?}"
        );
        assert!(
            report.delta_masters > 0,
            "no crash ever landed on a delta master: {report:?}"
        );
    }

    #[test]
    fn ondemand_survives_crash_audit() {
        // The instant-restart method end to end: every probe recovery
        // additionally reopens the crashed image lazily and serves all
        // durable cells mid-recovery; mid-recovery crashes interrupt
        // lazy replay itself (gates must close back up).
        let cfg = small();
        let report = audit(&OnDemand, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(report.ondemand_probes, cfg.schedules);
        assert_eq!(report.parallel_probes, 0, "lazy path, not partitioned");
    }

    #[test]
    fn ondemand_survives_crash_audit_on_files() {
        let cfg = CrashAuditConfig {
            schedules: 6,
            n_ops: 24,
            backend: BackendKind::File,
            ..Default::default()
        };
        let report = audit(&OnDemand, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(report.ondemand_probes, cfg.schedules);
    }

    #[test]
    fn logical_survives_crash_audit() {
        let cfg = small();
        let report = audit(&Logical, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
    }

    #[test]
    fn fuzzy_survives_crash_audit() {
        let cfg = small();
        let report = audit(&FuzzyPhysiological, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(report.parallel_probes, 0, "fuzzy logs its own payload");
    }

    #[test]
    fn parallel_methods_survive_crash_audit() {
        let cfg = CrashAuditConfig {
            schedules: 6,
            n_ops: 24,
            ..Default::default()
        };
        let report =
            audit(&ParallelPhysiological { threads: 3 }, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(report.parallel_probes, cfg.schedules);
        let report =
            audit(&ParallelPhysical { threads: 3 }, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(report.parallel_probes, cfg.schedules);
    }

    #[test]
    fn online_parallel_survives_crash_audit() {
        // The checkpoint-aware path end to end under hostile crashes:
        // fuzzy checkpoints (any publication step may be the fault
        // site), then every probe recovery re-run through the
        // DPT-seeded partitioned scheduler.
        let cfg = CrashAuditConfig {
            schedules: 8,
            n_ops: 24,
            ..Default::default()
        };
        let report = audit(&ParallelOnline { threads: 3 }, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(report.parallel_probes, cfg.schedules);
    }

    #[test]
    fn physiological_survives_crash_audit_on_files() {
        // The same degradation loop against real files: CRC-framed WAL,
        // checksummed page files, doublewrite journal, rename-published
        // checkpoint pointer. Fewer schedules — every clone copies a
        // directory tree — but the loop itself is unchanged.
        let cfg = CrashAuditConfig {
            schedules: 6,
            n_ops: 24,
            backend: BackendKind::File,
            ..Default::default()
        };
        let report = audit(&Physiological, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
    }

    #[test]
    fn methods_survive_crash_audit_with_sharded_logs() {
        // Four log shards: multi-page records become cross-shard atomic
        // flush groups, page-less checkpoints broadcast to every shard,
        // and the sampled faults land between a group's closure markers
        // too. The same degradation loop must stay clean — sharding is
        // an access-path change, not a semantic one.
        let cfg = CrashAuditConfig {
            schedules: 8,
            n_ops: 24,
            log_shards: 4,
            ..Default::default()
        };
        let report = audit(&Generalized, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        let report = audit(&GeneralizedOnline, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        let report = audit(&OnDemand, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(report.ondemand_probes, cfg.schedules);
        let report =
            audit(&ParallelPhysiological { threads: 3 }, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(report.parallel_probes, cfg.schedules);
    }

    #[test]
    fn sharded_log_crash_audit_on_files() {
        // The cross-shard degradation loop against real files: one
        // fsynced WAL file per shard, plus the archive files the online
        // checkpoints fill.
        let cfg = CrashAuditConfig {
            schedules: 4,
            n_ops: 24,
            backend: BackendKind::File,
            log_shards: 4,
            ..Default::default()
        };
        let report = audit(&GeneralizedOnline, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
    }

    #[test]
    fn pit_audit_replays_archive_plus_live() {
        let cfg = CrashAuditConfig {
            schedules: 20,
            log_shards: 4,
            ..Default::default()
        };
        let r = audit_pit(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r.schedules, 20);
        assert_eq!(r.full_replays_verified, 20);
        assert!(
            r.truncation_replays_verified > 0,
            "no schedule ever archived a prefix: {r:?}"
        );
        assert!(r.archived_bytes > 0, "{r:?}");
        assert!(r.faults_tripped > 0, "no fault ever fired: {r:?}");
    }

    #[test]
    fn pit_audit_on_files() {
        let cfg = CrashAuditConfig {
            schedules: 4,
            n_ops: 24,
            backend: BackendKind::File,
            log_shards: 2,
            ..Default::default()
        };
        let r = audit_pit(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r.full_replays_verified, 4);
    }

    #[test]
    fn media_method_survives_vanilla_crash_audit() {
        // The media method must first be an ordinary recovery method:
        // with no destroyed pages its rebuild pass is a no-op and the
        // standard degradation loop (including the on-demand probe)
        // must stay clean.
        let cfg = small();
        let report = audit(&redo_methods::media::Media, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_clean(&report, &cfg);
        assert_eq!(report.ondemand_probes, cfg.schedules);
    }

    #[test]
    fn media_audit_rebuilds_destroyed_pages() {
        let cfg = CrashAuditConfig {
            schedules: 12,
            n_ops: 24,
            log_shards: 4,
            ..Default::default()
        };
        let r = audit_media(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r.schedules, 12);
        assert!(r.pages_destroyed > 0, "no schedule ever lost a page: {r:?}");
        assert_eq!(r.rebuilds_verified, r.pages_destroyed);
        assert_eq!(r.ondemand_rebuilds_verified, r.pages_destroyed);
        assert_eq!(r.interrupted_rebuilds_verified, r.pages_destroyed);
        assert!(r.faults_tripped > 0, "no fault ever fired: {r:?}");
    }

    #[test]
    fn media_audit_on_files_deletes_and_truncates() {
        // Real files, damaged out-of-band: even schedules unlink the
        // page file, odd schedules truncate(2) it to zero length.
        let cfg = CrashAuditConfig {
            schedules: 8,
            n_ops: 24,
            backend: BackendKind::File,
            log_shards: 2,
            ..Default::default()
        };
        let r = audit_media(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert!(r.file_deletions > 0, "{r:?}");
        assert!(r.file_truncations > 0, "{r:?}");
        assert_eq!(r.rebuilds_verified, r.pages_destroyed);
        assert_eq!(r.interrupted_rebuilds_verified, r.pages_destroyed);
    }

    #[test]
    fn both_torn_kinds_occur_across_schedules() {
        let cfg = CrashAuditConfig {
            schedules: 40,
            n_ops: 24,
            ..Default::default()
        };
        let report = audit(&Physiological, &cfg).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.torn_writes > 0, "{report:?}");
        assert!(report.torn_flushes > 0, "{report:?}");
        assert!(report.torn_pages_repaired > 0, "{report:?}");
        assert!(report.log_bytes_dropped > 0, "{report:?}");
    }
}
