//! Candidate crash-state enumeration.
//!
//! A crashed disk holds, for each variable, *some* value that variable
//! held at some point of the execution (page writes are atomic, so no
//! torn values) — possibly a different point per variable, since pages
//! flush independently. The set of such "per-variable cuts" strictly
//! contains every state a real cache manager can produce, so checking a
//! property over all cuts covers all reachable crash states.
//!
//! To probe the *unexposed garbage* half of explainability, the
//! enumeration can additionally offer a sentinel value no operation ever
//! writes.

use redo_theory::history::History;
use redo_theory::state::{State, Value, Var};

/// A sentinel "garbage" value assumed distinct from every value the
/// execution produces (the mix-based workloads make collisions with it
/// vanishingly unlikely, and the paper's examples never produce it).
pub const GARBAGE: Value = Value(0xdead_beef_dead_beef);

/// All distinct values each written variable takes during the execution
/// (initial value first), in chronological order.
#[must_use]
pub fn variable_versions(history: &History, s0: &State) -> Vec<(Var, Vec<Value>)> {
    let vars = history.written_vars();
    let mut out: Vec<(Var, Vec<Value>)> = vars.iter().map(|&x| (x, vec![s0.get(x)])).collect();
    let mut cur = s0.clone();
    for op in history.iter() {
        op.apply(&mut cur);
        for (x, versions) in &mut out {
            let v = cur.get(*x);
            if *versions.last().expect("non-empty") != v {
                versions.push(v);
            }
        }
    }
    for (_, versions) in &mut out {
        versions.dedup();
    }
    out
}

/// Enumerates every per-variable cut state (the cartesian product of
/// version choices), invoking `f` on each. With `with_garbage`, each
/// variable may additionally hold [`GARBAGE`]. Returns the number of
/// states enumerated, or `None` if `limit` was hit.
pub fn for_each_cut_state(
    history: &History,
    s0: &State,
    with_garbage: bool,
    limit: usize,
    mut f: impl FnMut(&State),
) -> Option<usize> {
    let versions = variable_versions(history, s0);
    let mut count = 0usize;
    let mut state = s0.clone();
    fn rec(
        versions: &[(Var, Vec<Value>)],
        i: usize,
        with_garbage: bool,
        state: &mut State,
        count: &mut usize,
        limit: usize,
        f: &mut impl FnMut(&State),
    ) -> bool {
        if *count >= limit {
            return false;
        }
        match versions.get(i) {
            None => {
                *count += 1;
                f(state);
                true
            }
            Some((x, vals)) => {
                let mut choices: Vec<Value> = vals.clone();
                if with_garbage {
                    choices.push(GARBAGE);
                }
                for v in choices {
                    let old = state.get(*x);
                    state.set(*x, v);
                    let ok = rec(versions, i + 1, with_garbage, state, count, limit, f);
                    state.set(*x, old);
                    if !ok {
                        return false;
                    }
                }
                true
            }
        }
    }
    if rec(
        &versions,
        0,
        with_garbage,
        &mut state,
        &mut count,
        limit,
        &mut f,
    ) {
        Some(count)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redo_theory::history::examples::{figure4, scenario1, scenario3};

    #[test]
    fn versions_of_figure4() {
        // x: 0 -> 1 -> 2; y: 0 -> 11.
        let vs = variable_versions(&figure4(), &State::zeroed());
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0], (Var(0), vec![Value(0), Value(1), Value(2)]));
        assert_eq!(vs[1], (Var(1), vec![Value(0), Value(11)]));
    }

    #[test]
    fn cut_count_is_the_product() {
        // figure4: 3 x-versions × 2 y-versions = 6 cuts.
        let n = for_each_cut_state(&figure4(), &State::zeroed(), false, 1000, |_| {}).unwrap();
        assert_eq!(n, 6);
        // With garbage: 4 × 3 = 12.
        let n = for_each_cut_state(&figure4(), &State::zeroed(), true, 1000, |_| {}).unwrap();
        assert_eq!(n, 12);
    }

    #[test]
    fn cuts_include_the_dangerous_scenario1_state() {
        // x=0 (A's update missing), y=2 (B's installed): the paper's
        // unrecoverable state must be among the cuts.
        let mut found = false;
        for_each_cut_state(&scenario1(), &State::zeroed(), false, 1000, |s| {
            if s.get(Var(0)) == Value(0) && s.get(Var(1)) == Value(2) {
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn limit_respected() {
        assert_eq!(
            for_each_cut_state(&figure4(), &State::zeroed(), false, 3, |_| {}),
            None
        );
    }

    #[test]
    fn duplicate_values_deduped() {
        // Scenario 3's C increments x then D writes x=y+1: if values
        // coincide they appear once. (They don't here, but the states
        // enumerated must all be distinct.)
        let mut seen = Vec::new();
        for_each_cut_state(&scenario3(), &State::zeroed(), false, 1000, |s| {
            assert!(!seen.contains(s), "duplicate cut {s:?}");
            seen.push(s.clone());
        });
    }
}
