//! §7's "beyond the theory" cases, found automatically.
//!
//! The paper closes with: *"There have been interesting examples in
//! which operations can be replayed even when they are not applicable
//! and write different values during recovery. The key is that these
//! writes are to the unexposed portion of the state, and hence the
//! values written are irrelevant."*
//!
//! This module searches small histories for exactly those witnesses: a
//! crash state `S` and a replay subset `U` such that
//!
//! * replaying `U` in conflict order from `S` reaches the final state
//!   (recovery *succeeds*), yet
//! * some replayed operation was **not applicable** — it read values
//!   different from the original execution and therefore wrote
//!   different values, which were later blotted out by blind writes.
//!
//! Finding such witnesses on ordinary workloads confirms the paper's
//! closing remark constructively; their *absence* under the strict
//! replay discipline confirms that the main theory never relies on
//! them.

use redo_theory::graph::NodeSet;
use redo_theory::history::History;
use redo_theory::replay::{is_applicable, replay_blind};
use redo_theory::state::State;
use redo_theory::state_graph::StateGraph;

use crate::cuts::for_each_cut_state;

/// A constructive witness for §7's remark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BeyondWitness {
    /// The crash state recovery started from.
    pub state: State,
    /// The subset replayed (in conflict order).
    pub replayed: Vec<usize>,
    /// The replayed operations that were *not* applicable when their
    /// turn came, yet recovery still succeeded.
    pub inapplicable: Vec<usize>,
}

/// Searches every (cut state × replay subset) pair of a small history
/// for beyond-the-theory successes. Returns all witnesses found (empty
/// when the history offers none), visiting at most `state_limit` states.
#[must_use]
pub fn find_beyond_witnesses(history: &History, state_limit: usize) -> Vec<BeyondWitness> {
    let n = history.len();
    assert!(n <= 12, "exponential search; history too large ({n} ops)");
    let s0 = State::zeroed();
    let sg = StateGraph::conflict_state_graph(history, &s0);
    let final_state = sg.final_state();
    let mut witnesses = Vec::new();
    for_each_cut_state(history, &s0, true, state_limit, |state| {
        for mask in 0..(1u64 << n) {
            let subset = NodeSet::from_indices(n, (0..n).filter(|i| mask >> i & 1 == 1));
            // Blind replay (real recoveries do not check applicability):
            // track which replayed ops were inapplicable.
            let mut cur = state.clone();
            let mut inapplicable = Vec::new();
            for op in history.iter() {
                if subset.contains(op.id().index()) {
                    if !is_applicable(&sg, op, &cur) {
                        inapplicable.push(op.id().index());
                    }
                    op.apply(&mut cur);
                }
            }
            if cur == final_state && !inapplicable.is_empty() {
                debug_assert_eq!(replay_blind(history, &subset, state), final_state);
                witnesses.push(BeyondWitness {
                    state: state.clone(),
                    replayed: subset.iter().collect(),
                    inapplicable,
                });
            }
        }
    });
    witnesses
}

#[cfg(test)]
mod tests {
    use super::*;
    use redo_theory::expr::Expr;
    use redo_theory::op::{OpId, Operation};
    use redo_theory::state::Var;

    /// The canonical shape: K reads x and writes y; L blindly overwrites
    /// y. From a state with a corrupted x, replaying K writes a wrong y
    /// — which L then blots out. Recovery succeeds although K was
    /// inapplicable.
    fn canonical() -> History {
        let x = Var(0);
        let y = Var(1);
        let k = Operation::builder(OpId(0))
            .assign(y, Expr::read(x).add(Expr::constant(1)))
            .build()
            .unwrap();
        let l = Operation::builder(OpId(1))
            .assign(y, Expr::constant(7))
            .build()
            .unwrap();
        // A final blind writer of x restores x itself.
        let m = Operation::builder(OpId(2))
            .assign(x, Expr::constant(3))
            .build()
            .unwrap();
        History::new(vec![k, l, m]).unwrap()
    }

    #[test]
    fn canonical_history_has_witnesses() {
        let ws = find_beyond_witnesses(&canonical(), 10_000);
        assert!(
            !ws.is_empty(),
            "§7's remark should be constructively confirmed"
        );
        // Every witness's inapplicable op must be K (the only reader).
        for w in &ws {
            assert!(w.inapplicable.iter().all(|&i| i == 0), "{w:?}");
            assert!(w.replayed.contains(&0));
        }
    }

    #[test]
    fn witness_really_is_beyond_strict_theory() {
        // Strict replay (applicability-checked) REJECTS the witness's
        // replay: the theory's replay discipline never exploits it.
        let h = canonical();
        let sg = StateGraph::conflict_state_graph(&h, &State::zeroed());
        let ws = find_beyond_witnesses(&h, 10_000);
        let w = &ws[0];
        let installed =
            NodeSet::from_indices(h.len(), (0..h.len()).filter(|i| !w.replayed.contains(i)));
        assert!(redo_theory::replay::replay_uninstalled(&h, &sg, &installed, &w.state).is_err());
    }

    #[test]
    fn blind_histories_have_no_inapplicable_replays() {
        // Blind operations are always applicable, so no witness exists.
        use redo_workload::WorkloadSpec;
        for seed in 0..3 {
            let h = WorkloadSpec::physical(5, 3).generate(seed);
            assert!(find_beyond_witnesses(&h, 10_000).is_empty());
        }
    }

    #[test]
    fn witnesses_exist_on_random_workloads_with_blind_tails() {
        // Random workloads with a healthy blind-write fraction regularly
        // produce §7 situations.
        use redo_workload::WorkloadSpec;
        let mut found = 0usize;
        for seed in 0..10 {
            let h = WorkloadSpec {
                n_ops: 5,
                n_vars: 3,
                blind_fraction: 0.6,
                max_reads: 1,
                max_writes: 1,
                ..Default::default()
            }
            .generate(seed);
            found += usize::from(!find_beyond_witnesses(&h, 20_000).is_empty());
        }
        assert!(
            found > 0,
            "expected at least one seed to exhibit §7 behaviour"
        );
    }
}
