//! Exhaustive validation of the paper's main results on small histories.
//!
//! For a given history the checker decides recoverability *by brute
//! force* — trying every replay subset against every candidate crash
//! state — and confirms that the paper's characterization (explainability
//! by an installation-graph prefix) matches exactly, in both directions.

use std::fmt;

use redo_theory::conflict::ConflictGraph;
use redo_theory::explain::{explains, find_explaining_prefix};
use redo_theory::exposed::is_exposed;
use redo_theory::graph::NodeSet;
use redo_theory::history::History;
use redo_theory::installation::InstallationGraph;
use redo_theory::log::Log;
use redo_theory::recovery::{analyze_noop, recover_checked};
use redo_theory::replay::replay_uninstalled;
use redo_theory::state::State;
use redo_theory::state_graph::StateGraph;

use crate::cuts::{for_each_cut_state, GARBAGE};

/// What the exhaustive check verified.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Installation-graph prefixes checked under Theorem 3.
    pub prefixes_checked: usize,
    /// Candidate crash states enumerated.
    pub states_checked: usize,
    /// States found explainable (and hence recoverable).
    pub explainable: usize,
    /// States found unexplainable (and hence unrecoverable by any
    /// subset).
    pub unexplainable: usize,
    /// (state, subset) pairs whose strict replay succeeded; each was
    /// validated against the converse theorem.
    pub successful_replays: usize,
    /// Corollary 4 recovery-procedure runs executed.
    pub recovery_runs: usize,
}

/// A violation of one of the paper's results — finding one of these
/// would falsify the reproduction (or reveal a checker bug).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Counterexample {
    /// Theorem 3 failed: an explained state did not replay to the final
    /// state.
    Theorem3 {
        /// The explaining prefix.
        prefix: Vec<usize>,
        /// Rendered reason.
        detail: String,
    },
    /// The converse failed: a state with a successful strict replay
    /// that no installation-graph prefix explains.
    Converse {
        /// The replayed subset that succeeded.
        replayed: Vec<usize>,
    },
    /// An explainable state had no successful replay at all.
    ExplainableButUnrecoverable {
        /// The explaining prefix.
        prefix: Vec<usize>,
    },
    /// Corollary 4 failed: the recovery procedure violated its invariant
    /// or ended in the wrong state.
    Corollary4 {
        /// Rendered reason.
        detail: String,
    },
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Counterexample::Theorem3 { prefix, detail } => {
                write!(f, "Theorem 3 violated for prefix {prefix:?}: {detail}")
            }
            Counterexample::Converse { replayed } => write!(
                f,
                "converse violated: replaying {replayed:?} succeeded from a state no installation prefix explains"
            ),
            Counterexample::ExplainableButUnrecoverable { prefix } => write!(
                f,
                "state explained by {prefix:?} has no successful replay"
            ),
            Counterexample::Corollary4 { detail } => {
                write!(f, "Corollary 4 violated: {detail}")
            }
        }
    }
}

fn set_to_vec(s: &NodeSet) -> Vec<usize> {
    s.iter().collect()
}

/// Exhaustively checks Theorem 3, its converse, and Corollary 4 on
/// `history` from the all-zero initial state.
///
/// Caps: at most `prefix_limit` installation prefixes and `state_limit`
/// cut states are enumerated (pass generous limits for ≤ 6-operation
/// histories).
///
/// # Errors
///
/// The first [`Counterexample`] found.
pub fn check_history(
    history: &History,
    prefix_limit: usize,
    state_limit: usize,
) -> Result<CheckReport, Counterexample> {
    let n = history.len();
    assert!(
        n <= 16,
        "exhaustive checking is exponential; history too large ({n} ops)"
    );
    let s0 = State::zeroed();
    let cg = ConflictGraph::generate(history);
    let ig = InstallationGraph::from_conflict(&cg);
    let sg = StateGraph::from_conflict(history, &cg, &s0);
    let log = Log::from_history(history);
    let final_state = sg.final_state();
    let mut report = CheckReport::default();

    // --- Theorem 3 over every installation prefix, with and without
    // garbage planted in unexposed variables. ---
    let mut t3_failure: Option<Counterexample> = None;
    ig.dag().for_each_prefix(prefix_limit, |prefix| {
        if t3_failure.is_some() {
            return;
        }
        report.prefixes_checked += 1;
        let mut state = sg.state_determined_by(prefix);
        for garbage in [false, true] {
            if garbage {
                for x in cg.vars().collect::<Vec<_>>() {
                    if !is_exposed(&cg, prefix, x) {
                        state.set(x, GARBAGE);
                    }
                }
            }
            if !explains(&cg, &sg, prefix, &state) {
                t3_failure = Some(Counterexample::Theorem3 {
                    prefix: set_to_vec(prefix),
                    detail: "prefix fails to explain its own determined state".into(),
                });
                return;
            }
            match replay_uninstalled(history, &sg, prefix, &state) {
                Ok(s) if s == final_state => {}
                Ok(_) => {
                    t3_failure = Some(Counterexample::Theorem3 {
                        prefix: set_to_vec(prefix),
                        detail: "replay terminated in a non-final state".into(),
                    });
                    return;
                }
                Err(e) => {
                    t3_failure = Some(Counterexample::Theorem3 {
                        prefix: set_to_vec(prefix),
                        detail: format!("replay not applicable: {e}"),
                    });
                    return;
                }
            }
            // Corollary 4: drive the abstract recovery procedure with
            // the redo test "replay iff outside the prefix" and verify
            // the invariant at every iteration.
            let prefix_owned = prefix.clone();
            match recover_checked(
                history,
                &cg,
                &ig,
                &sg,
                &state,
                &log,
                &NodeSet::new(n),
                analyze_noop,
                move |op, _, _, _| !prefix_owned.contains(op.id().index()),
            ) {
                Ok(out) if out.state == final_state => report.recovery_runs += 1,
                Ok(_) => {
                    t3_failure = Some(Counterexample::Corollary4 {
                        detail: "procedure ended in a non-final state".into(),
                    });
                    return;
                }
                Err(e) => {
                    t3_failure = Some(Counterexample::Corollary4 {
                        detail: e.to_string(),
                    });
                    return;
                }
            }
        }
    });
    if let Some(c) = t3_failure {
        return Err(c);
    }

    // --- Converse over every cut state and every replay subset. ---
    let mut conv_failure: Option<Counterexample> = None;
    for_each_cut_state(history, &s0, true, state_limit, |state| {
        if conv_failure.is_some() {
            return;
        }
        report.states_checked += 1;
        let explaining = find_explaining_prefix(&cg, &ig, &sg, state, prefix_limit);
        let mut any_success = false;
        for mask in 0..(1u64 << n) {
            let replayed = NodeSet::from_indices(n, (0..n).filter(|i| mask >> i & 1 == 1));
            let installed = replayed.complement();
            let ok = matches!(
                replay_uninstalled(history, &sg, &installed, state),
                Ok(ref s) if *s == final_state
            );
            if ok {
                any_success = true;
                report.successful_replays += 1;
                // Second main result, state-level form: a strictly
                // recoverable state must be explainable by SOME
                // installation prefix. (The per-subset form — that the
                // bypassed set itself is an explaining prefix — is
                // deliberately NOT asserted: this checker found it
                // false. Replaying a mid-chain blind writer's
                // neighbours can succeed because a later blind write
                // overwrites the skipped value; the bypassed set is
                // then not downward-closed. This is exactly why the
                // paper's earlier VLDB'95 formulation also removed
                // certain write-write edges, and why §1.3 can call the
                // two definitions equivalent: the *explainable states*
                // coincide even though the prefix families differ.)
                if explaining.is_none() {
                    conv_failure = Some(Counterexample::Converse {
                        replayed: set_to_vec(&replayed),
                    });
                    return;
                }
            }
        }
        match (&explaining, any_success) {
            (Some(p), false) => {
                conv_failure = Some(Counterexample::ExplainableButUnrecoverable {
                    prefix: set_to_vec(p),
                });
            }
            (Some(_), true) => report.explainable += 1,
            (None, _) => report.unexplainable += 1,
            // Note: (None, true) cannot be flagged as a failure here —
            // it is caught above, since a successful replay forces the
            // complement to be an explaining prefix, contradicting
            // `explaining == None`.
        }
    });
    if let Some(c) = conv_failure {
        return Err(c);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use redo_theory::history::examples::{efg, figure4, hj, scenario1, scenario2, scenario3};
    use redo_workload::{Shape, WorkloadSpec};

    #[test]
    fn paper_examples_check_clean() {
        for h in [
            scenario1(),
            scenario2(),
            scenario3(),
            figure4(),
            efg(),
            hj(),
        ] {
            let report = check_history(&h, 10_000, 10_000).unwrap_or_else(|c| {
                panic!("counterexample on {h:?}: {c}");
            });
            assert!(report.prefixes_checked > 0);
            assert!(report.states_checked > 0);
        }
    }

    #[test]
    fn scenario1_has_unexplainable_states() {
        let report = check_history(&scenario1(), 10_000, 10_000).unwrap();
        assert!(report.unexplainable > 0, "{report:?}");
    }

    #[test]
    fn random_small_workloads_check_clean() {
        for seed in 0..8 {
            let h = WorkloadSpec {
                n_ops: 5,
                n_vars: 3,
                max_reads: 2,
                max_writes: 2,
                blind_fraction: 0.4,
                skew: 0.0,
                shape: Shape::Random,
            }
            .generate(seed);
            check_history(&h, 100_000, 100_000).unwrap_or_else(|c| {
                panic!("counterexample on seed {seed}: {c}\nhistory: {h:?}");
            });
        }
    }

    #[test]
    fn write_read_heavy_workloads_check_clean() {
        for seed in 0..6 {
            let h = WorkloadSpec {
                n_ops: 5,
                n_vars: 3,
                max_reads: 1,
                max_writes: 1,
                blind_fraction: 0.5,
                skew: 0.0,
                shape: Shape::WriteReadHeavy,
            }
            .generate(seed);
            check_history(&h, 100_000, 100_000)
                .unwrap_or_else(|c| panic!("seed {seed}: {c}\nhistory: {h:?}"));
        }
    }

    #[test]
    fn blind_workloads_every_cut_is_recoverable() {
        // Physical regime: every per-variable cut is explainable (the
        // pending blind writes make stale variables unexposed).
        for seed in 0..4 {
            let h = WorkloadSpec::physical(5, 3).generate(seed);
            let report = check_history(&h, 100_000, 100_000).unwrap();
            // GARBAGE states may still be unexplainable when a variable
            // is never rewritten; but all non-garbage cuts must be
            // explainable. Cheap proxy: at least one state per cut is
            // explainable and Theorem 3 held throughout.
            assert!(report.explainable > 0);
        }
    }
}
