//! `redo-check` — command-line recovery checker.
//!
//! ```text
//! redo-check theorems    [--ops N] [--vars V] [--seeds K] [--blind F]
//! redo-check schedules   [--method M] [--ops N] [--pages P] [--seeds K] [--limit L]
//! redo-check walks       [--ops N] [--vars V] [--seeds K] [--steps S]
//! redo-check beyond      [--ops N] [--vars V] [--seeds K]
//! redo-check crash-audit [--method M] [--schedules S] [--ops N] [--pages P]
//!                        [--seed X] [--capacity C] [--backend mem|file]
//!                        [--log-shards N]
//! ```
//!
//! * `theorems`  — brute-force Theorem 3 / converse / Corollary 4 on
//!   random small histories.
//! * `schedules` — exhaustively explore flush schedules of a §6 method
//!   (`logical|physical|physiological|generalized|fuzzy|skippy|lying`;
//!   the last two are deliberately broken and should FAIL).
//! * `walks`     — fuzz write-graph evolutions against Corollary 5.
//! * `beyond`    — search for §7's beyond-the-theory witnesses.
//! * `crash-audit` — drive each method (`--method all` by default;
//!   `logical|physical|physiological|generalized|online|fuzzy|parallel|ondemand|media|pit|control`)
//!   through seeded crash schedules with injected faults: torn page
//!   writes, partial log flushes, and a crash in the middle of every
//!   recovery, checking the Recovery Invariant after each completed
//!   recovery. The `online` method additionally exposes its fuzzy
//!   checkpoint publication (force, pointer swing, truncation) as
//!   faultable crash points. The `ondemand` method recovers through
//!   the instant-restart path — every probe recovery also reopens the
//!   crashed image lazily and serves all durable cells mid-recovery.
//!   The `media` method audits media recovery: after each crash one
//!   durable page is destroyed out-of-band (on `--backend file`, the
//!   page file is unlinked or `truncate(2)`-zeroed behind the
//!   database's back), and the rebuild from `archive ∥ live` must
//!   reach state identity with an undamaged probe — sequentially,
//!   through the on-demand path, and across a second fault injected
//!   mid-rebuild. The `pit` method audits the archive tier instead:
//!   it drives `online` (whose checkpoints move the truncated log
//!   prefix into the archive) and verifies that point-in-time replay
//!   over `archive ∥ live` reproduces the full durable history and
//!   the pre-truncation state at the truncation boundary.
//!   The `control` method audits incremental (delta-chain)
//!   checkpointing twice over: the generic degradation loop with
//!   crashes landing inside delta publication, plus a twin run that
//!   drives an identical workload/fault/chaos schedule through both
//!   delta-chain and full-snapshot checkpointing and demands recovered
//!   state identity whenever the twins kept the same durable prefix.
//!   `--capacity 0` means an unbounded buffer
//!   pool. `--backend file` runs every schedule against the fsync-backed
//!   file backend in a fresh temporary directory instead of the
//!   in-memory simulation. `--log-shards N` splits the WAL into N
//!   per-partition logs (a power of two): multi-page records become
//!   cross-shard atomic flush groups, and the injected faults land
//!   between a group's closure markers too.
//!
//! Exit code 0 = everything checked clean (or, for the broken methods,
//! the expected violation was found); 1 = a violation of the paper's
//! claims was detected; 2 = usage error.

use std::process::ExitCode;

use redo_checker::beyond::find_beyond_witnesses;
use redo_checker::crash_audit::{audit, audit_control, audit_media, audit_pit, CrashAuditConfig};
use redo_checker::exhaustive::explore;
use redo_checker::theorems::check_history;
use redo_checker::wg_walk::walk;
use redo_methods::broken::{LyingCheckpoint, SkippyRedo};
use redo_methods::control::Control;
use redo_methods::fuzzy::FuzzyPhysiological;
use redo_methods::generalized::Generalized;
use redo_methods::logical::Logical;
use redo_methods::ondemand::OnDemand;
use redo_methods::online::GeneralizedOnline;
use redo_methods::parallel::{ParallelOnline, ParallelPhysical, ParallelPhysiological};
use redo_methods::physical::Physical;
use redo_methods::physiological::Physiological;
use redo_methods::RecoveryMethod;
use redo_sim::backend::BackendKind;
use redo_workload::pages::PageWorkloadSpec;
use redo_workload::{Shape, WorkloadSpec};

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let k = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {}", args[i]))?;
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("--{k} needs a value"))?;
            flags.push((k.to_string(), v.clone()));
            i += 2;
        }
        Ok(Args { flags })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.iter().find(|(k, _)| k == key) {
            None => Ok(default),
            Some((_, v)) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
        }
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map_or_else(|| default.to_string(), |(_, v)| v.clone())
    }
}

fn cmd_theorems(args: &Args) -> Result<bool, String> {
    let ops: usize = args.get("ops", 5)?;
    let vars: u32 = args.get("vars", 3)?;
    let seeds: u64 = args.get("seeds", 10)?;
    let blind: f64 = args.get("blind", 0.4)?;
    if ops > 7 {
        return Err("theorems mode is exponential; --ops must be <= 7".into());
    }
    let mut clean = true;
    for seed in 0..seeds {
        let h = WorkloadSpec {
            n_ops: ops,
            n_vars: vars,
            max_reads: 2,
            max_writes: 2,
            blind_fraction: blind,
            skew: 0.0,
            shape: Shape::Random,
        }
        .generate(seed);
        match check_history(&h, 1_000_000, 1_000_000) {
            Ok(r) => println!(
                "seed {seed}: OK — {} prefixes, {} crash states, {} explainable, {} unexplainable",
                r.prefixes_checked, r.states_checked, r.explainable, r.unexplainable
            ),
            Err(c) => {
                println!("seed {seed}: COUNTEREXAMPLE — {c}");
                clean = false;
            }
        }
    }
    Ok(clean)
}

fn explore_method<M: RecoveryMethod>(
    method: &M,
    ops_n: usize,
    pages: u32,
    seeds: u64,
    limit: usize,
) -> (u64, u64) {
    // Feed each method only the operation shapes its logging discipline
    // admits (cross-page reads are a generalized/logical feature).
    let cross = match method.name() {
        "generalized-lsn" | "logical" => 0.5,
        _ => 0.0,
    };
    let blind = if method.name() == "physical" {
        1.0
    } else {
        0.2
    };
    let (mut ok, mut bad) = (0u64, 0u64);
    for seed in 0..seeds {
        let ops = PageWorkloadSpec {
            n_ops: ops_n,
            n_pages: pages,
            slots_per_page: 4,
            cross_page_fraction: cross,
            blind_fraction: blind,
            max_writes: 1,
            ..Default::default()
        }
        .generate(seed);
        match explore(method, &ops, 4, limit) {
            Ok((r, complete)) => {
                println!(
                    "seed {seed}: OK — {} nodes, {} crashes checked, {} distinct stable states{}",
                    r.nodes,
                    r.crashes_checked,
                    r.distinct_stable_states,
                    if complete { "" } else { " (truncated)" }
                );
                ok += 1;
            }
            Err(e) => {
                println!("seed {seed}: VIOLATION — {e}");
                bad += 1;
            }
        }
    }
    (ok, bad)
}

fn cmd_schedules(args: &Args) -> Result<bool, String> {
    let ops: usize = args.get("ops", 4)?;
    let pages: u32 = args.get("pages", 2)?;
    let seeds: u64 = args.get("seeds", 3)?;
    let limit: usize = args.get("limit", 100_000)?;
    let method = args.get_str("method", "physiological");
    let expect_broken = matches!(method.as_str(), "skippy" | "lying");
    let (ok, bad) = match method.as_str() {
        "logical" => explore_method(&Logical, ops, pages, seeds, limit),
        "physical" => explore_method(&Physical, ops, pages, seeds, limit),
        "physiological" => explore_method(&Physiological, ops, pages, seeds, limit),
        "generalized" => explore_method(&Generalized, ops, pages, seeds, limit),
        "fuzzy" => explore_method(&FuzzyPhysiological, ops, pages, seeds, limit),
        "skippy" => explore_method(&SkippyRedo, ops, pages, seeds, limit),
        "lying" => explore_method(&LyingCheckpoint, ops, pages, seeds, limit),
        other => return Err(format!("unknown method {other}")),
    };
    if expect_broken {
        println!("({method} is a deliberately broken method: violations are the expected outcome)");
        Ok(bad > 0)
    } else {
        Ok(bad == 0 && ok > 0)
    }
}

fn audit_method<M: RecoveryMethod>(method: &M, cfg: &CrashAuditConfig) -> bool {
    match audit(method, cfg) {
        Ok(r) => {
            println!(
                "{}: OK — {} schedules, {} crashes ({} mid-recovery), {} faults fired \
                 ({} torn writes, {} torn flushes, {} clean stops), {} torn pages repaired, \
                 {} log bytes dropped, {} recoveries verified, {} seekless probes agreed, \
                 {} parallel probes agreed, {} ondemand probes agreed",
                method.name(),
                r.schedules,
                r.crashes,
                r.mid_recovery_crashes,
                r.faults_tripped,
                r.torn_writes,
                r.torn_flushes,
                r.clean_stops,
                r.torn_pages_repaired,
                r.log_bytes_dropped,
                r.recoveries_verified,
                r.seekless_probes,
                r.parallel_probes,
                r.ondemand_probes
            );
            true
        }
        Err(e) => {
            println!("VIOLATION — {e}");
            false
        }
    }
}

fn cmd_crash_audit(args: &Args) -> Result<bool, String> {
    let capacity: usize = args.get("capacity", 4)?;
    let backend = match args.get_str("backend", "mem").as_str() {
        "mem" => BackendKind::Mem,
        "file" => BackendKind::File,
        other => return Err(format!("unknown backend {other} (expected mem|file)")),
    };
    let log_shards: usize = args.get("log-shards", 1)?;
    if !log_shards.is_power_of_two() {
        return Err(format!(
            "--log-shards must be a power of two, got {log_shards}"
        ));
    }
    let cfg = CrashAuditConfig {
        schedules: args.get("schedules", 100)?,
        n_ops: args.get("ops", 40)?,
        n_pages: args.get("pages", 6)?,
        seed: args.get("seed", 0)?,
        pool_capacity: if capacity == 0 { None } else { Some(capacity) },
        backend,
        log_shards,
        ..Default::default()
    };
    let method = args.get_str("method", "all");
    let all = method == "all";
    let mut clean = true;
    let mut matched = false;
    if all || method == "logical" {
        clean &= audit_method(&Logical, &cfg);
        matched = true;
    }
    if all || method == "physical" {
        clean &= audit_method(&Physical, &cfg);
        matched = true;
    }
    if all || method == "physiological" {
        clean &= audit_method(&Physiological, &cfg);
        matched = true;
    }
    if all || method == "generalized" {
        clean &= audit_method(&Generalized, &cfg);
        matched = true;
    }
    if all || method == "online" {
        clean &= audit_method(&GeneralizedOnline, &cfg);
        matched = true;
    }
    if all || method == "fuzzy" {
        clean &= audit_method(&FuzzyPhysiological, &cfg);
        matched = true;
    }
    if all || method == "ondemand" {
        clean &= audit_method(&OnDemand, &cfg);
        matched = true;
    }
    if all || method == "parallel" {
        clean &= audit_method(&ParallelPhysiological { threads: 3 }, &cfg);
        clean &= audit_method(&ParallelPhysical { threads: 3 }, &cfg);
        clean &= audit_method(&ParallelOnline { threads: 3 }, &cfg);
        matched = true;
    }
    if all || method == "media" {
        match audit_media(&cfg) {
            Ok(r) => println!(
                "media: OK — {} schedules, {} crashes, {} faults fired, \
                 {} pages destroyed ({} file deletions, {} file truncations), \
                 {} rebuilds verified, {} ondemand rebuilds verified, \
                 {} interrupted rebuilds verified",
                r.schedules,
                r.crashes,
                r.faults_tripped,
                r.pages_destroyed,
                r.file_deletions,
                r.file_truncations,
                r.rebuilds_verified,
                r.ondemand_rebuilds_verified,
                r.interrupted_rebuilds_verified
            ),
            Err(e) => {
                println!("VIOLATION — {e}");
                clean = false;
            }
        }
        matched = true;
    }
    if all || method == "control" {
        clean &= audit_method(&Control, &cfg);
        match audit_control(&cfg) {
            Ok(r) => println!(
                "control (twin run): OK — {} schedules, {} crashes, {} faults fired, \
                 {} recoveries verified, {} delta/full identity checks, \
                 {} crashes landed on a delta master",
                r.schedules,
                r.crashes,
                r.faults_tripped,
                r.recoveries_verified,
                r.identity_checks,
                r.delta_masters
            ),
            Err(e) => {
                println!("VIOLATION — {e}");
                clean = false;
            }
        }
        matched = true;
    }
    if all || method == "pit" {
        match audit_pit(&cfg) {
            Ok(r) => println!(
                "pit: OK — {} schedules, {} crashes, {} faults fired, \
                 {} full-history replays verified, {} truncation-point replays verified, \
                 {} bytes archived",
                r.schedules,
                r.crashes,
                r.faults_tripped,
                r.full_replays_verified,
                r.truncation_replays_verified,
                r.archived_bytes
            ),
            Err(e) => {
                println!("VIOLATION — {e}");
                clean = false;
            }
        }
        matched = true;
    }
    if !matched {
        return Err(format!("unknown method {method}"));
    }
    Ok(clean)
}

fn cmd_walks(args: &Args) -> Result<bool, String> {
    let ops: usize = args.get("ops", 8)?;
    let vars: u32 = args.get("vars", 4)?;
    let seeds: u64 = args.get("seeds", 20)?;
    let steps: usize = args.get("steps", 150)?;
    let mut applied = 0usize;
    for seed in 0..seeds {
        let h = WorkloadSpec {
            n_ops: ops,
            n_vars: vars,
            blind_fraction: 0.5,
            ..WorkloadSpec::default()
        }
        .generate(seed);
        applied += walk(&h, seed, steps).applied; // panics on violation
    }
    println!("{applied} write-graph operations applied; Corollary 5 held throughout");
    Ok(true)
}

fn cmd_beyond(args: &Args) -> Result<bool, String> {
    let ops: usize = args.get("ops", 5)?;
    let vars: u32 = args.get("vars", 3)?;
    let seeds: u64 = args.get("seeds", 10)?;
    if ops > 7 {
        return Err("beyond mode is exponential; --ops must be <= 7".into());
    }
    let mut total = 0usize;
    for seed in 0..seeds {
        let h = WorkloadSpec {
            n_ops: ops,
            n_vars: vars,
            blind_fraction: 0.6,
            max_reads: 1,
            max_writes: 1,
            ..WorkloadSpec::default()
        }
        .generate(seed);
        let ws = find_beyond_witnesses(&h, 100_000);
        if let Some(w) = ws.first() {
            println!(
                "seed {seed}: {} witnesses; e.g. replaying {:?} succeeds although ops {:?} were inapplicable",
                ws.len(),
                w.replayed,
                w.inapplicable
            );
        } else {
            println!("seed {seed}: no beyond-the-theory witnesses");
        }
        total += ws.len();
    }
    println!("{total} witnesses total (the paper's §7 remark, constructively)");
    Ok(true)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!(
            "usage: redo-check <theorems|schedules|walks|beyond|crash-audit> [--flag value]..."
        );
        return ExitCode::from(2);
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "theorems" => cmd_theorems(&args),
        "schedules" => cmd_schedules(&args),
        "walks" => cmd_walks(&args),
        "beyond" => cmd_beyond(&args),
        "crash-audit" => cmd_crash_audit(&args),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("violations detected");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
