//! Random legal write-graph walks (Corollary 5 fuzzing).
//!
//! Starting from the installation state graph, apply random *legal*
//! write-graph operations — install, add edge, collapse, remove write —
//! and assert after every successful step that the installed operations
//! still form an installation-graph prefix explaining the installed
//! state. Illegal attempts must be rejected by the write graph's own
//! precondition checks (never by corrupting state), which the walk also
//! verifies by checking Corollary 5 even after rejected attempts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redo_theory::conflict::ConflictGraph;
use redo_theory::history::History;
use redo_theory::installation::InstallationGraph;
use redo_theory::state::{State, Var};
use redo_theory::state_graph::StateGraph;
use redo_theory::write_graph::{WgNodeId, WriteGraph};

/// Outcome of one walk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalkReport {
    /// Steps attempted.
    pub attempted: usize,
    /// Steps that passed the write graph's preconditions.
    pub applied: usize,
    /// Installs performed.
    pub installs: usize,
    /// Collapses performed.
    pub collapses: usize,
    /// Edges added.
    pub edges: usize,
    /// Writes removed.
    pub removals: usize,
}

/// Runs a `steps`-step random walk on the history's write graph,
/// panicking with a description if Corollary 5 is ever violated.
#[must_use]
pub fn walk(history: &History, seed: u64, steps: usize) -> WalkReport {
    let s0 = State::zeroed();
    let cg = ConflictGraph::generate(history);
    let ig = InstallationGraph::from_conflict(&cg);
    let sg = StateGraph::from_conflict(history, &cg, &s0);
    let mut wg = WriteGraph::from_installation_graph(history, &cg, &ig, &sg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = WalkReport::default();
    let all_vars: Vec<Var> = cg.vars().collect();

    for _ in 0..steps {
        report.attempted += 1;
        let live: Vec<WgNodeId> = wg.live_nodes().collect();
        if live.is_empty() {
            break;
        }
        let pick = |rng: &mut StdRng, v: &Vec<WgNodeId>| v[rng.gen_range(0..v.len())];
        let applied = match rng.gen_range(0..4u8) {
            0 => {
                // Install a random minimal uninstalled node, if any.
                let mins = wg.minimal_uninstalled();
                if mins.is_empty() {
                    false
                } else {
                    let n = mins[rng.gen_range(0..mins.len())];
                    let ok = wg.install(n).is_ok();
                    if ok {
                        report.installs += 1;
                    }
                    ok
                }
            }
            1 => {
                let (u, v) = (pick(&mut rng, &live), pick(&mut rng, &live));
                let ok = u != v && wg.add_edge(u, v).is_ok();
                if ok {
                    report.edges += 1;
                }
                ok
            }
            2 => {
                let (u, v) = (pick(&mut rng, &live), pick(&mut rng, &live));
                let ok = u != v && wg.collapse(&[u, v]).is_ok();
                if ok {
                    report.collapses += 1;
                }
                ok
            }
            _ => {
                if all_vars.is_empty() {
                    false
                } else {
                    let n = pick(&mut rng, &live);
                    let x = all_vars[rng.gen_range(0..all_vars.len())];
                    let ok = wg.remove_write(n, x).is_ok();
                    if ok {
                        report.removals += 1;
                    }
                    ok
                }
            }
        };
        if applied {
            report.applied += 1;
        }
        // Corollary 5 must hold whether the step applied or was
        // rejected (rejections must leave the graph untouched).
        assert!(
            wg.installed_is_prefix(),
            "installed set stopped being a write-graph prefix (seed {seed})"
        );
        assert!(
            wg.check_corollary5(&ig),
            "Corollary 5 violated after step {} (seed {seed}):\n{wg:?}",
            report.attempted
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use redo_theory::history::examples::{efg, figure4, hj, scenario2, scenario3};
    use redo_workload::WorkloadSpec;

    #[test]
    fn walks_on_paper_examples() {
        for h in [scenario2(), scenario3(), figure4(), efg(), hj()] {
            for seed in 0..10 {
                let report = walk(&h, seed, 60);
                assert!(report.applied > 0, "no step applied on {h:?} seed {seed}");
            }
        }
    }

    #[test]
    fn walks_on_random_workloads() {
        for seed in 0..10 {
            let h = WorkloadSpec {
                n_ops: 8,
                n_vars: 4,
                blind_fraction: 0.5,
                ..WorkloadSpec::default()
            }
            .generate(seed);
            let report = walk(&h, seed, 120);
            assert!(report.installs > 0, "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn walks_exercise_every_operation_kind() {
        let mut totals = WalkReport::default();
        for seed in 0..40 {
            let h = WorkloadSpec {
                n_ops: 8,
                n_vars: 3,
                blind_fraction: 0.6,
                ..WorkloadSpec::default()
            }
            .generate(seed);
            let r = walk(&h, seed, 120);
            totals.installs += r.installs;
            totals.collapses += r.collapses;
            totals.edges += r.edges;
            totals.removals += r.removals;
        }
        assert!(totals.installs > 0);
        assert!(totals.collapses > 0);
        assert!(totals.edges > 0);
        assert!(
            totals.removals > 0,
            "remove-write never applied: {totals:?}"
        );
    }
}
