//! # redo-checker
//!
//! A model checker for redo recovery: it decides, *exhaustively* on
//! small histories, every question the paper answers with a theorem —
//! and confirms the two agree.
//!
//! * [`cuts`] enumerates candidate crash states (every per-variable
//!   combination of the values a variable held during the execution,
//!   plus arbitrary garbage for probing unexposed positions).
//! * [`theorems`] validates the paper's main results on a history:
//!   - **Theorem 3** (Potential Recoverability): every state explained
//!     by an installation-graph prefix replays to the final state, with
//!     every replayed operation applicable;
//!   - its **converse** (the paper's second main result): whenever
//!     *any* subset of operations strictly replays to the final state,
//!     the remaining operations form an installation-graph prefix
//!     explaining the starting state — so explainability exactly
//!     characterizes recoverability;
//!   - **Corollary 4**: the abstract recovery procedure, run with a
//!     redo test satisfying the recovery invariant, terminates in the
//!     final state.
//! * [`wg_walk`] drives random (but legal) write-graph evolutions —
//!   install / add-edge / collapse / remove-write — asserting
//!   **Corollary 5** after every step: the installed state stays
//!   explainable.
//! * [`schedule`] validates the parallel redo scheduler built on
//!   Theorem 3: for every installation-graph prefix the planned level
//!   schedule is legal (each conflict edge inside the uninstalled set
//!   goes forward), and multi-threaded replay reaches exactly the state
//!   sequential replay reaches — exhaustively on small histories and on
//!   hundreds of random large ones.
//! * [`crash_audit`] samples seeded crash schedules with *injected
//!   faults* — torn page writes, partial log flushes, crashes in the
//!   middle of recovery itself — and checks the Recovery Invariant
//!   after every completed recovery, plus recovery idempotence.
//! * [`exhaustive`] explores the *simulated database* instead of the
//!   abstract model: every reachable (log-flush × page-flush) schedule
//!   of a workload under a §6 recovery method, crashing at every
//!   boundary and checking that recovery rebuilds the durable prefix.
//!
//! The checker is the part of this reproduction a recovery implementor
//! would actually reuse: hand it a logging discipline (as a
//! [`redo_methods::RecoveryMethod`]) and a workload shape, and it
//! searches for schedules that violate the recovery invariant.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod beyond;
pub mod crash_audit;
pub mod cuts;
pub mod exhaustive;
pub mod schedule;
pub mod theorems;
pub mod wg_walk;

pub use schedule::{
    check_parallel_random, check_parallel_schedule, ScheduleCounterexample, ScheduleReport,
};
pub use theorems::{check_history, CheckReport, Counterexample};
