//! Exhaustive and randomized validation of the parallel redo scheduler.
//!
//! Two claims are on trial. **Legality**: for every installation-graph
//! prefix, the planned level schedule covers exactly the uninstalled
//! operations and every conflict edge inside the uninstalled set goes
//! strictly forward — checked both through
//! [`RedoSchedule::validate`] and by an independent position walk over
//! the flattened order, so a bug in `validate` cannot vouch for a bug in
//! `plan`. **Equivalence**: multi-threaded
//! [`replay_parallel`] reaches exactly the state sequential
//! [`replay_uninstalled`] reaches (which Theorem 3 says is the final
//! state), on every prefix of exhaustively enumerated small histories
//! and on randomly sampled prefixes of large random histories.

use std::fmt;

use redo_theory::conflict::ConflictGraph;
use redo_theory::graph::NodeSet;
use redo_theory::history::History;
use redo_theory::installation::InstallationGraph;
use redo_theory::replay::replay_uninstalled;
use redo_theory::schedule::{replay_parallel, RedoSchedule};
use redo_theory::state::State;
use redo_theory::state_graph::StateGraph;
use redo_workload::{Shape, WorkloadSpec};

/// What the scheduler check verified.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleReport {
    /// Histories examined.
    pub histories_checked: usize,
    /// Installation prefixes whose planned schedule was validated.
    pub schedules_validated: usize,
    /// Parallel-vs-serial replay comparisons executed (prefixes ×
    /// thread counts).
    pub replays_compared: usize,
}

impl ScheduleReport {
    fn absorb(&mut self, other: &ScheduleReport) {
        self.histories_checked += other.histories_checked;
        self.schedules_validated += other.schedules_validated;
        self.replays_compared += other.replays_compared;
    }
}

/// A violation of the scheduler's contract — finding one falsifies the
/// Theorem 3 reading the scheduler is built on (or reveals a scheduler
/// bug).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleCounterexample {
    /// A planned schedule failed its own legality check.
    Illegal {
        /// The installed prefix.
        prefix: Vec<usize>,
        /// Rendered reason.
        detail: String,
    },
    /// A conflict edge inside the uninstalled set does not go forward in
    /// the flattened schedule order (independent re-check).
    BackwardEdge {
        /// The installed prefix.
        prefix: Vec<usize>,
        /// Source of the offending edge.
        from: usize,
        /// Target of the offending edge.
        to: usize,
    },
    /// Parallel and sequential replay disagreed, or one of them failed.
    Divergence {
        /// The installed prefix.
        prefix: Vec<usize>,
        /// Worker threads used.
        threads: usize,
        /// Rendered reason.
        detail: String,
    },
}

impl fmt::Display for ScheduleCounterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleCounterexample::Illegal { prefix, detail } => {
                write!(f, "planned schedule for prefix {prefix:?} is illegal: {detail}")
            }
            ScheduleCounterexample::BackwardEdge { prefix, from, to } => write!(
                f,
                "conflict edge {from} -> {to} goes backward in the schedule for prefix {prefix:?}"
            ),
            ScheduleCounterexample::Divergence { prefix, threads, detail } => write!(
                f,
                "parallel ({threads} threads) and serial replay disagree on prefix {prefix:?}: {detail}"
            ),
        }
    }
}

fn set_to_vec(s: &NodeSet) -> Vec<usize> {
    s.iter().collect()
}

/// Checks one prefix: plans the schedule, validates it (twice — once
/// through the scheduler's own check, once independently), and compares
/// parallel against serial replay at each thread count.
fn check_prefix(
    history: &History,
    cg: &ConflictGraph,
    sg: &StateGraph,
    installed: &NodeSet,
    state: &State,
    threads: &[usize],
    report: &mut ScheduleReport,
) -> Result<(), ScheduleCounterexample> {
    let schedule = RedoSchedule::plan(cg, installed);
    if let Err(e) = schedule.validate(cg, installed) {
        return Err(ScheduleCounterexample::Illegal {
            prefix: set_to_vec(installed),
            detail: e.to_string(),
        });
    }
    // Independent legality walk: every conflict edge whose endpoints are
    // both uninstalled must go forward in the flattened order.
    let order = schedule.order();
    let mut pos = vec![usize::MAX; history.len()];
    for (i, id) in order.iter().enumerate() {
        pos[id.index()] = i;
    }
    for (u, v, _) in cg.dag().edges() {
        if !installed.contains(u) && !installed.contains(v) && pos[u] >= pos[v] {
            return Err(ScheduleCounterexample::BackwardEdge {
                prefix: set_to_vec(installed),
                from: u,
                to: v,
            });
        }
    }
    report.schedules_validated += 1;

    let serial = replay_uninstalled(history, sg, installed, state);
    for &t in threads {
        report.replays_compared += 1;
        let parallel = replay_parallel(history, cg, sg, installed, state, t);
        match (&serial, &parallel) {
            (Ok(a), Ok(b)) if a == b => {}
            (Ok(a), Ok(b)) => {
                return Err(ScheduleCounterexample::Divergence {
                    prefix: set_to_vec(installed),
                    threads: t,
                    detail: format!("serial {a:?} vs parallel {b:?}"),
                });
            }
            (Err(e), Ok(_)) => {
                return Err(ScheduleCounterexample::Divergence {
                    prefix: set_to_vec(installed),
                    threads: t,
                    detail: format!("serial failed ({e}) but parallel succeeded"),
                });
            }
            (Ok(_), Err(e)) => {
                return Err(ScheduleCounterexample::Divergence {
                    prefix: set_to_vec(installed),
                    threads: t,
                    detail: format!("parallel failed ({e}) but serial succeeded"),
                });
            }
            (Err(a), Err(b)) if a == b => {}
            (Err(a), Err(b)) => {
                return Err(ScheduleCounterexample::Divergence {
                    prefix: set_to_vec(installed),
                    threads: t,
                    detail: format!("different failures: serial {a}, parallel {b}"),
                });
            }
        }
    }
    Ok(())
}

/// Exhaustively checks scheduler legality and serial/parallel
/// equivalence on every installation-graph prefix of `history` (up to
/// `prefix_limit` prefixes), each at 1, 2, and 4 worker threads.
///
/// # Errors
///
/// The first [`ScheduleCounterexample`] found.
pub fn check_parallel_schedule(
    history: &History,
    prefix_limit: usize,
) -> Result<ScheduleReport, ScheduleCounterexample> {
    let n = history.len();
    assert!(
        n <= 16,
        "exhaustive checking is exponential; history too large ({n} ops)"
    );
    let s0 = State::zeroed();
    let cg = ConflictGraph::generate(history);
    let ig = InstallationGraph::from_conflict(&cg);
    let sg = StateGraph::from_conflict(history, &cg, &s0);
    let mut report = ScheduleReport {
        histories_checked: 1,
        ..ScheduleReport::default()
    };
    let mut failure: Option<ScheduleCounterexample> = None;
    ig.dag().for_each_prefix(prefix_limit, |prefix| {
        if failure.is_some() {
            return;
        }
        let state = sg.state_determined_by(prefix);
        if let Err(c) = check_prefix(history, &cg, &sg, prefix, &state, &[1, 2, 4], &mut report) {
            failure = Some(c);
        }
    });
    match failure {
        Some(c) => Err(c),
        None => Ok(report),
    }
}

/// Randomized large-history check: `cases` random histories (~48
/// operations, assorted conflict shapes), each with a pseudo-random
/// installation-graph prefix (the prefix closure of a random seed set),
/// compared serial-vs-parallel at 2 and 8 threads.
///
/// Deterministic in `seed`; the per-case derivation is a fixed mix so
/// failures reproduce exactly.
///
/// # Errors
///
/// The first [`ScheduleCounterexample`] found (the failing case index is
/// recoverable from the prefix recorded in the counterexample).
pub fn check_parallel_random(
    cases: usize,
    seed: u64,
) -> Result<ScheduleReport, ScheduleCounterexample> {
    let shapes = [
        Shape::Random,
        Shape::Blind,
        Shape::ReadModifyWrite,
        Shape::WriteReadHeavy,
        Shape::Chain,
    ];
    let mut report = ScheduleReport::default();
    for case in 0..cases {
        let spec = WorkloadSpec {
            n_ops: 48,
            n_vars: 12,
            max_reads: 2,
            max_writes: 2,
            blind_fraction: 0.3,
            skew: 0.0,
            shape: shapes[case % shapes.len()],
        };
        let history = spec.generate(seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut local = ScheduleReport {
            histories_checked: 1,
            ..ScheduleReport::default()
        };
        let s0 = State::zeroed();
        let cg = ConflictGraph::generate(&history);
        let ig = InstallationGraph::from_conflict(&cg);
        let sg = StateGraph::from_conflict(&history, &cg, &s0);
        // A deterministic pseudo-random seed set, closed downward into a
        // legal installation prefix.
        let n = history.len();
        let mut x = seed ^ 0xd1b5_4a32_d192_ed03 ^ (case as u64);
        let mut seeds = NodeSet::new(n);
        for i in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if x >> 33 & 1 == 1 {
                seeds.insert(i);
            }
        }
        let prefix = ig.dag().prefix_closure(&seeds);
        let state = sg.state_determined_by(&prefix);
        check_prefix(&history, &cg, &sg, &prefix, &state, &[2, 8], &mut local)?;
        report.absorb(&local);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use redo_theory::history::examples::{efg, figure4, hj, scenario1, scenario2, scenario3};

    #[test]
    fn paper_examples_schedule_clean() {
        for h in [
            scenario1(),
            scenario2(),
            scenario3(),
            figure4(),
            efg(),
            hj(),
        ] {
            let report = check_parallel_schedule(&h, 10_000)
                .unwrap_or_else(|c| panic!("counterexample on {h:?}: {c}"));
            assert!(report.schedules_validated > 0);
            assert!(report.replays_compared >= 3 * report.schedules_validated);
        }
    }

    #[test]
    fn exhaustive_small_workloads_schedule_clean() {
        for seed in 0..6 {
            let h = WorkloadSpec::tiny(5, 3).generate(seed);
            check_parallel_schedule(&h, 100_000)
                .unwrap_or_else(|c| panic!("seed {seed}: {c}\nhistory: {h:?}"));
        }
    }

    #[test]
    fn random_large_histories_serial_equals_parallel() {
        // The acceptance bar: 256 random large histories, serial ≡
        // parallel on every one.
        let report = check_parallel_random(256, 0xC0FF_EE00).unwrap_or_else(|c| panic!("{c}"));
        assert_eq!(report.histories_checked, 256);
        assert_eq!(report.replays_compared, 2 * 256);
    }
}
