//! Exhaustive flush-schedule exploration of the simulated database.
//!
//! The abstract checker ([`crate::theorems`]) covers every crash *state*;
//! this module covers every crash *schedule* of the real substrate: for
//! a tiny workload under a §6 recovery method, it enumerates, by DFS,
//! the choices a cache/log manager could make between operations (do
//! nothing, force the log, flush one page, flush everything), injects a
//! crash at every node of that tree, runs the method's recovery on a
//! clone, and verifies that the rebuilt state equals the durable
//! prefix's final state *and* that the realized redo set satisfied the
//! recovery invariant.
//!
//! This is the checker a recovery implementor would point at a new
//! logging discipline: it searches schedules for invariant violations
//! instead of sampling them.

use std::collections::BTreeSet;
use std::fmt;

use redo_methods::harness::HarnessFailure;
use redo_methods::RecoveryMethod;
use redo_sim::db::{Db, Geometry};
use redo_theory::conflict::ConflictGraph;
use redo_theory::graph::NodeSet;
use redo_theory::history::History;
use redo_theory::installation::InstallationGraph;
use redo_theory::invariant::recovery_invariant;
use redo_theory::log::{Log, Lsn};
use redo_theory::state::State;
use redo_theory::state_graph::StateGraph;
use redo_workload::pages::{PageId, PageOp};

/// One scheduler choice at an operation boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlushAction {
    /// Do nothing.
    None,
    /// Force the whole log.
    Log,
    /// Force the log, then flush one page (skipped silently if the
    /// flush is illegal — just as a real cache manager would defer it).
    LogAndPage(PageId),
    /// Force the log and flush every dirty page legally flushable.
    Everything,
}

/// What the exploration covered.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExploreReport {
    /// Schedule-tree nodes visited.
    pub nodes: usize,
    /// Crash+recover checks performed.
    pub crashes_checked: usize,
    /// Distinct stable states encountered at crash points.
    pub distinct_stable_states: usize,
}

/// A failed exploration: the schedule that broke, rendered.
#[derive(Clone, Debug)]
pub struct ExploreFailure {
    /// Actions taken before the failing crash, per boundary.
    pub schedule: Vec<FlushAction>,
    /// What went wrong.
    pub failure: HarnessFailure,
}

impl fmt::Display for ExploreFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule {:?} failed: {}", self.schedule, self.failure)
    }
}

struct Explorer<'a, M: RecoveryMethod> {
    method: &'a M,
    ops: &'a [PageOp],
    pages: Vec<PageId>,
    spp: u16,
    limit: usize,
    report: ExploreReport,
    stable_states: BTreeSet<Vec<(u32, u64)>>,
    schedule: Vec<FlushAction>,
}

impl<M: RecoveryMethod> Explorer<'_, M> {
    fn actions(&self) -> Vec<FlushAction> {
        let mut a = vec![FlushAction::None, FlushAction::Log, FlushAction::Everything];
        for &p in &self.pages {
            a.push(FlushAction::LogAndPage(p));
        }
        a
    }

    fn apply(&self, db: &mut Db<M::Payload>, action: FlushAction) {
        match action {
            FlushAction::None => {}
            FlushAction::Log => db.log.flush_all(),
            FlushAction::LogAndPage(p) => {
                db.log.flush_all();
                let stable = db.log.stable_lsn();
                let _ = db.pool.flush_page(&mut db.disk, p, stable);
            }
            FlushAction::Everything => {
                db.log.flush_all();
                let stable = db.log.stable_lsn();
                let _ = db.pool.flush_all(&mut db.disk, stable);
            }
        }
    }

    fn check_crash(
        &mut self,
        db: &Db<M::Payload>,
        executed: &[(PageOp, Lsn)],
    ) -> Result<(), HarnessFailure> {
        self.report.crashes_checked += 1;
        let mut crashed = db.clone();
        let stable = crashed.log.stable_lsn();
        let pre_disk = crashed.stable_theory_state();
        // Record state diversity.
        let key: Vec<(u32, u64)> = crashed
            .disk
            .pages()
            .into_iter()
            .map(|(id, p)| {
                (
                    id.0,
                    p.slots()
                        .iter()
                        .fold(0u64, |h, &s| h.wrapping_mul(31).wrapping_add(s)),
                )
            })
            .collect();
        if self.stable_states.insert(key) {
            self.report.distinct_stable_states += 1;
        }
        crashed.crash();
        let stats = self.method.recover(&mut crashed)?;
        let durable: Vec<PageOp> = executed
            .iter()
            .filter(|(_, lsn)| *lsn <= stable)
            .map(|(op, _)| op.clone())
            .collect();
        let history =
            History::renumbering(durable.iter().map(|op| op.to_operation(self.spp)).collect());
        let cg = ConflictGraph::generate(&history);
        let ig = InstallationGraph::from_conflict(&cg);
        let sg = StateGraph::from_conflict(&history, &cg, &State::zeroed());
        if crashed.volatile_theory_state() != sg.final_state() {
            return Err(HarnessFailure::StateMismatch {
                crash: Some(self.report.crashes_checked as u64),
            });
        }
        let log = Log::from_history(&history);
        let mut redo_set = NodeSet::new(history.len());
        for id in &stats.replayed {
            let pos = durable.iter().position(|op| op.id == *id).ok_or_else(|| {
                HarnessFailure::Invariant {
                    crash: self.report.crashes_checked as u64,
                    detail: format!("replayed non-durable op {id}"),
                }
            })?;
            redo_set.insert(pos);
        }
        recovery_invariant(&cg, &ig, &sg, &log, &redo_set, &pre_disk).map_err(|v| {
            HarnessFailure::Invariant {
                crash: self.report.crashes_checked as u64,
                detail: v.to_string(),
            }
        })?;
        Ok(())
    }

    fn dfs(
        &mut self,
        db: &Db<M::Payload>,
        executed: &[(PageOp, Lsn)],
        i: usize,
    ) -> Result<bool, ExploreFailure> {
        if self.report.nodes >= self.limit {
            return Ok(false); // budget exhausted, exploration truncated
        }
        self.report.nodes += 1;
        // Crash here, before any further action.
        if let Err(failure) = self.check_crash(db, executed) {
            return Err(ExploreFailure {
                schedule: self.schedule.clone(),
                failure,
            });
        }
        if i == self.ops.len() {
            return Ok(true);
        }
        let mut complete = true;
        for action in self.actions() {
            let mut next = db.clone();
            self.apply(&mut next, action);
            // Crash after the flush action as well (flushes themselves
            // are crash points).
            self.schedule.push(action);
            if let Err(failure) = self.check_crash(&next, executed) {
                return Err(ExploreFailure {
                    schedule: self.schedule.clone(),
                    failure,
                });
            }
            let mut executed = executed.to_vec();
            let lsn = self
                .method
                .execute(&mut next, &self.ops[i])
                .map_err(|e| ExploreFailure {
                    schedule: self.schedule.clone(),
                    failure: HarnessFailure::Sim(e),
                })?;
            executed.push((self.ops[i].clone(), lsn));
            complete &= self.dfs(&next, &executed, i + 1)?;
            self.schedule.pop();
        }
        Ok(complete)
    }
}

/// Explores every flush schedule of `ops` under `method`, crashing and
/// verifying at every node, visiting at most `node_limit` schedule
/// nodes. Returns the report and whether the exploration was complete
/// (`false` = truncated by the limit, still sound for what was visited).
///
/// # Errors
///
/// The first schedule found to violate recovery correctness or the
/// recovery invariant.
pub fn explore<M: RecoveryMethod>(
    method: &M,
    ops: &[PageOp],
    slots_per_page: u16,
    node_limit: usize,
) -> Result<(ExploreReport, bool), ExploreFailure> {
    let mut pages: Vec<PageId> = ops.iter().flat_map(|op| op.written_pages()).collect();
    pages.sort_unstable();
    pages.dedup();
    let mut explorer = Explorer {
        method,
        ops,
        pages,
        spp: slots_per_page,
        limit: node_limit,
        report: ExploreReport::default(),
        stable_states: BTreeSet::new(),
        schedule: Vec::new(),
    };
    let db: Db<M::Payload> = Db::new(Geometry { slots_per_page });
    let complete = explorer.dfs(&db, &[], 0)?;
    Ok((explorer.report, complete))
}

#[cfg(test)]
mod tests {
    use super::*;
    use redo_methods::generalized::Generalized;
    use redo_methods::physical::Physical;
    use redo_methods::physiological::Physiological;
    use redo_workload::pages::PageWorkloadSpec;

    fn tiny(blind: f64, cross: f64, seed: u64) -> Vec<PageOp> {
        PageWorkloadSpec {
            n_ops: 4,
            n_pages: 2,
            slots_per_page: 4,
            blind_fraction: blind,
            cross_page_fraction: cross,
            max_writes: 1,
            ..Default::default()
        }
        .generate(seed)
    }

    #[test]
    fn physical_schedules_all_pass() {
        for seed in 0..3 {
            let ops = tiny(1.0, 0.0, seed);
            let (report, complete) =
                explore(&Physical, &ops, 4, 50_000).unwrap_or_else(|e| panic!("{e}"));
            assert!(complete, "exploration truncated: {report:?}");
            assert!(report.crashes_checked > 100);
            assert!(report.distinct_stable_states > 1);
        }
    }

    #[test]
    fn physiological_schedules_all_pass() {
        for seed in 0..3 {
            let ops = tiny(0.0, 0.0, seed);
            let (report, complete) =
                explore(&Physiological, &ops, 4, 50_000).unwrap_or_else(|e| panic!("{e}"));
            assert!(complete, "exploration truncated: {report:?}");
            assert!(report.crashes_checked > 100);
        }
    }

    #[test]
    fn generalized_schedules_all_pass() {
        for seed in 0..3 {
            let ops = tiny(0.0, 0.8, seed);
            let (report, complete) =
                explore(&Generalized, &ops, 4, 80_000).unwrap_or_else(|e| panic!("{e}"));
            assert!(complete, "exploration truncated: {report:?}");
            assert!(report.crashes_checked > 100);
        }
    }

    #[test]
    fn generalized_multi_page_schedules_all_pass() {
        // §5's atomic multi-page installs under exhaustive scheduling:
        // no flush order may ever part-install a write set.
        for seed in 0..2 {
            let ops = PageWorkloadSpec {
                n_ops: 4,
                n_pages: 2,
                slots_per_page: 4,
                multi_page_fraction: 0.7,
                max_writes: 1,
                ..Default::default()
            }
            .generate(seed);
            let (report, complete) =
                explore(&Generalized, &ops, 4, 80_000).unwrap_or_else(|e| panic!("{e}"));
            assert!(complete, "exploration truncated: {report:?}");
        }
    }

    #[test]
    fn exploration_respects_node_limit() {
        let ops = tiny(1.0, 0.0, 0);
        let (report, complete) = explore(&Physical, &ops, 4, 50).unwrap();
        assert!(!complete);
        assert!(report.nodes <= 50);
    }
}
