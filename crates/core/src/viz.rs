//! Graphviz (DOT) rendering of the paper's graphs.
//!
//! Figures 4, 5, 7 and 8 of the paper are drawings of conflict,
//! installation, and write graphs. These helpers emit the same drawings
//! for *any* history: pipe the output through `dot -Tsvg` to regenerate
//! the figures, or to inspect a workload the checker complained about.
//!
//! Conventions:
//! * conflict edges are labeled with their kinds (`ww`, `wr`, `rw`);
//! * in the installation rendering, dropped pure write-read edges are
//!   drawn dotted (exactly the paper's Figure 5);
//! * write-graph nodes show their operation sets and surviving writes,
//!   with installed nodes shaded.

use std::fmt::Write as _;

use crate::conflict::ConflictGraph;
use crate::history::History;
use crate::installation::InstallationGraph;
use crate::write_graph::WriteGraph;

fn op_label(history: &History, idx: usize) -> String {
    let op = history.op(crate::op::OpId(idx as u32));
    format!("{op:?}").replace('"', "'")
}

/// Renders a conflict graph in DOT.
#[must_use]
pub fn conflict_dot(history: &History, cg: &ConflictGraph) -> String {
    let mut out = String::from("digraph conflict {\n  rankdir=LR;\n  node [shape=box];\n");
    for i in 0..cg.len() {
        let _ = writeln!(out, "  n{i} [label=\"{}\"];", op_label(history, i));
    }
    for (u, v, kinds) in cg.dag().edges() {
        let _ = writeln!(out, "  n{u} -> n{v} [label=\"{kinds:?}\"];");
    }
    out.push_str("}\n");
    out
}

/// Renders an installation graph in DOT, with the removed write-read
/// edges dotted (Figure 5's convention).
#[must_use]
pub fn installation_dot(history: &History, ig: &InstallationGraph) -> String {
    let mut out = String::from("digraph installation {\n  rankdir=LR;\n  node [shape=box];\n");
    for i in 0..ig.len() {
        let _ = writeln!(out, "  n{i} [label=\"{}\"];", op_label(history, i));
    }
    for (u, v, kinds) in ig.dag().edges() {
        let _ = writeln!(out, "  n{u} -> n{v} [label=\"{kinds:?}\"];");
    }
    for (u, v) in ig.removed_edges() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [style=dotted, label=\"wr (removed)\"];",
            u.index(),
            v.index()
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a write graph in DOT: operation sets and surviving writes per
/// node, installed nodes shaded (Figures 7 and 8).
#[must_use]
pub fn write_graph_dot(wg: &WriteGraph) -> String {
    let mut out = String::from("digraph write_graph {\n  rankdir=LR;\n  node [shape=record];\n");
    for n in wg.live_nodes() {
        let ops: Vec<String> = wg
            .ops_of(n)
            .expect("live node")
            .map(|o| format!("{o:?}"))
            .collect();
        let writes: Vec<String> = wg
            .writes_of(n)
            .expect("live node")
            .into_iter()
            .map(|(x, v)| format!("{x:?}={v:?}"))
            .collect();
        let installed = wg.is_installed(n).expect("live node");
        let _ = writeln!(
            out,
            "  n{} [label=\"{{{} | {}}}\"{}];",
            n.0,
            ops.join(", "),
            if writes.is_empty() {
                "(no writes)".to_string()
            } else {
                writes.join(", ")
            },
            if installed {
                ", style=filled, fillcolor=lightgray"
            } else {
                ""
            }
        );
    }
    for n in wg.live_nodes() {
        for m in wg.successors_of(n).expect("live node") {
            let _ = writeln!(out, "  n{} -> n{};", n.0, m.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::examples::figure4;
    use crate::state::State;
    use crate::state_graph::StateGraph;
    use crate::write_graph::WgNodeId;

    fn setup() -> (History, ConflictGraph, InstallationGraph, StateGraph) {
        let h = figure4();
        let cg = ConflictGraph::generate(&h);
        let ig = InstallationGraph::from_conflict(&cg);
        let sg = StateGraph::from_conflict(&h, &cg, &State::zeroed());
        (h, cg, ig, sg)
    }

    #[test]
    fn conflict_dot_mentions_every_edge() {
        let (h, cg, _, _) = setup();
        let dot = conflict_dot(&h, &cg);
        assert!(dot.starts_with("digraph conflict {"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n0 -> n2"));
        assert!(dot.contains("n1 -> n2"));
        assert!(dot.contains("rw"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn installation_dot_dots_the_removed_edge() {
        let (h, cg, ig, _) = setup();
        let dot = installation_dot(&h, &ig);
        assert!(dot.contains("style=dotted"));
        assert!(dot.contains("wr (removed)"));
        let _ = cg;
    }

    #[test]
    fn write_graph_dot_shades_installed_nodes() {
        let (h, cg, ig, sg) = setup();
        let mut wg = WriteGraph::from_installation_graph(&h, &cg, &ig, &sg);
        wg.install(WgNodeId(1)).unwrap();
        let dot = write_graph_dot(&wg);
        assert!(dot.contains("fillcolor=lightgray"));
        assert!(dot.matches("->").count() >= 2);
    }

    #[test]
    fn figure7_rendering_shows_the_collapsed_node() {
        let (h, cg, ig, sg) = setup();
        let mut wg = WriteGraph::from_installation_graph(&h, &cg, &ig, &sg);
        let merged = wg.collapse(&[WgNodeId(0), WgNodeId(2)]).unwrap();
        let dot = write_graph_dot(&wg);
        assert!(dot.contains(&format!("n{}", merged.0)));
        assert!(dot.contains("op0, op2"));
    }
}
