//! Replaying operations and the Potential Recoverability Theorem (§3.3–3.4).
//!
//! An operation is *applicable* to a state if its read set holds the same
//! values it read in the original execution (equivalently, in the state
//! determined by its conflict-graph predecessors), so replaying it writes
//! the same values it originally wrote. Theorem 3: a state explained by
//! an installation-graph prefix σ is *potentially recoverable* — replaying
//! the operations outside σ in any conflict-graph-consistent order
//! reaches the final state, with every operation applicable when its turn
//! comes.

use crate::conflict::ConflictGraph;
use crate::error::{CoverageFault, Error, Result};
use crate::graph::NodeSet;
use crate::history::History;
use crate::op::{OpId, Operation};
use crate::state::State;
use crate::state_graph::StateGraph;

/// Is `op` applicable to `state`: does every variable in its read set
/// hold the value the operation read in the original execution?
#[must_use]
pub fn is_applicable(sg: &StateGraph, op: &Operation, state: &State) -> bool {
    sg.read_values_of(op.id())
        .iter()
        .all(|(&x, &v)| state.get(x) == v)
}

/// As [`is_applicable`], reporting the first mismatching read.
pub fn check_applicable(sg: &StateGraph, op: &Operation, state: &State) -> Result<()> {
    for (&x, &v) in sg.read_values_of(op.id()) {
        if state.get(x) != v {
            return Err(Error::NotApplicable {
                op: op.id(),
                var: x,
            });
        }
    }
    Ok(())
}

/// Replays the operations *outside* `installed` against `state`, in
/// invocation order (a linear extension of the conflict graph), verifying
/// applicability before each step as Theorem 3's proof does.
///
/// # Errors
///
/// [`Error::NotApplicable`] if some replayed operation would read a value
/// differing from the original execution — the signature of an
/// unexplainable starting state.
pub fn replay_uninstalled(
    history: &History,
    sg: &StateGraph,
    installed: &NodeSet,
    state: &State,
) -> Result<State> {
    let mut cur = state.clone();
    for op in history.iter() {
        if !installed.contains(op.id().index()) {
            check_applicable(sg, op, &cur)?;
            op.apply(&mut cur);
        }
    }
    Ok(cur)
}

/// Replays a subset of operations in invocation order *without*
/// applicability checks: each operation simply recomputes its writes from
/// whatever the current state holds. This is what an (incorrect) recovery
/// would actually do; the checker uses it to demonstrate divergence.
#[must_use]
pub fn replay_blind(history: &History, subset: &NodeSet, state: &State) -> State {
    let mut cur = state.clone();
    for op in history.iter() {
        if subset.contains(op.id().index()) {
            op.apply(&mut cur);
        }
    }
    cur
}

/// Theorem 3's conclusion, decided operationally: starting from `state`
/// with `installed` considered installed, does replaying the remaining
/// operations in conflict order reproduce the final state (with every
/// step applicable)?
#[must_use]
pub fn potentially_recoverable(
    history: &History,
    _cg: &ConflictGraph,
    sg: &StateGraph,
    installed: &NodeSet,
    state: &State,
) -> bool {
    match replay_uninstalled(history, sg, installed, state) {
        Ok(s) => s == sg.final_state(),
        Err(_) => false,
    }
}

/// The paper's *definition* of potential recoverability quantifies over
/// *some* subset replayed in conflict-graph order: searches all `2^n`
/// subsets (blind replay, invocation order) for one whose replay yields
/// the final state. Exponential — checker-sized histories only.
#[must_use]
pub fn exists_recovery_subset(
    history: &History,
    sg: &StateGraph,
    state: &State,
) -> Option<NodeSet> {
    let n = history.len();
    assert!(
        n <= 20,
        "exists_recovery_subset is exponential; got {n} operations"
    );
    let target = sg.final_state();
    for mask in 0..(1u64 << n) {
        let subset = NodeSet::from_indices(n, (0..n).filter(|i| mask >> i & 1 == 1));
        if replay_blind(history, &subset, state) == target {
            return Some(subset);
        }
    }
    None
}

/// Replays uninstalled operations along an explicit order, verifying both
/// that the order is a linear extension of the conflict graph restricted
/// to the uninstalled set and that each step is applicable. Exercises the
/// "any order consistent with the conflict graph" half of Theorem 3.
pub fn replay_uninstalled_in_order(
    history: &History,
    cg: &ConflictGraph,
    sg: &StateGraph,
    installed: &NodeSet,
    order: &[OpId],
    state: &State,
) -> Result<State> {
    // Order must cover exactly the uninstalled set.
    let mut seen = NodeSet::new(history.len());
    for &id in order {
        if history.get(id).is_none() {
            return Err(Error::NoSuchOp(id));
        }
        if installed.contains(id.index()) {
            return Err(Error::OrderCoverageMismatch {
                op: id,
                fault: CoverageFault::Installed,
            });
        }
        if !seen.insert(id.index()) {
            return Err(Error::OrderCoverageMismatch {
                op: id,
                fault: CoverageFault::Duplicated,
            });
        }
    }
    let expected = installed.complement();
    if let Some(missing) = expected.iter().find(|&i| !seen.contains(i)) {
        return Err(Error::OrderCoverageMismatch {
            op: OpId(missing as u32),
            fault: CoverageFault::Missing,
        });
    }
    // Every conflict edge between two uninstalled ops must go forward.
    let mut pos = vec![usize::MAX; history.len()];
    for (i, id) in order.iter().enumerate() {
        pos[id.index()] = i;
    }
    for (u, v, _) in cg.dag().edges() {
        if pos[u] != usize::MAX && pos[v] != usize::MAX && pos[u] > pos[v] {
            return Err(Error::LogOrderViolation {
                before: OpId(u as u32),
                after: OpId(v as u32),
            });
        }
    }
    let mut cur = state.clone();
    for &id in order {
        let op = history.op(id);
        check_applicable(sg, op, &cur)?;
        op.apply(&mut cur);
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::explains;
    use crate::history::examples::{efg, figure4, hj, scenario1, scenario2, scenario3};
    use crate::installation::InstallationGraph;
    use crate::state::{Value, Var};

    fn setup(h: &History) -> (ConflictGraph, InstallationGraph, StateGraph) {
        let cg = ConflictGraph::generate(h);
        let ig = InstallationGraph::from_conflict(&cg);
        let sg = StateGraph::from_conflict(h, &cg, &State::zeroed());
        (cg, ig, sg)
    }

    #[test]
    fn theorem3_on_all_examples() {
        // Every state determined by an installation prefix is potentially
        // recoverable via strict replay.
        for h in [
            scenario1(),
            scenario2(),
            scenario3(),
            figure4(),
            efg(),
            hj(),
        ] {
            let (cg, ig, sg) = setup(&h);
            ig.dag()
                .for_each_prefix(1_000, |p| {
                    let s = sg.state_determined_by(p);
                    assert!(
                        potentially_recoverable(&h, &cg, &sg, p, &s),
                        "history {h:?} prefix {p:?}"
                    );
                })
                .unwrap();
        }
    }

    #[test]
    fn theorem3_with_unexposed_garbage() {
        // Explainable states with garbage in unexposed variables are
        // still recoverable.
        let h = scenario3();
        let (cg, _ig, sg) = setup(&h);
        let installed = NodeSet::from_indices(2, [0]);
        let state = State::from_pairs([(Var(0), Value(123_456)), (Var(1), Value(1))]);
        assert!(explains(&cg, &sg, &installed, &state));
        assert!(potentially_recoverable(&h, &cg, &sg, &installed, &state));
    }

    #[test]
    fn scenario1_out_of_order_install_is_unrecoverable() {
        // The paper's opening example: B's update installed, A's not.
        // No subset of {A, B} replays to the final state.
        let h = scenario1();
        let (_cg, _ig, sg) = setup(&h);
        let bad = State::from_pairs([(Var(1), Value(2))]); // y=2, x=0
        assert!(exists_recovery_subset(&h, &sg, &bad).is_none());
    }

    #[test]
    fn scenario2_recovered_by_replaying_b() {
        let h = scenario2();
        let (cg, _ig, sg) = setup(&h);
        let state = State::from_pairs([(Var(0), Value(3))]); // A installed
        let installed = NodeSet::from_indices(2, [1]);
        assert!(potentially_recoverable(&h, &cg, &sg, &installed, &state));
        // And the minimal recovery subset is exactly {B}.
        let subset = exists_recovery_subset(&h, &sg, &state).unwrap();
        assert_eq!(subset, NodeSet::from_indices(2, [0]));
    }

    #[test]
    fn minimal_uninstalled_op_is_applicable() {
        // §3.3's example: after prefix {P} (installation graph of Fig 5),
        // the minimal uninstalled op O sees x=0 exactly as in the
        // original execution.
        let h = figure4();
        let (_cg, _ig, sg) = setup(&h);
        let p_only = NodeSet::from_indices(3, [1]);
        let state = sg.state_determined_by(&p_only);
        assert!(is_applicable(&sg, h.op(OpId(0)), &state));
    }

    #[test]
    fn inapplicable_replay_detected() {
        let h = scenario1();
        let (_cg, _ig, sg) = setup(&h);
        // y already 2 but A uninstalled: A would read y=2, not the 0 it
        // originally read.
        let bad = State::from_pairs([(Var(1), Value(2))]);
        let err = replay_uninstalled(&h, &sg, &NodeSet::new(2), &bad).unwrap_err();
        assert_eq!(
            err,
            Error::NotApplicable {
                op: OpId(0),
                var: Var(1)
            }
        );
    }

    #[test]
    fn replay_in_explicit_orders() {
        // hj: H -> J ordered. Replaying uninstalled {H, J} in order
        // [J, H] must be rejected (violates conflict order), [H, J]
        // accepted.
        let h = hj();
        let (cg, _ig, sg) = setup(&h);
        let none = NodeSet::new(2);
        let s0 = State::zeroed();
        let ok = replay_uninstalled_in_order(&h, &cg, &sg, &none, &[OpId(0), OpId(1)], &s0);
        assert_eq!(ok.unwrap(), sg.final_state());
        let err = replay_uninstalled_in_order(&h, &cg, &sg, &none, &[OpId(1), OpId(0)], &s0);
        assert!(err.is_err());
    }

    #[test]
    fn replay_order_must_cover_uninstalled_exactly() {
        use crate::error::CoverageFault;
        let h = hj();
        let (cg, _ig, sg) = setup(&h);
        let none = NodeSet::new(2);
        let s0 = State::zeroed();
        // Missing op: reported as such, not as a bogus NoSuchOp(OpId(0)).
        assert_eq!(
            replay_uninstalled_in_order(&h, &cg, &sg, &none, &[OpId(0)], &s0).unwrap_err(),
            Error::OrderCoverageMismatch {
                op: OpId(1),
                fault: CoverageFault::Missing
            }
        );
        assert_eq!(
            replay_uninstalled_in_order(&h, &cg, &sg, &none, &[OpId(0), OpId(0)], &s0).unwrap_err(),
            Error::OrderCoverageMismatch {
                op: OpId(0),
                fault: CoverageFault::Duplicated
            }
        );
        // Replaying an installed op is a coverage fault too.
        let h_installed = NodeSet::from_indices(2, [0]);
        assert_eq!(
            replay_uninstalled_in_order(&h, &cg, &sg, &h_installed, &[OpId(0), OpId(1)], &s0)
                .unwrap_err(),
            Error::OrderCoverageMismatch {
                op: OpId(0),
                fault: CoverageFault::Installed
            }
        );
        // A genuinely unknown id still reports NoSuchOp.
        assert_eq!(
            replay_uninstalled_in_order(&h, &cg, &sg, &none, &[OpId(7), OpId(1)], &s0).unwrap_err(),
            Error::NoSuchOp(OpId(7))
        );
    }

    #[test]
    fn blind_replay_diverges_on_bad_state() {
        // Replaying everything blindly from the Scenario 1 bad state
        // computes x = y+1 = 3 ≠ 1: recovery silently produces a state
        // that never existed.
        let h = scenario1();
        let (_cg, _ig, sg) = setup(&h);
        let bad = State::from_pairs([(Var(1), Value(2))]);
        let s = replay_blind(&h, &NodeSet::full(2), &bad);
        assert_eq!(s.get(Var(0)), Value(3));
        assert_ne!(s, sg.final_state());
    }

    #[test]
    fn exists_recovery_subset_finds_empty_for_final_state() {
        let h = figure4();
        let (_cg, _ig, sg) = setup(&h);
        let subset = exists_recovery_subset(&h, &sg, &sg.final_state()).unwrap();
        assert!(subset.is_empty());
    }
}
