//! Exposed variables (§2.3).
//!
//! Given a conflict graph and a set `I` of installed operations (with
//! complement `U` of uninstalled operations), a variable `x` is *exposed*
//! by `I` if
//!
//! * no operation in `U` accesses `x` (its current value is final), or
//! * some operation in `U` accesses `x` and a minimal such operation
//!   *reads* `x` (its current value will be observed during recovery);
//!
//! and *unexposed* otherwise — i.e. when the minimal uninstalled accessor
//! writes `x` without reading it, so the current value will be
//! overwritten before anyone looks.
//!
//! Two implementations are provided. [`is_exposed_by_graph`] follows the
//! definition literally, computing minimality among uninstalled accessors
//! via reachability. [`is_exposed`] is an O(accessor-chain) fast path
//! exploiting the structure of sequence-generated conflict graphs: all
//! conflict edges point forward in generation order, so the
//! generation-earliest uninstalled accessor is always minimal, and when
//! several accessors are minimal they are all readers (two accessors of
//! which at least one writes are always ordered). A property test in the
//! crate's test suite asserts the two agree on random histories.

use crate::conflict::ConflictGraph;
use crate::graph::NodeSet;
use crate::state::Var;

/// Fast-path exposure test: is `x` exposed by the installed set?
#[must_use]
pub fn is_exposed(cg: &ConflictGraph, installed: &NodeSet, x: Var) -> bool {
    match cg
        .accessors_of(x)
        .iter()
        .find(|a| !installed.contains(a.op.index()))
    {
        None => true,
        Some(first_uninstalled) => first_uninstalled.reads,
    }
}

/// Literal-definition exposure test, via minimality in the conflict DAG.
#[must_use]
pub fn is_exposed_by_graph(cg: &ConflictGraph, installed: &NodeSet, x: Var) -> bool {
    let uninstalled_accessors: NodeSet = NodeSet::from_indices(
        cg.len(),
        cg.accessors_of(x)
            .iter()
            .filter(|a| !installed.contains(a.op.index()))
            .map(|a| a.op.index()),
    );
    if uninstalled_accessors.is_empty() {
        return true;
    }
    let minimal = cg.dag().minimal_in(&uninstalled_accessors);
    // All minimal accessors agree on reading vs blind-writing (any
    // reader and any writer of x are ordered), so inspecting one
    // suffices; we inspect all for robustness.
    minimal.iter().any(|&m| {
        cg.accessors_of(x)
            .iter()
            .any(|a| a.op.index() == m && a.reads)
    })
}

/// All variables exposed by `installed`, in ascending order.
#[must_use]
pub fn exposed_vars(cg: &ConflictGraph, installed: &NodeSet) -> Vec<Var> {
    cg.vars()
        .filter(|&x| is_exposed(cg, installed, x))
        .collect()
}

/// All variables left *unexposed* by `installed`.
#[must_use]
pub fn unexposed_vars(cg: &ConflictGraph, installed: &NodeSet) -> Vec<Var> {
    cg.vars()
        .filter(|&x| !is_exposed(cg, installed, x))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::examples::{figure4, hj, scenario1, scenario2, scenario3};
    use crate::history::History;

    fn installed(n: usize, ids: impl IntoIterator<Item = usize>) -> NodeSet {
        NodeSet::from_indices(n, ids)
    }

    #[test]
    fn everything_exposed_when_all_installed() {
        let h = figure4();
        let cg = ConflictGraph::generate(&h);
        let all = NodeSet::full(h.len());
        assert!(is_exposed(&cg, &all, Var(0)));
        assert!(is_exposed(&cg, &all, Var(1)));
    }

    #[test]
    fn untouched_variable_is_exposed() {
        let h = scenario1();
        let cg = ConflictGraph::generate(&h);
        let none = installed(2, []);
        assert!(is_exposed(&cg, &none, Var(99)));
    }

    #[test]
    fn scenario3_y_exposed_x_unexposed_after_c() {
        // C installed? No: install NOTHING. U = {C, D}. Minimal accessor
        // of x is C, which reads x -> exposed. Minimal accessor of y is
        // C, which reads y -> exposed.
        let h = scenario3();
        let cg = ConflictGraph::generate(&h);
        let none = installed(2, []);
        assert!(is_exposed(&cg, &none, Var(0)));
        assert!(is_exposed(&cg, &none, Var(1)));
        // Install C: U = {D}. D reads y -> y exposed. D writes x without
        // reading it -> x unexposed. This is the paper's Scenario 3: C's
        // change to x need never reach the stable state.
        let c_only = installed(2, [0]);
        assert!(!is_exposed(&cg, &c_only, Var(0)));
        assert!(is_exposed(&cg, &c_only, Var(1)));
    }

    #[test]
    fn hj_blind_write_hides_y() {
        // H writes x and y; J blindly writes y. With I = {H}, U = {J}:
        // y's minimal uninstalled accessor J writes blindly -> unexposed.
        let h = hj();
        let cg = ConflictGraph::generate(&h);
        let h_only = installed(2, [0]);
        assert!(!is_exposed(&cg, &h_only, Var(1)));
        assert!(is_exposed(&cg, &h_only, Var(0)));
        assert_eq!(unexposed_vars(&cg, &h_only), vec![Var(1)]);
    }

    #[test]
    fn scenario1_y_unexposed_before_b() {
        // I = {A}, U = {B}: B blindly writes y -> y unexposed; x is not
        // accessed by U -> exposed.
        let h = scenario1();
        let cg = ConflictGraph::generate(&h);
        let a_only = installed(2, [0]);
        assert!(is_exposed(&cg, &a_only, Var(0)));
        assert!(!is_exposed(&cg, &a_only, Var(1)));
    }

    #[test]
    fn scenario2_y_exposed_before_a() {
        // I = {B}, U = {A}: A reads y -> y exposed; A blind-writes x? A
        // writes x without reading x -> x unexposed.
        let h = scenario2();
        let cg = ConflictGraph::generate(&h);
        let b_only = installed(2, [0]);
        assert!(is_exposed(&cg, &b_only, Var(1)));
        assert!(!is_exposed(&cg, &b_only, Var(0)));
    }

    #[test]
    fn graph_and_fast_paths_agree_on_examples() {
        for h in [scenario1(), scenario2(), scenario3(), figure4(), hj()] {
            let cg = ConflictGraph::generate(&h);
            let n = h.len();
            // All subsets of ops (not only prefixes: the definition is
            // stated for arbitrary sets I).
            for mask in 0..(1usize << n) {
                let set = NodeSet::from_indices(n, (0..n).filter(|i| mask >> i & 1 == 1));
                for x in cg.vars().collect::<Vec<_>>() {
                    assert_eq!(
                        is_exposed(&cg, &set, x),
                        is_exposed_by_graph(&cg, &set, x),
                        "history {h:?}, installed {set:?}, var {x:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn monotonicity_once_unexposed_under_growing_graph() {
        // §2.3: if the conflict graph grows (more ops appended) and the
        // installed set does not, an unexposed variable stays unexposed.
        use crate::expr::Expr;
        use crate::op::{OpId, Operation};
        let blind = |i: u32, x: Var| {
            Operation::builder(OpId(i))
                .assign(x, Expr::constant(u64::from(i)))
                .build()
                .unwrap()
        };
        let reader = |i: u32, x: Var, y: Var| {
            Operation::builder(OpId(i))
                .assign(y, Expr::read(x))
                .build()
                .unwrap()
        };
        // Grow: [blind(x)], then append a reader of x.
        let h1 = History::new(vec![blind(0, Var(0))]).unwrap();
        let h2 = History::new(vec![blind(0, Var(0)), reader(1, Var(0), Var(1))]).unwrap();
        let i = installed(2, []);
        let i1 = installed(1, []);
        let cg1 = ConflictGraph::generate(&h1);
        let cg2 = ConflictGraph::generate(&h2);
        // x unexposed in the small graph (blind write pending)...
        assert!(!is_exposed(&cg1, &i1, Var(0)));
        // ...and still unexposed after the graph grows: the minimal
        // uninstalled accessor is still the blind writer.
        assert!(!is_exposed(&cg2, &i, Var(0)));
    }

    #[test]
    fn exposure_flips_as_installed_set_grows() {
        // §2.3: growing I can flip a variable back and forth.
        let h = scenario3();
        let cg = ConflictGraph::generate(&h);
        assert!(is_exposed(&cg, &installed(2, []), Var(0))); // exposed
        assert!(!is_exposed(&cg, &installed(2, [0]), Var(0))); // unexposed
        assert!(is_exposed(&cg, &installed(2, [0, 1]), Var(0))); // exposed again
    }
}
