//! Write graphs (§5).
//!
//! Real systems do not install operations one at a time: a page flushed
//! from the cache carries the accumulated changes of many operations. The
//! *write graph* models this. It is a state graph, derived from the
//! installation state graph, whose nodes carry an `installed` flag, and
//! which evolves by four operations:
//!
//! * **Install a node** — mark a node installed; every predecessor must
//!   already be installed.
//! * **Add an edge** — constrain the install order further; the target
//!   must be uninstalled and the graph must stay acyclic.
//! * **Collapse nodes** — replace a set of nodes by one node (how caches
//!   keep a single copy of a page, and how flushing merges a cache node
//!   into the stable-state node); the result must stay acyclic, merged
//!   writes keep the later writer's value, and the merged node is
//!   installed iff any member was.
//! * **Remove a write** — drop a variable-value pair from a node,
//!   exploiting unexposed variables to shrink atomic write sets; legal
//!   only when no uninstalled operation can ever observe the missing
//!   value.
//!
//! Respecting these rules keeps the state determined by the installed
//! prefix explainable, hence potentially recoverable (Corollary 5).
//!
//! ## The *remove a write* side condition, operationally
//!
//! The paper states: remove `⟨x, v⟩` from `writes(n)` only if for every
//! node `m` reading `x`, either `m` is installed, or `m` is ordered
//! before `n` and a node following `n` writes `x` without reading it.
//! We implement the operation-level reading of this rule:
//!
//! 1. some live node strictly following `n` must *blindly* write `x`
//!    (its earliest access to `x` is a write that does not read `x`), so
//!    `x` is unexposed once `n` installs and the final value of `x` still
//!    arrives later; and
//! 2. every operation reading `x` outside `ops(n)` must sit in an
//!    installed node or in a node ordered before `n` (so it is installed
//!    before `n` and never replayed once the missing value matters).
//!
//! Reads *inside* `ops(n)` are exempt: they are installed atomically with
//! `n`, and while `n` is uninstalled, replay recomputes them from an
//! explainable state. This matches both of the paper's §5 examples,
//! including the parenthetical about *Add an edge* creating the required
//! `m`-before-`n` ordering.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::conflict::ConflictGraph;
use crate::error::{Error, Result};
use crate::graph::NodeSet;
use crate::history::History;
use crate::installation::InstallationGraph;
use crate::op::OpId;
use crate::state::{State, Value, Var};
use crate::state_graph::StateGraph;

/// Identifier of a write-graph node. Collapsing allocates fresh ids;
/// collapsed-away ids become stale and are rejected by subsequent
/// operations.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WgNodeId(pub usize);

impl fmt::Debug for WgNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
struct WgNode {
    ops: BTreeSet<OpId>,
    /// Winning write per variable: value and the operation that produced
    /// it (the producer orders merged writes and drives the blind-write
    /// test).
    writes: BTreeMap<Var, (Value, OpId)>,
    installed: bool,
}

/// A write graph derived from an installation state graph.
#[derive(Clone, PartialEq, Eq)]
pub struct WriteGraph {
    nodes: Vec<Option<WgNode>>,
    succ: Vec<BTreeSet<usize>>,
    pred: Vec<BTreeSet<usize>>,
    /// Current node holding each operation.
    op_node: Vec<usize>,
    cg: ConflictGraph,
    sg: StateGraph,
}

impl WriteGraph {
    /// The simplest write graph: one node per installation-graph node,
    /// labeled with the variable-value pairs its operation wrote, all
    /// uninstalled.
    #[must_use]
    pub fn from_installation_graph(
        history: &History,
        cg: &ConflictGraph,
        ig: &InstallationGraph,
        sg: &StateGraph,
    ) -> WriteGraph {
        let n = history.len();
        let mut nodes = Vec::with_capacity(n);
        for op in history.iter() {
            let writes = sg
                .writes_of(op.id())
                .iter()
                .map(|(&x, &v)| (x, (v, op.id())))
                .collect();
            nodes.push(Some(WgNode {
                ops: BTreeSet::from([op.id()]),
                writes,
                installed: false,
            }));
        }
        let mut succ = vec![BTreeSet::new(); n];
        let mut pred = vec![BTreeSet::new(); n];
        for (u, v, _) in ig.dag().edges() {
            succ[u].insert(v);
            pred[v].insert(u);
        }
        WriteGraph {
            nodes,
            succ,
            pred,
            op_node: (0..n).collect(),
            cg: cg.clone(),
            sg: sg.clone(),
        }
    }

    fn live(&self, n: WgNodeId) -> Result<&WgNode> {
        self.nodes
            .get(n.0)
            .and_then(Option::as_ref)
            .ok_or(Error::StaleNode(n.0))
    }

    /// Live node ids.
    pub fn live_nodes(&self) -> impl Iterator<Item = WgNodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_some())
            .map(|(i, _)| WgNodeId(i))
    }

    /// Number of live nodes.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// The node currently holding operation `op`.
    #[must_use]
    pub fn node_of_op(&self, op: OpId) -> WgNodeId {
        WgNodeId(self.op_node[op.index()])
    }

    /// The operations of a node.
    pub fn ops_of(&self, n: WgNodeId) -> Result<impl Iterator<Item = OpId> + '_> {
        Ok(self.live(n)?.ops.iter().copied())
    }

    /// The winning writes of a node, as `(var, value)` pairs.
    pub fn writes_of(&self, n: WgNodeId) -> Result<Vec<(Var, Value)>> {
        Ok(self
            .live(n)?
            .writes
            .iter()
            .map(|(&x, &(v, _))| (x, v))
            .collect())
    }

    /// Is the node installed?
    pub fn is_installed(&self, n: WgNodeId) -> Result<bool> {
        Ok(self.live(n)?.installed)
    }

    /// Direct successors of a live node.
    pub fn successors_of(&self, n: WgNodeId) -> Result<Vec<WgNodeId>> {
        self.live(n)?;
        Ok(self.succ[n.0].iter().map(|&i| WgNodeId(i)).collect())
    }

    /// Direct predecessors of a live node.
    pub fn predecessors_of(&self, n: WgNodeId) -> Result<Vec<WgNodeId>> {
        self.live(n)?;
        Ok(self.pred[n.0].iter().map(|&i| WgNodeId(i)).collect())
    }

    /// Is there a path (length ≥ 1) from `a` to `b` among live nodes?
    #[must_use]
    pub fn reaches(&self, a: WgNodeId, b: WgNodeId) -> bool {
        if a == b {
            return false;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![a.0];
        while let Some(x) = stack.pop() {
            for &y in &self.succ[x] {
                if y == b.0 {
                    return true;
                }
                if !seen[y] {
                    seen[y] = true;
                    stack.push(y);
                }
            }
        }
        false
    }

    /// **Install a node**: set its `installed` flag; every predecessor
    /// must already be installed.
    ///
    /// # Errors
    ///
    /// [`Error::StaleNode`], [`Error::AlreadyInstalled`], or
    /// [`Error::PredecessorNotInstalled`].
    pub fn install(&mut self, n: WgNodeId) -> Result<()> {
        let node = self.live(n)?;
        if node.installed {
            return Err(Error::AlreadyInstalled(n.0));
        }
        for &p in &self.pred[n.0] {
            let pn = self.nodes[p].as_ref().expect("edges only join live nodes");
            if !pn.installed {
                return Err(Error::PredecessorNotInstalled {
                    node: n.0,
                    predecessor: p,
                });
            }
        }
        self.nodes[n.0].as_mut().expect("checked live").installed = true;
        Ok(())
    }

    /// **Add an edge** `u → v`: the target must be uninstalled and the
    /// graph must remain acyclic.
    ///
    /// # Errors
    ///
    /// [`Error::StaleNode`], [`Error::SelfEdge`],
    /// [`Error::EdgeToInstalledNode`], or [`Error::WouldCreateCycle`].
    pub fn add_edge(&mut self, u: WgNodeId, v: WgNodeId) -> Result<()> {
        self.live(u)?;
        let vn = self.live(v)?;
        if u == v {
            return Err(Error::SelfEdge(u.0));
        }
        if vn.installed {
            return Err(Error::EdgeToInstalledNode(v.0));
        }
        if self.reaches(v, u) {
            return Err(Error::WouldCreateCycle);
        }
        self.succ[u.0].insert(v.0);
        self.pred[v.0].insert(u.0);
        Ok(())
    }

    /// **Collapse nodes**: replace `members` with a single fresh node.
    ///
    /// Merged writes keep, per variable, the value from the member
    /// ordered last in the old graph (ties broken by the producing
    /// operation's position in the per-variable writer chain, which is
    /// the old installation-state-graph order). The new node is installed
    /// iff any member was; edges are rewired to the new node. The
    /// resulting graph must be acyclic and the installed nodes must still
    /// form a prefix.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyCollapse`], [`Error::StaleNode`],
    /// [`Error::WouldCreateCycle`], or
    /// [`Error::PredecessorNotInstalled`] when the merge would break the
    /// installed-prefix property.
    pub fn collapse(&mut self, members: &[WgNodeId]) -> Result<WgNodeId> {
        if members.is_empty() {
            return Err(Error::EmptyCollapse);
        }
        let mut set = BTreeSet::new();
        for &m in members {
            self.live(m)?;
            set.insert(m.0);
        }
        // Validate BEFORE mutating (no scratch copy needed).
        //
        // Acyclicity of the quotient: contracting `set` creates a cycle
        // exactly when some path connects two members while passing
        // through a non-member — BFS forward from the set through
        // non-members only; reaching a member again is the witness.
        {
            let mut seen = vec![false; self.nodes.len()];
            let mut stack: Vec<usize> = Vec::new();
            for &m in &set {
                for &s in &self.succ[m] {
                    if !set.contains(&s) && !seen[s] {
                        seen[s] = true;
                        stack.push(s);
                    }
                }
            }
            while let Some(x) = stack.pop() {
                for &y in &self.succ[x] {
                    if set.contains(&y) {
                        return Err(Error::WouldCreateCycle);
                    }
                    if !seen[y] {
                        seen[y] = true;
                        stack.push(y);
                    }
                }
            }
        }
        // Installed-prefix property of the merge: the new node is
        // installed iff any member is. If installed, every external
        // predecessor must be installed; if not, no external successor
        // may be installed.
        let merged_installed = set
            .iter()
            .any(|&m| self.nodes[m].as_ref().expect("checked live").installed);
        for &m in &set {
            if merged_installed {
                for &p in &self.pred[m] {
                    if !set.contains(&p) && !self.nodes[p].as_ref().expect("live").installed {
                        return Err(Error::PredecessorNotInstalled {
                            node: m,
                            predecessor: p,
                        });
                    }
                }
            } else {
                for &q in &self.succ[m] {
                    if !set.contains(&q) && self.nodes[q].as_ref().expect("live").installed {
                        return Err(Error::PredecessorNotInstalled {
                            node: q,
                            predecessor: m,
                        });
                    }
                }
            }
        }
        // Merge labels.
        let new_id = self.nodes.len();
        let mut ops = BTreeSet::new();
        let mut writes: BTreeMap<Var, (Value, OpId)> = BTreeMap::new();
        for &m in &set {
            let node = self.nodes[m].as_ref().expect("checked live");
            ops.extend(node.ops.iter().copied());
            for (&x, &(v, producer)) in &node.writes {
                match writes.get(&x) {
                    None => {
                        writes.insert(x, (v, producer));
                    }
                    Some(&(_, incumbent)) => {
                        // Later writer wins. Writers of a common variable
                        // are totally ordered in the original state
                        // graph; its writer chain gives the order.
                        let chain = self.sg.writers_of(x);
                        let pos = |op: OpId| {
                            chain
                                .iter()
                                .position(|&w| w == op.index())
                                .unwrap_or(usize::MAX)
                        };
                        if pos(producer) > pos(incumbent) {
                            writes.insert(x, (v, producer));
                        }
                    }
                }
            }
        }
        self.nodes.push(Some(WgNode {
            ops: ops.clone(),
            writes,
            installed: merged_installed,
        }));
        self.succ.push(BTreeSet::new());
        self.pred.push(BTreeSet::new());
        // Rewire edges.
        for &m in &set {
            let succs: Vec<usize> = self.succ[m].iter().copied().collect();
            for s in succs {
                self.succ[m].remove(&s);
                self.pred[s].remove(&m);
                if !set.contains(&s) {
                    self.succ[new_id].insert(s);
                    self.pred[s].insert(new_id);
                }
            }
            let preds: Vec<usize> = self.pred[m].iter().copied().collect();
            for p in preds {
                self.pred[m].remove(&p);
                self.succ[p].remove(&m);
                if !set.contains(&p) {
                    self.pred[new_id].insert(p);
                    self.succ[p].insert(new_id);
                }
            }
            self.nodes[m] = None;
        }
        for op in &ops {
            self.op_node[op.index()] = new_id;
        }
        debug_assert!(!self.has_cycle(), "validated quotient still cyclic");
        debug_assert!(self.installed_prefix_violation().is_none());
        Ok(WgNodeId(new_id))
    }

    /// **Remove a write**: drop the pair for `x` from `writes(n)`. See
    /// the module documentation for the operational side condition.
    ///
    /// # Errors
    ///
    /// [`Error::StaleNode`], [`Error::AlreadyInstalled`] (removal from an
    /// installed node is meaningless — the value already reached the
    /// state), [`Error::NoSuchWrite`], or [`Error::WriteStillNeeded`]
    /// when an uninstalled operation could still observe the hole.
    pub fn remove_write(&mut self, n: WgNodeId, x: Var) -> Result<()> {
        let node = self.live(n)?;
        if node.installed {
            return Err(Error::AlreadyInstalled(n.0));
        }
        if !node.writes.contains_key(&x) {
            return Err(Error::NoSuchWrite(x));
        }
        let n_ops = node.ops.clone();
        // Condition 1: a strictly-following live node blindly writes x.
        let has_blind_follower = self
            .live_nodes()
            .any(|k| k != n && self.reaches(n, k) && self.node_blindly_writes(k, x));
        // Condition 2: every reader of x outside ops(n) is installed or
        // ordered before n.
        for m in self.live_nodes() {
            let mn = self.live(m).expect("live");
            for &op in &mn.ops {
                if n_ops.contains(&op) {
                    continue;
                }
                if self.cg.reads_of(op).contains(&x)
                    && !mn.installed
                    && !(m != n && self.reaches(m, n))
                {
                    return Err(Error::WriteStillNeeded { var: x, reader: op });
                }
            }
        }
        if !has_blind_follower {
            // Without a later blind writer the removed value would be the
            // final (exposed) value of x; report the earliest reader or a
            // synthetic witness.
            return Err(Error::WriteStillNeeded {
                var: x,
                reader: *n_ops.iter().next().expect("nodes are non-empty"),
            });
        }
        self.nodes[n.0]
            .as_mut()
            .expect("checked live")
            .writes
            .remove(&x);
        Ok(())
    }

    /// Does node `k` write `x` "without reading it": is the earliest
    /// access to `x` among `ops(k)` (in conflict-graph order) a blind
    /// write? (For singleton nodes this is exactly the operation-level
    /// blind-write test.)
    #[must_use]
    pub fn node_blindly_writes(&self, k: WgNodeId, x: Var) -> bool {
        let Ok(node) = self.live(k) else { return false };
        if !node.writes.contains_key(&x) {
            return false;
        }
        self.cg
            .accessors_of(x)
            .iter()
            .find(|a| node.ops.contains(&a.op))
            .is_some_and(|first| first.writes && !first.reads)
    }

    fn has_cycle(&self) -> bool {
        // Kahn over live nodes.
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.pred[v].len()).collect();
        let mut stack: Vec<usize> = (0..n)
            .filter(|&v| self.nodes[v].is_some() && indeg[v] == 0)
            .collect();
        let mut seen = 0usize;
        while let Some(v) = stack.pop() {
            seen += 1;
            for &w in &self.succ[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    stack.push(w);
                }
            }
        }
        seen != self.live_count()
    }

    fn installed_prefix_violation(&self) -> Option<(usize, usize)> {
        for v in 0..self.nodes.len() {
            let Some(node) = self.nodes[v].as_ref() else {
                continue;
            };
            if !node.installed {
                continue;
            }
            for &p in &self.pred[v] {
                if !self.nodes[p].as_ref().expect("live").installed {
                    return Some((v, p));
                }
            }
        }
        None
    }

    /// Do the installed nodes form a prefix of the write graph?
    #[must_use]
    pub fn installed_is_prefix(&self) -> bool {
        self.installed_prefix_violation().is_none()
    }

    /// The union of `ops(n)` over installed nodes, as a node set over the
    /// history.
    #[must_use]
    pub fn installed_ops(&self) -> NodeSet {
        let mut out = NodeSet::new(self.op_node.len());
        for n in self.live_nodes() {
            let node = self.live(n).expect("live");
            if node.installed {
                for op in &node.ops {
                    out.insert(op.index());
                }
            }
        }
        out
    }

    /// The state determined by the installed prefix: each variable takes
    /// the surviving write whose producer is latest in the variable's
    /// writer chain among installed nodes, or its initial value.
    #[must_use]
    pub fn installed_state(&self) -> State {
        let mut out = self.sg.initial_state().clone();
        let mut best: BTreeMap<Var, (usize, Value)> = BTreeMap::new();
        for n in self.live_nodes() {
            let node = self.live(n).expect("live");
            if !node.installed {
                continue;
            }
            for (&x, &(v, producer)) in &node.writes {
                let chain = self.sg.writers_of(x);
                let pos = chain
                    .iter()
                    .position(|&w| w == producer.index())
                    .unwrap_or(usize::MAX);
                match best.get(&x) {
                    Some(&(bp, _)) if bp >= pos => {}
                    _ => {
                        best.insert(x, (pos, v));
                    }
                }
            }
        }
        for (x, (_, v)) in best {
            out.set(x, v);
        }
        out
    }

    /// Uninstalled nodes whose predecessors are all installed — the nodes
    /// the cache manager may install next.
    #[must_use]
    pub fn minimal_uninstalled(&self) -> Vec<WgNodeId> {
        self.live_nodes()
            .filter(|&n| {
                let node = self.live(n).expect("live");
                !node.installed
                    && self.pred[n.0]
                        .iter()
                        .all(|&p| self.nodes[p].as_ref().expect("live").installed)
            })
            .collect()
    }

    /// Corollary 5's conclusion for the current graph: the installed
    /// operations form an installation-graph prefix that explains the
    /// installed state.
    #[must_use]
    pub fn check_corollary5(&self, ig: &InstallationGraph) -> bool {
        let installed = self.installed_ops();
        ig.is_prefix(&installed)
            && crate::explain::explains(&self.cg, &self.sg, &installed, &self.installed_state())
    }
}

impl fmt::Debug for WriteGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "WriteGraph")?;
        for n in self.live_nodes() {
            let node = self.live(n).expect("live");
            write!(
                f,
                "  {n:?}{}: ops {:?}, writes {{",
                if node.installed { "*" } else { "" },
                node.ops
            )?;
            for (i, (x, (v, p))) in node.writes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{x:?}={v:?}@{p:?}")?;
            }
            writeln!(f, "}} -> {:?}", self.succ[n.0])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::examples::{efg, figure4, hj, scenario2};
    use crate::history::History;

    struct Ctx {
        h: History,
        cg: ConflictGraph,
        ig: InstallationGraph,
        sg: StateGraph,
        wg: WriteGraph,
    }

    fn ctx(h: History) -> Ctx {
        let cg = ConflictGraph::generate(&h);
        let ig = InstallationGraph::from_conflict(&cg);
        let sg = StateGraph::from_conflict(&h, &cg, &State::zeroed());
        let wg = WriteGraph::from_installation_graph(&h, &cg, &ig, &sg);
        Ctx { h, cg, ig, sg, wg }
    }

    #[test]
    fn initial_write_graph_mirrors_installation_graph() {
        let c = ctx(figure4());
        assert_eq!(c.wg.live_count(), 3);
        // O -> Q and P -> Q edges; no O -> P (write-read removed).
        assert!(c.wg.reaches(WgNodeId(0), WgNodeId(2)));
        assert!(c.wg.reaches(WgNodeId(1), WgNodeId(2)));
        assert!(!c.wg.reaches(WgNodeId(0), WgNodeId(1)));
        assert!(c.wg.check_corollary5(&c.ig));
    }

    #[test]
    fn install_requires_predecessors() {
        let mut c = ctx(figure4());
        // Q's predecessors O and P are uninstalled.
        let err = c.wg.install(WgNodeId(2)).unwrap_err();
        assert!(matches!(
            err,
            Error::PredecessorNotInstalled { node: 2, .. }
        ));
        // P has no installation predecessors; installing it is legal —
        // the extra Figure 5 state.
        c.wg.install(WgNodeId(1)).unwrap();
        c.wg.install(WgNodeId(0)).unwrap();
        c.wg.install(WgNodeId(2)).unwrap();
        assert!(c.wg.check_corollary5(&c.ig));
    }

    #[test]
    fn double_install_rejected() {
        let mut c = ctx(figure4());
        c.wg.install(WgNodeId(1)).unwrap();
        assert_eq!(c.wg.install(WgNodeId(1)), Err(Error::AlreadyInstalled(1)));
    }

    #[test]
    fn installed_state_tracks_installs() {
        let mut c = ctx(figure4());
        assert_eq!(c.wg.installed_state(), State::zeroed());
        c.wg.install(WgNodeId(0)).unwrap();
        assert_eq!(c.wg.installed_state().get(Var(0)), Value(1));
        c.wg.install(WgNodeId(1)).unwrap();
        c.wg.install(WgNodeId(2)).unwrap();
        assert_eq!(c.wg.installed_state(), c.sg.final_state());
    }

    #[test]
    fn corollary5_along_every_install_order() {
        // Install nodes of figure4's write graph in any legal order;
        // after every step the installed state must be explainable.
        let mut c = ctx(figure4());
        for order in [[1usize, 0, 2], [0, 1, 2]] {
            let mut wg = WriteGraph::from_installation_graph(&c.h, &c.cg, &c.ig, &c.sg);
            for i in order {
                wg.install(WgNodeId(i)).unwrap();
                assert!(wg.check_corollary5(&c.ig), "after installing {i}");
            }
        }
        let _ = &mut c;
    }

    #[test]
    fn add_edge_rules() {
        let mut c = ctx(figure4());
        // Edge into an installed node is illegal.
        c.wg.install(WgNodeId(1)).unwrap();
        assert_eq!(
            c.wg.add_edge(WgNodeId(0), WgNodeId(1)),
            Err(Error::EdgeToInstalledNode(1))
        );
        // Cycle rejected: Q -> O while O -> Q exists.
        assert_eq!(
            c.wg.add_edge(WgNodeId(2), WgNodeId(0)),
            Err(Error::WouldCreateCycle)
        );
        // Legal constraint edge.
        c.wg.add_edge(WgNodeId(0), WgNodeId(2)).unwrap();
    }

    #[test]
    fn figure7_collapse_o_and_q() {
        // Collapsing the two writers of x forces P before the merged
        // node: exactly Figure 7.
        let mut c = ctx(figure4());
        let oq = c.wg.collapse(&[WgNodeId(0), WgNodeId(2)]).unwrap();
        assert_eq!(c.wg.live_count(), 2);
        // P must now precede the merged node (P -> Q edge survives).
        assert!(c.wg.reaches(WgNodeId(1), oq));
        // The merged node's write of x is Q's (the later writer): x=2.
        let writes = c.wg.writes_of(oq).unwrap();
        assert_eq!(writes, vec![(Var(0), Value(2))]);
        // Installing the merged node before P is now impossible...
        assert!(matches!(
            c.wg.install(oq),
            Err(Error::PredecessorNotInstalled { .. })
        ));
        // ...so the cache manager must write y (install P) first.
        c.wg.install(WgNodeId(1)).unwrap();
        c.wg.install(oq).unwrap();
        assert!(c.wg.check_corollary5(&c.ig));
        assert_eq!(c.wg.installed_state(), c.sg.final_state());
    }

    #[test]
    fn collapse_marks_installed_if_any_member_installed() {
        // §6: flushing a page = collapsing a cache node into the
        // installed stable node.
        let mut c = ctx(scenario2());
        // B and A are unordered in the installation graph (the wr edge
        // was dropped). Install B, then collapse A into it.
        c.wg.install(WgNodeId(0)).unwrap();
        let merged = c.wg.collapse(&[WgNodeId(0), WgNodeId(1)]).unwrap();
        assert!(c.wg.is_installed(merged).unwrap());
        assert_eq!(c.wg.installed_ops().count(), 2);
        assert_eq!(c.wg.installed_state(), c.sg.final_state());
        assert!(c.wg.check_corollary5(&c.ig));
    }

    #[test]
    fn collapse_detects_quotient_cycles() {
        // E -> F -> G with E -> G: collapsing {E, G} leaves F both after
        // E and before G — a cycle in the quotient.
        let mut c = ctx(efg());
        let err = c.wg.collapse(&[WgNodeId(0), WgNodeId(2)]).unwrap_err();
        assert_eq!(err, Error::WouldCreateCycle);
        // Failed collapse must not disturb the graph.
        assert_eq!(c.wg.live_count(), 3);
        assert!(c.wg.reaches(WgNodeId(0), WgNodeId(1)));
    }

    #[test]
    fn efg_requires_atomic_xy_install() {
        // §5: installing E or F singly is unrecoverable; collapsing
        // E and F lets x and y install atomically.
        let mut c = ctx(efg());
        let ef = c.wg.collapse(&[WgNodeId(0), WgNodeId(1)]).unwrap();
        c.wg.install(ef).unwrap();
        assert!(c.wg.check_corollary5(&c.ig));
        let s = c.wg.installed_state();
        assert_eq!(s.get(Var(0)), Value(1));
        assert_eq!(s.get(Var(1)), Value(2));
        let g = c.wg.node_of_op(OpId(2));
        c.wg.install(g).unwrap();
        assert_eq!(c.wg.installed_state(), c.sg.final_state());
    }

    #[test]
    fn hj_remove_write_exploits_blind_follower() {
        // §5: J's blind write to y makes y unexposed after H; removing
        // H's write of y means installing H only updates x.
        let mut c = ctx(hj());
        let h_node = c.wg.node_of_op(OpId(0));
        c.wg.remove_write(h_node, Var(1)).unwrap();
        assert_eq!(c.wg.writes_of(h_node).unwrap(), vec![(Var(0), Value(1))]);
        c.wg.install(h_node).unwrap();
        // Installed state: x=1, y still 0 — explainable because y is
        // unexposed by {H}.
        assert!(c.wg.check_corollary5(&c.ig));
        let j_node = c.wg.node_of_op(OpId(1));
        c.wg.install(j_node).unwrap();
        assert_eq!(c.wg.installed_state(), c.sg.final_state());
    }

    #[test]
    fn remove_write_needs_blind_follower() {
        // figure4: Q is the last writer of x; removing Q's write of x
        // would lose the final value.
        let mut c = ctx(figure4());
        let q = c.wg.node_of_op(OpId(2));
        assert!(matches!(
            c.wg.remove_write(q, Var(0)),
            Err(Error::WriteStillNeeded { var: Var(0), .. })
        ));
    }

    #[test]
    fn remove_write_blocked_by_uninstalled_reader_until_edge_added() {
        // O1: x <- 1 (blind); O2: y <- x; O3: x <- 2 (blind).
        // Removing O1's write of x is illegal while O2 might replay
        // after O1 installs; adding the edge O2 -> O1 legalizes it (the
        // paper's parenthetical).
        use crate::expr::Expr;
        use crate::op::Operation;
        let h = History::new(vec![
            Operation::builder(OpId(0))
                .assign(Var(0), Expr::constant(1))
                .build()
                .unwrap(),
            Operation::builder(OpId(1))
                .assign(Var(1), Expr::read(Var(0)))
                .build()
                .unwrap(),
            Operation::builder(OpId(2))
                .assign(Var(0), Expr::constant(2))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let mut c = ctx(h);
        let n1 = c.wg.node_of_op(OpId(0));
        let n2 = c.wg.node_of_op(OpId(1));
        assert_eq!(
            c.wg.remove_write(n1, Var(0)),
            Err(Error::WriteStillNeeded {
                var: Var(0),
                reader: OpId(1)
            })
        );
        c.wg.add_edge(n2, n1).unwrap();
        c.wg.remove_write(n1, Var(0)).unwrap();
        // Now installs must follow the added edge: O2, then O1, then O3;
        // Corollary 5 holds throughout.
        c.wg.install(n2).unwrap();
        assert!(c.wg.check_corollary5(&c.ig));
        c.wg.install(n1).unwrap();
        assert!(c.wg.check_corollary5(&c.ig));
        let n3 = c.wg.node_of_op(OpId(2));
        c.wg.install(n3).unwrap();
        assert_eq!(c.wg.installed_state(), c.sg.final_state());
    }

    #[test]
    fn remove_write_from_installed_node_rejected() {
        let mut c = ctx(hj());
        let h_node = c.wg.node_of_op(OpId(0));
        c.wg.remove_write(h_node, Var(1)).unwrap();
        c.wg.install(h_node).unwrap();
        assert_eq!(
            c.wg.remove_write(h_node, Var(0)),
            Err(Error::AlreadyInstalled(h_node.0))
        );
    }

    #[test]
    fn stale_nodes_rejected_everywhere() {
        let mut c = ctx(figure4());
        let merged = c.wg.collapse(&[WgNodeId(0), WgNodeId(2)]).unwrap();
        assert_eq!(c.wg.install(WgNodeId(0)), Err(Error::StaleNode(0)));
        assert_eq!(c.wg.add_edge(WgNodeId(0), merged), Err(Error::StaleNode(0)));
        assert!(c.wg.collapse(&[WgNodeId(2), merged]).is_err());
        assert_eq!(
            c.wg.remove_write(WgNodeId(2), Var(0)),
            Err(Error::StaleNode(2))
        );
    }

    #[test]
    fn minimal_uninstalled_nodes() {
        let mut c = ctx(figure4());
        let mins: Vec<_> = c.wg.minimal_uninstalled();
        assert_eq!(mins, vec![WgNodeId(0), WgNodeId(1)]);
        c.wg.install(WgNodeId(0)).unwrap();
        c.wg.install(WgNodeId(1)).unwrap();
        assert_eq!(c.wg.minimal_uninstalled(), vec![WgNodeId(2)]);
    }

    #[test]
    fn node_blindly_writes_respects_first_access() {
        let c = ctx(hj());
        // J blindly writes y.
        assert!(c.wg.node_blindly_writes(c.wg.node_of_op(OpId(1)), Var(1)));
        // H reads y before writing it.
        assert!(!c.wg.node_blindly_writes(c.wg.node_of_op(OpId(0)), Var(1)));
        // H does not write v9 at all.
        assert!(!c.wg.node_blindly_writes(c.wg.node_of_op(OpId(0)), Var(9)));
    }
}
