//! The log (§4.1).
//!
//! The paper defines a log over a conflict graph as any DAG whose nodes
//! are labeled with the graph's operations and whose order is consistent
//! with the conflict order. Practical logs are linear sequences of
//! records in invocation order — and by Lemma 1 a linear log is just one
//! total ordering of the conflict graph, so we represent logs linearly
//! and validate conflict-consistency explicitly. Records carry log
//! sequence numbers (LSNs), which §6.3's physiological method uses as
//! page tags.

use crate::conflict::ConflictGraph;
use crate::error::{Error, Result};
use crate::graph::NodeSet;
use crate::history::History;
use crate::op::OpId;

/// A log sequence number. LSNs increase monotonically with each record;
/// `Lsn(0)` is reserved as "before any record" (the LSN of a freshly
/// allocated page).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The null LSN, smaller than that of every record.
    pub const ZERO: Lsn = Lsn(0);

    /// The next LSN.
    #[must_use]
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

/// One log record: an operation invocation at a log position.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LogRecord {
    /// The record's log sequence number.
    pub lsn: Lsn,
    /// The logged operation.
    pub op: OpId,
}

/// A linear redo log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Log {
    records: Vec<LogRecord>,
}

impl Log {
    /// Logs a history in invocation order, assigning LSNs `1..=n`.
    #[must_use]
    pub fn from_history(history: &History) -> Log {
        Log {
            records: history
                .ids()
                .enumerate()
                .map(|(i, op)| LogRecord {
                    lsn: Lsn(i as u64 + 1),
                    op,
                })
                .collect(),
        }
    }

    /// Logs the history's operations in an explicit order (useful for
    /// exercising Lemma 1: any conflict-consistent order is as good as
    /// the invocation order).
    #[must_use]
    pub fn from_order(order: &[OpId]) -> Log {
        Log {
            records: order
                .iter()
                .enumerate()
                .map(|(i, &op)| LogRecord {
                    lsn: Lsn(i as u64 + 1),
                    op,
                })
                .collect(),
        }
    }

    /// The records in log order.
    #[must_use]
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the log empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `operations(log)`: the set of logged operations, as a node set
    /// over a universe of `universe` operations.
    #[must_use]
    pub fn operations(&self, universe: usize) -> NodeSet {
        NodeSet::from_indices(universe, self.records.iter().map(|r| r.op.index()))
    }

    /// The LSN of an operation's record, if logged.
    #[must_use]
    pub fn lsn_of(&self, op: OpId) -> Option<Lsn> {
        self.records.iter().find(|r| r.op == op).map(|r| r.lsn)
    }

    /// The highest LSN in the log (`Lsn::ZERO` when empty).
    #[must_use]
    pub fn last_lsn(&self) -> Lsn {
        self.records.last().map_or(Lsn::ZERO, |r| r.lsn)
    }

    /// Validates the two §4.1 requirements against a conflict graph:
    /// the logged operations are exactly the graph's, and the log order
    /// is consistent with the conflict order.
    pub fn validate_against(&self, cg: &ConflictGraph) -> Result<()> {
        let n = cg.len();
        let mut pos = vec![usize::MAX; n];
        for (i, r) in self.records.iter().enumerate() {
            if r.op.index() >= n || pos[r.op.index()] != usize::MAX {
                return Err(Error::NoSuchOp(r.op));
            }
            pos[r.op.index()] = i;
        }
        if self.records.len() != n {
            // Some operation of the graph is missing from the log.
            let missing = (0..n).find(|&i| pos[i] == usize::MAX).unwrap_or(0);
            return Err(Error::NoSuchOp(OpId(missing as u32)));
        }
        for (u, v, _) in cg.dag().edges() {
            if pos[u] > pos[v] {
                return Err(Error::LogOrderViolation {
                    before: OpId(u as u32),
                    after: OpId(v as u32),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::examples::{figure4, scenario2};

    #[test]
    fn from_history_assigns_monotone_lsns() {
        let log = Log::from_history(&figure4());
        let lsns: Vec<u64> = log.records().iter().map(|r| r.lsn.0).collect();
        assert_eq!(lsns, vec![1, 2, 3]);
        assert_eq!(log.last_lsn(), Lsn(3));
    }

    #[test]
    fn operations_set() {
        let log = Log::from_history(&figure4());
        assert_eq!(log.operations(3), NodeSet::full(3));
    }

    #[test]
    fn lsn_lookup() {
        let log = Log::from_history(&figure4());
        assert_eq!(log.lsn_of(OpId(1)), Some(Lsn(2)));
        assert_eq!(log.lsn_of(OpId(9)), None);
    }

    #[test]
    fn invocation_order_log_validates() {
        let h = figure4();
        let cg = ConflictGraph::generate(&h);
        Log::from_history(&h).validate_against(&cg).unwrap();
    }

    #[test]
    fn conflict_consistent_permutation_validates() {
        // Scenario 2's graph has only the WR edge B -> A; the order
        // [B, A] is forced, but for an edgeless pair any order works.
        let h = scenario2();
        let cg = ConflictGraph::generate(&h);
        Log::from_order(&[OpId(0), OpId(1)])
            .validate_against(&cg)
            .unwrap();
        let err = Log::from_order(&[OpId(1), OpId(0)])
            .validate_against(&cg)
            .unwrap_err();
        assert_eq!(
            err,
            Error::LogOrderViolation {
                before: OpId(0),
                after: OpId(1)
            }
        );
    }

    #[test]
    fn missing_and_duplicate_ops_rejected() {
        let h = figure4();
        let cg = ConflictGraph::generate(&h);
        assert!(Log::from_order(&[OpId(0), OpId(1)])
            .validate_against(&cg)
            .is_err());
        assert!(Log::from_order(&[OpId(0), OpId(0), OpId(2)])
            .validate_against(&cg)
            .is_err());
    }

    #[test]
    fn empty_log_edge_cases() {
        let log = Log::from_order(&[]);
        assert!(log.is_empty());
        assert_eq!(log.last_lsn(), Lsn::ZERO);
        assert_eq!(log.operations(0).count(), 0);
    }
}
