//! Operations: atomic read-then-write functions (§2.1).
//!
//! "Each operation atomically reads a set of variables and then writes a
//! set of variables." An [`Operation`] therefore evaluates *all* of its
//! assignment expressions against the pre-state before writing any
//! target, so `⟨x ← x+1; y ← y+1⟩` and multi-variable bodies behave
//! exactly as the paper's Scenario 3 requires.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::state::{State, Value, Var};

/// Identifier of an operation within a [`History`](crate::history::History).
///
/// Histories number operations by invocation position, so `OpId` doubles
/// as a node index in the conflict, installation, and state graphs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// The id as a graph node index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// One assignment `target ← expr` inside an operation body.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Assignment {
    /// The written variable.
    pub target: Var,
    /// The expression producing the new value, evaluated on the
    /// pre-state.
    pub expr: Expr,
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} <- {:?}", self.target, self.expr)
    }
}

/// A logged operation: a deterministic function from its read set to its
/// write set.
#[derive(Clone, PartialEq, Eq)]
pub struct Operation {
    id: OpId,
    reads: BTreeSet<Var>,
    writes: BTreeSet<Var>,
    body: Vec<Assignment>,
}

impl Operation {
    /// Starts building an operation with the given id.
    #[must_use]
    pub fn builder(id: OpId) -> OperationBuilder {
        OperationBuilder {
            id,
            body: Vec::new(),
            extra_reads: BTreeSet::new(),
        }
    }

    /// The operation's identifier.
    #[must_use]
    pub fn id(&self) -> OpId {
        self.id
    }

    /// Returns a copy of this operation carrying a different id. Used by
    /// histories that renumber operations and by workload generators.
    #[must_use]
    pub fn with_id(&self, id: OpId) -> Operation {
        Operation { id, ..self.clone() }
    }

    /// The read set (input variables).
    #[must_use]
    pub fn reads(&self) -> &BTreeSet<Var> {
        &self.reads
    }

    /// The write set (output variables).
    #[must_use]
    pub fn writes(&self) -> &BTreeSet<Var> {
        &self.writes
    }

    /// All variables the operation accesses (reads ∪ writes).
    pub fn accesses(&self) -> impl Iterator<Item = Var> + '_ {
        self.reads.union(&self.writes).copied()
    }

    /// Does the operation access (read or write) `x`?
    #[must_use]
    pub fn accesses_var(&self, x: Var) -> bool {
        self.reads.contains(&x) || self.writes.contains(&x)
    }

    /// The assignments making up the body.
    #[must_use]
    pub fn body(&self) -> &[Assignment] {
        &self.body
    }

    /// Is the write to `x` blind, i.e. is `x` written without being read
    /// by this operation? (Blind writes are what render variables
    /// unexposed, §2.3.)
    #[must_use]
    pub fn writes_blindly(&self, x: Var) -> bool {
        self.writes.contains(&x) && !self.reads.contains(&x)
    }

    /// Computes the values the operation would write given the pre-state,
    /// without mutating anything.
    #[must_use]
    pub fn outputs(&self, pre: &State) -> BTreeMap<Var, Value> {
        self.body
            .iter()
            .map(|a| (a.target, a.expr.eval(&mut |x| pre.get(x))))
            .collect()
    }

    /// Applies the operation to `state`: reads atomically, then writes.
    pub fn apply(&self, state: &mut State) {
        let outs = self.outputs(state);
        for (x, v) in outs {
            state.set(x, v);
        }
    }

    /// The values the operation reads from `state`.
    #[must_use]
    pub fn read_values(&self, state: &State) -> BTreeMap<Var, Value> {
        self.reads.iter().map(|&x| (x, state.get(x))).collect()
    }
}

impl fmt::Debug for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: ⟨", self.id)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a:?}")?;
        }
        write!(f, "⟩")
    }
}

/// Builder for [`Operation`].
pub struct OperationBuilder {
    id: OpId,
    body: Vec<Assignment>,
    extra_reads: BTreeSet<Var>,
}

impl OperationBuilder {
    /// Adds an assignment `target ← expr`.
    #[must_use]
    pub fn assign(mut self, target: Var, expr: Expr) -> Self {
        self.body.push(Assignment { target, expr });
        self
    }

    /// Declares an additional read variable that does not appear in any
    /// expression (an observed-but-unused input). It still creates
    /// conflicts, exactly like a read whose value happens not to affect
    /// the output.
    #[must_use]
    pub fn declare_read(mut self, x: Var) -> Self {
        self.extra_reads.insert(x);
        self
    }

    /// Finalizes the operation.
    ///
    /// # Errors
    ///
    /// [`Error::DuplicateWrite`] if two assignments share a target, and
    /// [`Error::EmptyWriteSet`] if the body is empty — the paper's
    /// operations write at least one variable.
    pub fn build(self) -> Result<Operation> {
        if self.body.is_empty() {
            return Err(Error::EmptyWriteSet(self.id));
        }
        let mut writes = BTreeSet::new();
        let mut reads = self.extra_reads;
        for a in &self.body {
            if !writes.insert(a.target) {
                return Err(Error::DuplicateWrite(a.target));
            }
            a.expr.collect_reads(&mut reads);
        }
        Ok(Operation {
            id: self.id,
            reads,
            writes,
            body: self.body,
        })
    }
}

/// Convenience constructors for the paper's example operations.
pub mod examples {
    use super::{Expr, OpId, Operation, Var};

    /// `A: x ← y + 1` (Scenarios 1 and 2). `x = Var(0)`, `y = Var(1)`.
    #[must_use]
    pub fn op_a(id: OpId) -> Operation {
        Operation::builder(id)
            .assign(Var(0), Expr::read(Var(1)).add(Expr::constant(1)))
            .build()
            .expect("valid operation")
    }

    /// `B: y ← 2` (Scenarios 1 and 2).
    #[must_use]
    pub fn op_b(id: OpId) -> Operation {
        Operation::builder(id)
            .assign(Var(1), Expr::constant(2))
            .build()
            .expect("valid operation")
    }

    /// `C: ⟨x ← x+1; y ← y+1⟩` (Scenario 3).
    #[must_use]
    pub fn op_c(id: OpId) -> Operation {
        Operation::builder(id)
            .assign(Var(0), Expr::read(Var(0)).add(Expr::constant(1)))
            .assign(Var(1), Expr::read(Var(1)).add(Expr::constant(1)))
            .build()
            .expect("valid operation")
    }

    /// `D: x ← y + 1` (Scenario 3).
    #[must_use]
    pub fn op_d(id: OpId) -> Operation {
        op_a(id)
    }
}

#[cfg(test)]
mod tests {
    use super::examples::*;
    use super::*;

    #[test]
    fn builder_computes_read_and_write_sets() {
        let op = Operation::builder(OpId(0))
            .assign(Var(0), Expr::read(Var(1)).add(Expr::read(Var(2))))
            .assign(Var(3), Expr::constant(9))
            .build()
            .unwrap();
        assert_eq!(op.reads(), &BTreeSet::from([Var(1), Var(2)]));
        assert_eq!(op.writes(), &BTreeSet::from([Var(0), Var(3)]));
    }

    #[test]
    fn duplicate_write_rejected() {
        let err = Operation::builder(OpId(0))
            .assign(Var(0), Expr::constant(1))
            .assign(Var(0), Expr::constant(2))
            .build()
            .unwrap_err();
        assert_eq!(err, Error::DuplicateWrite(Var(0)));
    }

    #[test]
    fn empty_body_rejected() {
        let err = Operation::builder(OpId(3)).build().unwrap_err();
        assert_eq!(err, Error::EmptyWriteSet(OpId(3)));
    }

    #[test]
    fn declared_reads_join_read_set() {
        let op = Operation::builder(OpId(0))
            .assign(Var(0), Expr::constant(1))
            .declare_read(Var(7))
            .build()
            .unwrap();
        assert!(op.reads().contains(&Var(7)));
        assert!(!op.writes_blindly(Var(0)) || !op.reads().contains(&Var(0)));
    }

    #[test]
    fn apply_reads_atomically_before_writing() {
        // C: ⟨x ← x+1; y ← y+1⟩ on x=5, y=10.
        let mut s = State::from_pairs([(Var(0), Value(5)), (Var(1), Value(10))]);
        op_c(OpId(0)).apply(&mut s);
        assert_eq!(s.get(Var(0)), Value(6));
        assert_eq!(s.get(Var(1)), Value(11));
    }

    #[test]
    fn swap_demonstrates_atomic_read_then_write() {
        // ⟨x ← y; y ← x⟩ must swap, not duplicate.
        let op = Operation::builder(OpId(0))
            .assign(Var(0), Expr::read(Var(1)))
            .assign(Var(1), Expr::read(Var(0)))
            .build()
            .unwrap();
        let mut s = State::from_pairs([(Var(0), Value(1)), (Var(1), Value(2))]);
        op.apply(&mut s);
        assert_eq!(s.get(Var(0)), Value(2));
        assert_eq!(s.get(Var(1)), Value(1));
    }

    #[test]
    fn blind_write_detection() {
        let b = op_b(OpId(0)); // y ← 2
        assert!(b.writes_blindly(Var(1)));
        let c = op_c(OpId(1)); // x ← x+1 reads x
        assert!(!c.writes_blindly(Var(0)));
    }

    #[test]
    fn scenario1_semantics() {
        // A then B from S0 = 0: x = 1, y = 2.
        let mut s = State::zeroed();
        op_a(OpId(0)).apply(&mut s);
        op_b(OpId(1)).apply(&mut s);
        assert_eq!(s.get(Var(0)), Value(1));
        assert_eq!(s.get(Var(1)), Value(2));
    }

    #[test]
    fn scenario2_semantics() {
        // B then A from S0 = 0: y = 2, x = 3.
        let mut s = State::zeroed();
        op_b(OpId(0)).apply(&mut s);
        op_a(OpId(1)).apply(&mut s);
        assert_eq!(s.get(Var(0)), Value(3));
        assert_eq!(s.get(Var(1)), Value(2));
    }

    #[test]
    fn outputs_does_not_mutate() {
        let s = State::zeroed();
        let outs = op_b(OpId(0)).outputs(&s);
        assert_eq!(outs.get(&Var(1)), Some(&Value(2)));
        assert_eq!(s.get(Var(1)), Value(0));
    }

    #[test]
    fn read_values_snapshot() {
        let s = State::from_pairs([(Var(1), Value(42))]);
        let rv = op_a(OpId(0)).read_values(&s);
        assert_eq!(rv.get(&Var(1)), Some(&Value(42)));
        assert_eq!(rv.len(), 1);
    }
}
