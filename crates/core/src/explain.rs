//! Explainable states (§3.2).
//!
//! A prefix σ of the installation graph *explains* a state `S` if every
//! variable exposed by σ has the same value in `S` and in the state
//! determined by σ. Unexposed variables may hold anything — their values
//! will be blindly overwritten before any replayed operation reads them.
//! Explainable states are exactly the potentially recoverable ones
//! (Theorem 3 and its converse).

use std::collections::BTreeSet;

use crate::conflict::ConflictGraph;
use crate::exposed::is_exposed;
use crate::graph::NodeSet;
use crate::installation::InstallationGraph;
use crate::state::{State, Var};
use crate::state_graph::StateGraph;

/// Does the prefix `sigma` explain `state`?
///
/// Checks that `state` and the state determined by `sigma` agree on
/// every exposed variable — including variables no operation accesses,
/// which are always exposed and must therefore retain their initial
/// values.
#[must_use]
pub fn explains(cg: &ConflictGraph, sg: &StateGraph, sigma: &NodeSet, state: &State) -> bool {
    first_unexplained_var(cg, sg, sigma, state).is_none()
}

/// Like [`explains`], but reports the first exposed variable on which the
/// two states disagree (useful for diagnostics and invariant errors).
#[must_use]
pub fn first_unexplained_var(
    cg: &ConflictGraph,
    sg: &StateGraph,
    sigma: &NodeSet,
    state: &State,
) -> Option<Var> {
    let determined = sg.state_determined_by(sigma);
    if state.default_value() != determined.default_value() {
        // With differing defaults some unaccessed variable disagrees;
        // report a synthetic witness outside every support.
        let max = state
            .support()
            .chain(determined.support())
            .map(|(x, _)| x.0)
            .chain(cg.vars().map(|x| x.0))
            .max()
            .map_or(0, |m| m + 1);
        return Some(Var(max));
    }
    let mut candidates: BTreeSet<Var> = cg.vars().collect();
    candidates.extend(state.support().map(|(x, _)| x));
    candidates.extend(determined.support().map(|(x, _)| x));
    candidates
        .into_iter()
        .find(|&x| is_exposed(cg, sigma, x) && state.get(x) != determined.get(x))
}

/// Searches the installation graph's prefixes for one that explains
/// `state`, visiting at most `limit` prefixes. Returns the first found
/// (enumeration order favors smaller prefixes).
///
/// Real systems never perform this search — they engineer the redo test
/// so the complement of the redo set *is* an explaining prefix (§4.5) —
/// but the checker uses it to decide explainability exhaustively.
#[must_use]
pub fn find_explaining_prefix(
    cg: &ConflictGraph,
    ig: &InstallationGraph,
    sg: &StateGraph,
    state: &State,
    limit: usize,
) -> Option<NodeSet> {
    let mut found: Option<NodeSet> = None;
    ig.dag().for_each_prefix(limit, |p| {
        if found.is_none() && explains(cg, sg, p, state) {
            found = Some(p.clone());
        }
    });
    found
}

/// Collects *every* installation-graph prefix explaining `state`, up to
/// `limit` enumerated prefixes. The checker uses the multiplicity: a
/// state may be explainable by several prefixes (Figure 5's extra state).
#[must_use]
pub fn all_explaining_prefixes(
    cg: &ConflictGraph,
    ig: &InstallationGraph,
    sg: &StateGraph,
    state: &State,
    limit: usize,
) -> Vec<NodeSet> {
    let mut out = Vec::new();
    ig.dag().for_each_prefix(limit, |p| {
        if explains(cg, sg, p, state) {
            out.push(p.clone());
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::examples::{figure4, hj, scenario1, scenario2, scenario3};
    use crate::history::History;
    use crate::state::Value;

    struct Ctx {
        h: History,
        cg: ConflictGraph,
        ig: InstallationGraph,
        sg: StateGraph,
    }

    fn ctx(h: History) -> Ctx {
        let s0 = State::zeroed();
        let cg = ConflictGraph::generate(&h);
        let ig = InstallationGraph::from_conflict(&cg);
        let sg = StateGraph::from_conflict(&h, &cg, &s0);
        Ctx { h, cg, ig, sg }
    }

    #[test]
    fn every_prefix_explains_its_determined_state() {
        for h in [scenario1(), scenario2(), scenario3(), figure4(), hj()] {
            let c = ctx(h);
            c.ig.dag()
                .for_each_prefix(1_000, |p| {
                    let s = c.sg.state_determined_by(p);
                    assert!(explains(&c.cg, &c.sg, p, &s), "prefix {p:?}");
                })
                .unwrap();
        }
    }

    #[test]
    fn scenario1_bad_state_not_explainable() {
        // B installed, A not: y=2, x=0. No installation prefix explains
        // this state (that's why Scenario 1 is unrecoverable).
        let c = ctx(scenario1());
        let bad = State::from_pairs([(Var(1), Value(2))]);
        assert!(find_explaining_prefix(&c.cg, &c.ig, &c.sg, &bad, 10_000).is_none());
    }

    #[test]
    fn scenario2_a_only_state_is_explainable() {
        // A installed (x=3), B not (y=0). {A} explains the state — and
        // so does {} (both x and y are unexposed by {}: A blindly writes
        // x and B blindly writes y), so the state admits multiple
        // explanations.
        let c = ctx(scenario2());
        let state = State::from_pairs([(Var(0), Value(3))]);
        let all = all_explaining_prefixes(&c.cg, &c.ig, &c.sg, &state, 10_000);
        assert!(
            all.contains(&NodeSet::from_indices(2, [1])),
            "{{A}} must explain"
        );
        assert!(
            all.contains(&NodeSet::new(2)),
            "{{}} also explains: all vars unexposed"
        );
    }

    #[test]
    fn scenario3_partial_install_of_c_is_explainable() {
        // Only C's change to y reaches the state: x=0 (stale!), y=1.
        // Prefix {C} explains it because x is unexposed by {C}.
        let c = ctx(scenario3());
        let state = State::from_pairs([(Var(1), Value(1))]);
        let p = find_explaining_prefix(&c.cg, &c.ig, &c.sg, &state, 10_000).unwrap();
        assert_eq!(p, NodeSet::from_indices(2, [0]));
    }

    #[test]
    fn unexposed_variables_may_hold_garbage() {
        // Same as above but x holds an arbitrary value.
        let c = ctx(scenario3());
        let state = State::from_pairs([(Var(0), Value(0xdead_beef)), (Var(1), Value(1))]);
        assert!(explains(
            &c.cg,
            &c.sg,
            &NodeSet::from_indices(2, [0]),
            &state
        ));
    }

    #[test]
    fn exposed_variables_must_match() {
        let c = ctx(scenario3());
        // y is exposed by {C}; a wrong y is unexplained.
        let state = State::from_pairs([(Var(1), Value(42))]);
        let sigma = NodeSet::from_indices(2, [0]);
        assert!(!explains(&c.cg, &c.sg, &sigma, &state));
        assert_eq!(
            first_unexplained_var(&c.cg, &c.sg, &sigma, &state),
            Some(Var(1))
        );
    }

    #[test]
    fn untouched_variables_must_keep_initial_values() {
        let c = ctx(scenario1());
        let mut state = c.sg.state_determined_by(&NodeSet::new(2));
        state.set(Var(50), Value(9)); // never accessed, hence exposed
        assert!(!explains(&c.cg, &c.sg, &NodeSet::new(2), &state));
        assert_eq!(
            first_unexplained_var(&c.cg, &c.sg, &NodeSet::new(2), &state),
            Some(Var(50))
        );
    }

    #[test]
    fn final_state_explained_by_full_prefix() {
        for h in [scenario1(), scenario2(), scenario3(), figure4(), hj()] {
            let c = ctx(h);
            let full = NodeSet::full(c.h.len());
            assert!(explains(&c.cg, &c.sg, &full, &c.sg.final_state()));
        }
    }

    #[test]
    fn figure5_extra_state_counts() {
        // Figure 4/5: the conflict graph admits 4 prefix states, the
        // installation graph 5. Each determined state should be
        // explainable; the {P}-state is the extra one.
        let c = ctx(figure4());
        let mut explainable = 0;
        c.ig.dag()
            .for_each_prefix(1000, |p| {
                let s = c.sg.state_determined_by(p);
                explainable +=
                    usize::from(!all_explaining_prefixes(&c.cg, &c.ig, &c.sg, &s, 1000).is_empty());
            })
            .unwrap();
        assert_eq!(explainable, 5);
    }

    #[test]
    fn default_mismatch_is_unexplained() {
        let c = ctx(scenario1());
        let state = State::with_default(Value(3));
        assert!(!explains(&c.cg, &c.sg, &NodeSet::new(2), &state));
    }
}
