//! A small directed-acyclic-graph library tailored to the paper's needs.
//!
//! The conflict, installation, state, and write graphs all share this
//! representation: dense node indices, edges carrying a set of conflict
//! kinds, and the *prefix* machinery of §2.1 ("a subgraph induced by a set
//! of nodes such that if a node is in the prefix, then all of its
//! predecessors are"). `petgraph` is not in the approved offline crate
//! set, and the operations we need (prefix tests, downset enumeration,
//! per-variable minimality) are domain-specific anyway.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{Error, Result};

/// The kind(s) of conflict an edge represents, as a bit set.
///
/// An edge in a conflict graph may simultaneously be a write-write, a
/// write-read, and a read-write conflict (e.g. two increments of the same
/// variable), so kinds are flags rather than an enum.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EdgeKinds(u8);

impl EdgeKinds {
    /// No conflict recorded (used for structural edges such as the write
    /// graph's *add an edge* operation).
    pub const NONE: EdgeKinds = EdgeKinds(0);
    /// Write-write conflict: `O` writes `x`, `P` writes `x`, `O` is `P`'s
    /// preceding write.
    pub const WW: EdgeKinds = EdgeKinds(1);
    /// Write-read conflict: `O` writes `x`, `P` reads `x`, `O` is `P`'s
    /// preceding write.
    pub const WR: EdgeKinds = EdgeKinds(2);
    /// Read-write conflict: `O` reads `x`, `P` writes `x`, `P` is `O`'s
    /// following write.
    pub const RW: EdgeKinds = EdgeKinds(4);

    /// Union of both kind sets.
    #[must_use]
    pub fn union(self, other: EdgeKinds) -> EdgeKinds {
        EdgeKinds(self.0 | other.0)
    }

    /// Does this kind set contain all kinds in `other`?
    #[must_use]
    pub fn contains(self, other: EdgeKinds) -> bool {
        self.0 & other.0 == other.0
    }

    /// Does this kind set intersect `other`?
    #[must_use]
    pub fn intersects(self, other: EdgeKinds) -> bool {
        self.0 & other.0 != 0
    }

    /// Is the edge *solely* a write-read conflict? These are exactly the
    /// edges the installation graph removes (§3.1).
    #[must_use]
    pub fn is_pure_write_read(self) -> bool {
        self == EdgeKinds::WR
    }

    /// Is the kind set empty?
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for EdgeKinds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.contains(EdgeKinds::WW) {
            parts.push("ww");
        }
        if self.contains(EdgeKinds::WR) {
            parts.push("wr");
        }
        if self.contains(EdgeKinds::RW) {
            parts.push("rw");
        }
        if parts.is_empty() {
            parts.push("∅");
        }
        write!(f, "{}", parts.join("|"))
    }
}

/// A set of node indices, backed by a bit vector.
///
/// Used for installed sets, prefixes, reachability frontiers, and downset
/// enumeration. All operations are O(words).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// The empty set over a universe of `len` nodes.
    #[must_use]
    pub fn new(len: usize) -> NodeSet {
        NodeSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over a universe of `len` nodes.
    #[must_use]
    pub fn full(len: usize) -> NodeSet {
        let mut s = NodeSet::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// Builds a set from explicit indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> NodeSet {
        let mut s = NodeSet::new(len);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// The universe size.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts node `i`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "node {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] >> b & 1;
        self.words[w] |= 1 << b;
        was == 0
    }

    /// Removes node `i`; returns whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] >> b & 1;
        self.words[w] &= !(1 << b);
        was == 1
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of members.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Is `self` a subset of `other`?
    #[must_use]
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & !b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place set difference (`self -= other`).
    pub fn difference_with(&mut self, other: &NodeSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The complement within the universe.
    #[must_use]
    pub fn complement(&self) -> NodeSet {
        let mut out = NodeSet::new(self.len);
        for (o, &w) in out.words.iter_mut().zip(&self.words) {
            *o = !w;
        }
        // Mask off bits beyond the universe.
        if !self.len.is_multiple_of(64) {
            if let Some(last) = out.words.last_mut() {
                *last &= (1u64 << (self.len % 64)) - 1;
            }
        }
        out
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.contains(i))
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for NodeSet {
    /// Collects indices into a set whose universe is `max + 1`. Mostly
    /// for tests; prefer [`NodeSet::from_indices`] with an explicit
    /// universe.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> NodeSet {
        let indices: Vec<usize> = iter.into_iter().collect();
        let len = indices.iter().copied().max().map_or(0, |m| m + 1);
        NodeSet::from_indices(len, indices)
    }
}

/// A directed acyclic graph over dense node indices `0..n`, with
/// [`EdgeKinds`]-labeled edges.
#[derive(Clone, PartialEq, Eq)]
pub struct Dag {
    succ: Vec<BTreeMap<usize, EdgeKinds>>,
    pred: Vec<BTreeMap<usize, EdgeKinds>>,
}

impl Dag {
    /// An edgeless graph with `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Dag {
        Dag {
            succ: vec![BTreeMap::new(); n],
            pred: vec![BTreeMap::new(); n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// Is the graph empty (no nodes)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Total number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(BTreeMap::len).sum()
    }

    /// Adds (or widens) the edge `u → v`, merging kinds with any existing
    /// edge.
    ///
    /// # Errors
    ///
    /// [`Error::SelfEdge`] or [`Error::NoSuchNode`]. Acyclicity is *not*
    /// checked here (conflict-graph construction guarantees it; the write
    /// graph checks explicitly via [`Dag::reaches`]).
    pub fn add_edge(&mut self, u: usize, v: usize, kinds: EdgeKinds) -> Result<()> {
        if u == v {
            return Err(Error::SelfEdge(u));
        }
        let n = self.len();
        if u >= n {
            return Err(Error::NoSuchNode(u));
        }
        if v >= n {
            return Err(Error::NoSuchNode(v));
        }
        let e = self.succ[u].entry(v).or_insert(EdgeKinds::NONE);
        *e = e.union(kinds);
        let e = self.pred[v].entry(u).or_insert(EdgeKinds::NONE);
        *e = e.union(kinds);
        Ok(())
    }

    /// The kinds on edge `u → v`, or `None` if absent.
    #[must_use]
    pub fn edge(&self, u: usize, v: usize) -> Option<EdgeKinds> {
        self.succ.get(u).and_then(|m| m.get(&v)).copied()
    }

    /// Direct successors of `u` with edge kinds.
    pub fn successors(&self, u: usize) -> impl Iterator<Item = (usize, EdgeKinds)> + '_ {
        self.succ[u].iter().map(|(&v, &k)| (v, k))
    }

    /// Direct predecessors of `u` with edge kinds.
    pub fn predecessors(&self, u: usize) -> impl Iterator<Item = (usize, EdgeKinds)> + '_ {
        self.pred[u].iter().map(|(&v, &k)| (v, k))
    }

    /// All edges `(u, v, kinds)` in ascending order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, EdgeKinds)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(u, m)| m.iter().map(move |(&v, &k)| (u, v, k)))
    }

    /// Is there a path (length ≥ 1) from `u` to `v`?
    #[must_use]
    pub fn reaches(&self, u: usize, v: usize) -> bool {
        if u == v {
            return false;
        }
        let mut seen = NodeSet::new(self.len());
        let mut stack = vec![u];
        while let Some(x) = stack.pop() {
            for (y, _) in self.successors(x) {
                if y == v {
                    return true;
                }
                if seen.insert(y) {
                    stack.push(y);
                }
            }
        }
        false
    }

    /// The set of all (transitive) predecessors of the nodes in `seed`
    /// (excluding `seed` itself unless reachable from another seed).
    #[must_use]
    pub fn ancestors_of(&self, seed: &NodeSet) -> NodeSet {
        let mut out = NodeSet::new(self.len());
        let mut stack: Vec<usize> = seed.iter().collect();
        while let Some(x) = stack.pop() {
            for (p, _) in self.predecessors(x) {
                if out.insert(p) {
                    stack.push(p);
                }
            }
        }
        out
    }

    /// Is `set` a prefix: closed under predecessors?
    #[must_use]
    pub fn is_prefix(&self, set: &NodeSet) -> bool {
        set.iter()
            .all(|n| self.predecessors(n).all(|(p, _)| set.contains(p)))
    }

    /// The smallest prefix containing `seed` (its downward closure).
    #[must_use]
    pub fn prefix_closure(&self, seed: &NodeSet) -> NodeSet {
        let mut out = seed.clone();
        out.union_with(&self.ancestors_of(seed));
        out
    }

    /// A topological order of all nodes; ties broken by ascending index,
    /// so for graphs generated from a history this returns the original
    /// invocation order.
    ///
    /// # Errors
    ///
    /// [`Error::WouldCreateCycle`] if the graph is cyclic.
    pub fn topo_order(&self) -> Result<Vec<usize>> {
        let n = self.len();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.pred[v].len()).collect();
        // Min-heap behaviour via sorted ready list: we pop the smallest
        // ready index to make the order deterministic.
        let mut ready: std::collections::BTreeSet<usize> =
            (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(&v) = ready.iter().next() {
            ready.remove(&v);
            out.push(v);
            for (w, _) in self.successors(v) {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    ready.insert(w);
                }
            }
        }
        if out.len() == n {
            Ok(out)
        } else {
            Err(Error::WouldCreateCycle)
        }
    }

    /// The minimal elements of `set`: members with no predecessor *in
    /// `set`* via any path through the whole graph.
    ///
    /// Minimality is with respect to the partial order the DAG induces,
    /// not mere edge-adjacency: a member can be preceded by another
    /// member via a path through non-members.
    #[must_use]
    pub fn minimal_in(&self, set: &NodeSet) -> Vec<usize> {
        set.iter()
            .filter(|&n| {
                // BFS backwards from n; if we meet a member, n is not minimal.
                let mut seen = NodeSet::new(self.len());
                let mut stack = vec![n];
                while let Some(x) = stack.pop() {
                    for (p, _) in self.predecessors(x) {
                        if set.contains(p) {
                            return false;
                        }
                        if seen.insert(p) {
                            stack.push(p);
                        }
                    }
                }
                true
            })
            .collect()
    }

    /// Enumerates every prefix (downset) of the graph, invoking `f` on
    /// each, up to `limit` prefixes. Returns the number enumerated, or
    /// `None` if the limit was hit. Exponential in general — intended for
    /// the checker's small histories.
    pub fn for_each_prefix(&self, limit: usize, mut f: impl FnMut(&NodeSet)) -> Option<usize> {
        // Depth-first over nodes in topological order: at each node,
        // either exclude it (and then exclude everything after that
        // depends on it) or include it if all predecessors are included.
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => return Some(0),
        };
        let mut count = 0usize;
        let mut cur = NodeSet::new(self.len());
        // Recursive enumeration without recursion: state machine over
        // positions with an explicit decision stack.
        fn rec(
            dag: &Dag,
            order: &[usize],
            pos: usize,
            cur: &mut NodeSet,
            count: &mut usize,
            limit: usize,
            f: &mut impl FnMut(&NodeSet),
        ) -> bool {
            if *count >= limit {
                return false;
            }
            if pos == order.len() {
                *count += 1;
                f(cur);
                return true;
            }
            let n = order[pos];
            // Option 1: exclude n.
            if !rec(dag, order, pos + 1, cur, count, limit, f) {
                return false;
            }
            // Option 2: include n if all predecessors are in.
            if dag.predecessors(n).all(|(p, _)| cur.contains(p)) {
                cur.insert(n);
                let ok = rec(dag, order, pos + 1, cur, count, limit, f);
                cur.remove(n);
                if !ok {
                    return false;
                }
            }
            true
        }
        if rec(self, &order, 0, &mut cur, &mut count, limit, &mut f) {
            Some(count)
        } else {
            None
        }
    }

    /// Counts prefixes up to `limit`; `None` means "at least `limit`".
    #[must_use]
    pub fn count_prefixes(&self, limit: usize) -> Option<usize> {
        self.for_each_prefix(limit, |_| {})
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dag({} nodes)", self.len())?;
        for (u, v, k) in self.edges() {
            writeln!(f, "  {u} -[{k:?}]-> {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g = Dag::new(4);
        g.add_edge(0, 1, EdgeKinds::WW).unwrap();
        g.add_edge(0, 2, EdgeKinds::WR).unwrap();
        g.add_edge(1, 3, EdgeKinds::RW).unwrap();
        g.add_edge(2, 3, EdgeKinds::WW).unwrap();
        g
    }

    #[test]
    fn edge_kind_sets() {
        let k = EdgeKinds::WW.union(EdgeKinds::RW);
        assert!(k.contains(EdgeKinds::WW));
        assert!(k.intersects(EdgeKinds::RW));
        assert!(!k.contains(EdgeKinds::WR));
        assert!(!k.is_pure_write_read());
        assert!(EdgeKinds::WR.is_pure_write_read());
    }

    #[test]
    fn nodeset_basics() {
        let mut s = NodeSet::new(100);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(99));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.count(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![99]);
    }

    #[test]
    fn nodeset_complement_masks_tail() {
        let s = NodeSet::from_indices(70, [0, 69]);
        let c = s.complement();
        assert_eq!(c.count(), 68);
        assert!(!c.contains(0));
        assert!(!c.contains(69));
        assert!(c.contains(1));
    }

    #[test]
    fn nodeset_subset_and_ops() {
        let a = NodeSet::from_indices(10, [1, 2]);
        let b = NodeSet::from_indices(10, [1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, b);
        let mut d = b.clone();
        d.difference_with(&a);
        assert_eq!(d, NodeSet::from_indices(10, [3]));
    }

    #[test]
    fn self_edge_rejected() {
        let mut g = Dag::new(2);
        assert_eq!(g.add_edge(1, 1, EdgeKinds::WW), Err(Error::SelfEdge(1)));
    }

    #[test]
    fn edge_kinds_merge() {
        let mut g = Dag::new(2);
        g.add_edge(0, 1, EdgeKinds::WW).unwrap();
        g.add_edge(0, 1, EdgeKinds::RW).unwrap();
        assert_eq!(g.edge(0, 1), Some(EdgeKinds::WW.union(EdgeKinds::RW)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert!(g.reaches(0, 3));
        assert!(!g.reaches(3, 0));
        assert!(!g.reaches(1, 2));
        assert!(!g.reaches(0, 0)); // paths have length >= 1
    }

    #[test]
    fn prefix_tests() {
        let g = diamond();
        assert!(g.is_prefix(&NodeSet::from_indices(4, [])));
        assert!(g.is_prefix(&NodeSet::from_indices(4, [0])));
        assert!(g.is_prefix(&NodeSet::from_indices(4, [0, 1])));
        assert!(g.is_prefix(&NodeSet::from_indices(4, [0, 1, 2, 3])));
        assert!(!g.is_prefix(&NodeSet::from_indices(4, [1])));
        assert!(!g.is_prefix(&NodeSet::from_indices(4, [0, 3])));
    }

    #[test]
    fn prefix_closure_adds_ancestors() {
        let g = diamond();
        let c = g.prefix_closure(&NodeSet::from_indices(4, [3]));
        assert_eq!(c, NodeSet::from_indices(4, [0, 1, 2, 3]));
    }

    #[test]
    fn topo_order_deterministic() {
        let g = diamond();
        assert_eq!(g.topo_order().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn topo_order_detects_cycle() {
        let mut g = Dag::new(2);
        g.add_edge(0, 1, EdgeKinds::WW).unwrap();
        g.add_edge(1, 0, EdgeKinds::WW).unwrap();
        assert_eq!(g.topo_order(), Err(Error::WouldCreateCycle));
    }

    #[test]
    fn minimal_in_uses_paths_not_edges() {
        // 0 -> 1 -> 2; set {0, 2}: 2 is preceded by 0 via the path
        // through the non-member 1, so only 0 is minimal.
        let mut g = Dag::new(3);
        g.add_edge(0, 1, EdgeKinds::WW).unwrap();
        g.add_edge(1, 2, EdgeKinds::WW).unwrap();
        let set = NodeSet::from_indices(3, [0, 2]);
        assert_eq!(g.minimal_in(&set), vec![0]);
    }

    #[test]
    fn minimal_in_incomparable_members() {
        let g = diamond();
        let set = NodeSet::from_indices(4, [1, 2]);
        assert_eq!(g.minimal_in(&set), vec![1, 2]);
    }

    #[test]
    fn prefix_enumeration_diamond() {
        // Prefixes of the diamond: {}, {0}, {0,1}, {0,2}, {0,1,2},
        // {0,1,2,3} — six downsets.
        let g = diamond();
        assert_eq!(g.count_prefixes(1000), Some(6));
    }

    #[test]
    fn prefix_enumeration_respects_limit() {
        let g = Dag::new(20); // edgeless: 2^20 downsets
        assert_eq!(g.count_prefixes(100), None);
    }

    #[test]
    fn prefix_enumeration_antichain_free_graph() {
        // A chain of 5 has exactly 6 prefixes.
        let mut g = Dag::new(5);
        for i in 0..4 {
            g.add_edge(i, i + 1, EdgeKinds::WW).unwrap();
        }
        assert_eq!(g.count_prefixes(1000), Some(6));
    }

    #[test]
    fn enumerated_prefixes_are_prefixes() {
        let g = diamond();
        g.for_each_prefix(1000, |p| assert!(g.is_prefix(p)));
    }

    #[test]
    fn ancestors_of_seed() {
        let g = diamond();
        let a = g.ancestors_of(&NodeSet::from_indices(4, [3]));
        assert_eq!(a, NodeSet::from_indices(4, [0, 1, 2]));
    }
}
