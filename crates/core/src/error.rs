use std::fmt;

use crate::op::OpId;
use crate::state::Var;

/// Errors produced while constructing or manipulating the paper's objects.
///
/// Every precondition the paper states (acyclicity, prefix-closure,
/// installed-predecessor requirements, the *remove a write* side
/// condition, ...) is enforced and reported through this type rather than
/// by panicking, so the checker can probe illegal transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An operation assigned the same variable twice.
    DuplicateWrite(Var),
    /// An operation had an empty body; the paper's operations write at
    /// least one variable.
    EmptyWriteSet(OpId),
    /// History operations must carry ids equal to their position.
    MisnumberedHistory {
        /// Position in the sequence.
        position: usize,
        /// The id the operation actually carried.
        found: OpId,
    },
    /// A graph operation would have created a cycle.
    WouldCreateCycle,
    /// A self-edge was requested.
    SelfEdge(usize),
    /// A node index was out of range.
    NoSuchNode(usize),
    /// An operation id was not present in the history/log.
    NoSuchOp(OpId),
    /// `install` was applied to a write-graph node with an uninstalled
    /// predecessor.
    PredecessorNotInstalled {
        /// The node being installed.
        node: usize,
        /// The offending predecessor.
        predecessor: usize,
    },
    /// `install` was applied to an already-installed node.
    AlreadyInstalled(usize),
    /// *Add an edge* targeted an installed node, which the paper forbids.
    EdgeToInstalledNode(usize),
    /// *Collapse nodes* was given an empty set.
    EmptyCollapse,
    /// A collapse or edge addition mixed nodes that no longer exist
    /// (already collapsed away).
    StaleNode(usize),
    /// *Remove a write* violated its side condition: some uninstalled
    /// operation still needs to read the value.
    WriteStillNeeded {
        /// The variable whose write was to be removed.
        var: Var,
        /// An operation that still needs the value.
        reader: OpId,
    },
    /// The node does not write the requested variable.
    NoSuchWrite(Var),
    /// A replayed operation was not applicable in the current state
    /// (its read set does not match what it read in the original
    /// execution), so redo recovery has diverged.
    NotApplicable {
        /// The inapplicable operation.
        op: OpId,
        /// The first mismatching read variable.
        var: Var,
    },
    /// A replay order or redo schedule failed to cover the uninstalled
    /// set exactly (Theorem 3 replays *all* uninstalled operations, each
    /// once, and nothing else).
    OrderCoverageMismatch {
        /// An operation witnessing the mismatch.
        op: OpId,
        /// How the order mismatched on `op`.
        fault: CoverageFault,
    },
    /// The log's order contradicts the conflict graph.
    LogOrderViolation {
        /// Earlier operation in the conflict graph...
        before: OpId,
        /// ...that appears after this one in the log.
        after: OpId,
    },
    /// A checkpoint mentioned an operation that is not in the log.
    CheckpointNotInLog(OpId),
    /// The recovery invariant was violated; carries a human-readable
    /// description from [`crate::invariant`].
    InvariantViolated(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateWrite(v) => write!(f, "operation assigns variable {v:?} twice"),
            Error::EmptyWriteSet(id) => write!(f, "operation {id:?} has an empty write set"),
            Error::MisnumberedHistory { position, found } => write!(
                f,
                "operation at position {position} carries id {found:?}; history ids must equal positions"
            ),
            Error::WouldCreateCycle => write!(f, "graph operation would create a cycle"),
            Error::SelfEdge(n) => write!(f, "self edge on node {n}"),
            Error::NoSuchNode(n) => write!(f, "no such node {n}"),
            Error::NoSuchOp(id) => write!(f, "no such operation {id:?}"),
            Error::PredecessorNotInstalled { node, predecessor } => write!(
                f,
                "cannot install node {node}: predecessor {predecessor} is not installed"
            ),
            Error::AlreadyInstalled(n) => write!(f, "node {n} is already installed"),
            Error::EdgeToInstalledNode(n) => {
                write!(f, "cannot add an edge into installed node {n}")
            }
            Error::EmptyCollapse => write!(f, "collapse requires at least one node"),
            Error::StaleNode(n) => write!(f, "node {n} has been collapsed away"),
            Error::WriteStillNeeded { var, reader } => write!(
                f,
                "write to {var:?} cannot be removed: uninstalled operation {reader:?} reads it"
            ),
            Error::NoSuchWrite(v) => write!(f, "node does not write variable {v:?}"),
            Error::NotApplicable { op, var } => write!(
                f,
                "operation {op:?} is not applicable: read of {var:?} differs from the original execution"
            ),
            Error::OrderCoverageMismatch { op, fault } => match fault {
                CoverageFault::Missing => {
                    write!(f, "order does not cover uninstalled operation {op:?}")
                }
                CoverageFault::Installed => {
                    write!(f, "order contains installed operation {op:?}")
                }
                CoverageFault::Duplicated => {
                    write!(f, "order contains operation {op:?} more than once")
                }
            },
            Error::LogOrderViolation { before, after } => write!(
                f,
                "log order violates the conflict graph: {before:?} must precede {after:?}"
            ),
            Error::CheckpointNotInLog(id) => {
                write!(f, "checkpoint mentions operation {id:?} absent from the log")
            }
            Error::InvariantViolated(msg) => write!(f, "recovery invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// How an order failed to cover the uninstalled set (see
/// [`Error::OrderCoverageMismatch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageFault {
    /// An uninstalled operation is absent from the order.
    Missing,
    /// The order names an operation that is already installed.
    Installed,
    /// The order names the same operation twice.
    Duplicated,
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
