//! Parallel redo scheduling, the executable content of Theorem 3.
//!
//! Theorem 3 licenses more than sequential replay: starting from a state
//! explained by an installation-graph prefix σ, replaying the operations
//! outside σ in *any* order consistent with the conflict graph reaches
//! the final state. The conflict graph restricted to the uninstalled set
//! is therefore a dependency DAG for redo, and any two operations with no
//! path between them may run *concurrently* — they conflict on no
//! variable (see the soundness argument below), so neither can observe
//! or clobber the other.
//!
//! This module turns that observation into machinery:
//!
//! * [`RedoSchedule::plan`] computes a level (antichain) schedule of the
//!   uninstalled restriction by longest-path layering: level 0 holds the
//!   minimal uninstalled operations, level `k+1` the operations whose
//!   deepest uninstalled predecessor sits at level `k`. All operations
//!   within one level are pairwise non-adjacent in the restricted graph.
//! * [`RedoSchedule::validate`] checks a schedule's legality against an
//!   installed set: exact coverage of the uninstalled operations
//!   (reported via [`Error::OrderCoverageMismatch`]), every conflict edge
//!   within the uninstalled set going strictly forward in level order,
//!   and no two same-level operations sharing a variable one of them
//!   writes (both reported via [`Error::LogOrderViolation`]).
//! * [`RedoSchedule::components`] and [`RedoSchedule::partition_by_var`]
//!   expose the partition views: connected components of the restricted
//!   graph can be replayed with no synchronization at all, and when every
//!   uninstalled operation touches a single variable (the
//!   page-partitioned case of §6 — a "variable" is a page, an operation
//!   a page update), the components collapse to per-variable queues.
//!   That degenerate shape is why real systems can partition a redo log
//!   by page id and replay the partitions on independent threads.
//! * [`replay_parallel`] executes the planned schedule level by level on
//!   worker threads, verifying applicability per step exactly as
//!   [`replay_uninstalled`](crate::replay::replay_uninstalled) does;
//!   [`replay_parallel_checked`] additionally replays sequentially and
//!   insists on state equality.
//!
//! # Why level-parallel execution is sound
//!
//! Workers evaluate every operation of a level against the *frozen*
//! level-start state and the writes are applied only after the level
//! completes. This is equivalent to running the level's operations in
//! any serial order provided no two of them conflict. For a legal
//! installation-graph prefix that holds automatically: the installation
//! graph keeps every write-write edge, so the uninstalled writers of any
//! variable form a contiguous *suffix* of that variable's writer chain —
//! an installed writer implies all earlier writers are installed. Hence
//! any two uninstalled operations conflicting on `x` are linked by a
//! path of conflict edges that stays inside the uninstalled set, which
//! forces them onto different levels. [`RedoSchedule::validate`] checks
//! the no-same-level-conflict property explicitly anyway, so execution
//! is deterministic even for installed sets that are not legal prefixes.

use std::collections::BTreeMap;

use crate::conflict::ConflictGraph;
use crate::error::{CoverageFault, Error, Result};
use crate::graph::NodeSet;
use crate::history::History;
use crate::op::OpId;
use crate::replay::{check_applicable, replay_uninstalled};
use crate::state::{State, Value, Var};
use crate::state_graph::StateGraph;

/// A level (antichain) schedule of the conflict graph restricted to the
/// uninstalled operations.
///
/// Level `k` may only run once levels `0..k` have been applied; the
/// operations *within* a level are mutually independent and may run
/// concurrently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedoSchedule {
    levels: Vec<Vec<OpId>>,
}

impl RedoSchedule {
    /// Plans the schedule for redoing the complement of `installed`:
    /// longest-path layering of the conflict graph restricted to the
    /// uninstalled set.
    ///
    /// The result is legal by construction
    /// ([`RedoSchedule::validate`] accepts it) and has minimal depth
    /// among level schedules: `depth()` equals the longest chain of
    /// conflict edges through uninstalled operations.
    #[must_use]
    pub fn plan(cg: &ConflictGraph, installed: &NodeSet) -> RedoSchedule {
        let n = cg.len();
        let order = cg
            .dag()
            .topo_order()
            .expect("conflict graphs are acyclic by construction");
        let mut level = vec![0usize; n];
        let mut levels: Vec<Vec<OpId>> = Vec::new();
        for &v in &order {
            if installed.contains(v) {
                continue;
            }
            let depth = cg
                .dag()
                .predecessors(v)
                .filter(|&(p, _)| !installed.contains(p))
                .map(|(p, _)| level[p] + 1)
                .max()
                .unwrap_or(0);
            level[v] = depth;
            if levels.len() <= depth {
                levels.resize(depth + 1, Vec::new());
            }
            levels[depth].push(OpId(v as u32));
        }
        // Topological order with ascending tie-break means each level is
        // already sorted by op id; keep that as the canonical form.
        RedoSchedule { levels }
    }

    /// Builds a schedule from explicit levels, e.g. to probe
    /// [`RedoSchedule::validate`] with deliberately illegal shapes.
    #[must_use]
    pub fn from_levels(levels: Vec<Vec<OpId>>) -> RedoSchedule {
        RedoSchedule { levels }
    }

    /// The levels, outermost first.
    #[must_use]
    pub fn levels(&self) -> &[Vec<OpId>] {
        &self.levels
    }

    /// The schedule flattened to a single replay order (levels in
    /// sequence, each level in ascending op order) — a linear extension
    /// of the restricted conflict graph, suitable for
    /// [`replay_uninstalled_in_order`](crate::replay::replay_uninstalled_in_order).
    #[must_use]
    pub fn order(&self) -> Vec<OpId> {
        self.levels.iter().flatten().copied().collect()
    }

    /// Total number of scheduled operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Is the schedule empty (nothing to redo)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(Vec::is_empty)
    }

    /// Number of levels — the critical-path length of redo.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Size of the widest level — the maximum exploitable parallelism.
    #[must_use]
    pub fn width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Checks the schedule's legality for redoing the complement of
    /// `installed`.
    ///
    /// # Errors
    ///
    /// * [`Error::NoSuchOp`] — the schedule names an id outside the
    ///   graph.
    /// * [`Error::OrderCoverageMismatch`] — the schedule misses an
    ///   uninstalled operation, names an installed one, or names an
    ///   operation twice (Theorem 3 replays all uninstalled operations,
    ///   each once, and nothing else).
    /// * [`Error::LogOrderViolation`] — a conflict edge within the
    ///   uninstalled set does not go strictly forward in level order, or
    ///   two same-level operations share a variable one of them writes
    ///   (they would race instead of being ordered).
    pub fn validate(&self, cg: &ConflictGraph, installed: &NodeSet) -> Result<()> {
        let n = cg.len();
        let mut level_of = vec![usize::MAX; n];
        let mut seen = NodeSet::new(n);
        for (depth, level) in self.levels.iter().enumerate() {
            for &id in level {
                if id.index() >= n {
                    return Err(Error::NoSuchOp(id));
                }
                if installed.contains(id.index()) {
                    return Err(Error::OrderCoverageMismatch {
                        op: id,
                        fault: CoverageFault::Installed,
                    });
                }
                if !seen.insert(id.index()) {
                    return Err(Error::OrderCoverageMismatch {
                        op: id,
                        fault: CoverageFault::Duplicated,
                    });
                }
                level_of[id.index()] = depth;
            }
        }
        let expected = installed.complement();
        if let Some(missing) = expected.iter().find(|&i| !seen.contains(i)) {
            return Err(Error::OrderCoverageMismatch {
                op: OpId(missing as u32),
                fault: CoverageFault::Missing,
            });
        }
        // Every conflict edge inside the uninstalled set must go strictly
        // forward in level order.
        for (u, v, _) in cg.dag().edges() {
            if level_of[u] != usize::MAX && level_of[v] != usize::MAX && level_of[u] >= level_of[v]
            {
                return Err(Error::LogOrderViolation {
                    before: OpId(u as u32),
                    after: OpId(v as u32),
                });
            }
        }
        // No two same-level operations may share a variable one of them
        // writes: concurrent execution would race where the conflict
        // graph demands an order. (Automatic for installation-graph
        // prefixes; checked so arbitrary installed sets stay safe.)
        for level in &self.levels {
            let mut writer: BTreeMap<Var, OpId> = BTreeMap::new();
            for &id in level {
                for &x in cg.writes_of(id) {
                    if let Some(&other) = writer.get(&x) {
                        return Err(Error::LogOrderViolation {
                            before: other,
                            after: id,
                        });
                    }
                    writer.insert(x, id);
                }
            }
            for &id in level {
                for &x in cg.reads_of(id) {
                    if let Some(&w) = writer.get(&x) {
                        if w != id {
                            return Err(Error::LogOrderViolation {
                                before: w,
                                after: id,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The connected components of the restricted conflict graph, each
    /// listed in schedule order. Components share no variable, so they
    /// can be replayed on independent workers with no cross-component
    /// synchronization whatsoever — the general form of partitioned
    /// redo.
    #[must_use]
    pub fn components(&self, cg: &ConflictGraph) -> Vec<Vec<OpId>> {
        let n = cg.len();
        let mut comp = vec![usize::MAX; n];
        let mut scheduled = NodeSet::new(n);
        for &id in self.levels.iter().flatten() {
            scheduled.insert(id.index());
        }
        let mut next = 0usize;
        for &seed in self.levels.iter().flatten() {
            if comp[seed.index()] != usize::MAX {
                continue;
            }
            comp[seed.index()] = next;
            let mut stack = vec![seed.index()];
            while let Some(u) = stack.pop() {
                let nbrs = cg
                    .dag()
                    .successors(u)
                    .chain(cg.dag().predecessors(u))
                    .map(|(v, _)| v)
                    .collect::<Vec<_>>();
                for v in nbrs {
                    if scheduled.contains(v) && comp[v] == usize::MAX {
                        comp[v] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        let mut out = vec![Vec::new(); next];
        for &id in self.levels.iter().flatten() {
            out[comp[id.index()]].push(id);
        }
        out
    }

    /// The per-variable partition view for the page-partitioned case.
    ///
    /// Returns `Some` exactly when every scheduled operation accesses a
    /// single variable — then each component of
    /// [`RedoSchedule::components`] lives on one variable, and the map
    /// sends that variable (page) to its operations in schedule order
    /// (which, by Lemma 1, is their log order). This is the shape §6's
    /// physical and physiological methods exploit: LSN order only
    /// matters within a page, so a stable log can be split by page id
    /// and the partitions redone concurrently. Returns `None` when some
    /// operation spans variables, in which case only the coarser
    /// component partition is safe.
    #[must_use]
    pub fn partition_by_var(&self, cg: &ConflictGraph) -> Option<BTreeMap<Var, Vec<OpId>>> {
        let mut out: BTreeMap<Var, Vec<OpId>> = BTreeMap::new();
        for &id in self.levels.iter().flatten() {
            let mut accessed = cg
                .reads_of(id)
                .union(cg.writes_of(id))
                .copied()
                .collect::<Vec<_>>();
            accessed.dedup();
            match accessed.as_slice() {
                &[x] => out.entry(x).or_default().push(id),
                _ => return None,
            }
        }
        Some(out)
    }
}

fn apply_level(
    history: &History,
    sg: &StateGraph,
    level: &[OpId],
    cur: &mut State,
    threads: usize,
) -> Result<()> {
    // Small levels (or a serial executor) run inline: spawning threads
    // for a handful of expression evaluations costs more than it saves.
    if threads <= 1 || level.len() <= 1 {
        for &id in level {
            let op = history.op(id);
            check_applicable(sg, op, cur)?;
            op.apply(cur);
        }
        return Ok(());
    }
    // Freeze the level-start state; workers verify applicability and
    // compute outputs against it, the main thread applies the writes
    // after the join. Sound because validate() guarantees same-level
    // operations share no written variable.
    let frozen: &State = cur;
    let chunk = level.len().div_ceil(threads);
    let results: Result<Vec<Vec<(Var, Value)>>> = std::thread::scope(|s| {
        let handles: Vec<_> = level
            .chunks(chunk)
            .map(|ids| {
                s.spawn(move || -> Result<Vec<(Var, Value)>> {
                    let mut writes = Vec::new();
                    for &id in ids {
                        let op = history.op(id);
                        check_applicable(sg, op, frozen)?;
                        writes.extend(op.outputs(frozen));
                    }
                    Ok(writes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("redo worker panicked"))
            .collect()
    });
    for (x, v) in results?.into_iter().flatten() {
        cur.set(x, v);
    }
    Ok(())
}

/// Executes an explicit schedule against `state` on up to `threads`
/// worker threads, after checking its legality.
///
/// # Errors
///
/// Everything [`RedoSchedule::validate`] reports, plus
/// [`Error::NotApplicable`] if a replayed operation would read a value
/// differing from the original execution.
pub fn replay_schedule(
    history: &History,
    cg: &ConflictGraph,
    sg: &StateGraph,
    installed: &NodeSet,
    schedule: &RedoSchedule,
    state: &State,
    threads: usize,
) -> Result<State> {
    schedule.validate(cg, installed)?;
    let mut cur = state.clone();
    for level in schedule.levels() {
        apply_level(history, sg, level, &mut cur, threads)?;
    }
    Ok(cur)
}

/// Plans and executes the level schedule for the complement of
/// `installed` on up to `threads` worker threads: the parallel
/// counterpart of [`replay_uninstalled`].
///
/// By Theorem 3, when `installed` is an installation-graph prefix and
/// `state` is explained by it, the result equals the sequential replay
/// (and the history's final state), with every step applicable.
///
/// # Errors
///
/// [`Error::NotApplicable`] if some operation would read a value
/// differing from the original execution — the signature of an
/// unexplainable starting state. Schedule-legality errors cannot occur
/// for a planned schedule.
pub fn replay_parallel(
    history: &History,
    cg: &ConflictGraph,
    sg: &StateGraph,
    installed: &NodeSet,
    state: &State,
    threads: usize,
) -> Result<State> {
    let schedule = RedoSchedule::plan(cg, installed);
    replay_schedule(history, cg, sg, installed, &schedule, state, threads)
}

/// [`replay_parallel`], differentially checked: also replays
/// sequentially via [`replay_uninstalled`] and insists the two agree.
///
/// # Errors
///
/// As [`replay_parallel`], plus [`Error::InvariantViolated`] if the
/// parallel and sequential replays disagree — which Theorem 3 says
/// cannot happen from an explained state, so any such report is a bug in
/// the scheduler (or a misuse with an illegal installed set).
pub fn replay_parallel_checked(
    history: &History,
    cg: &ConflictGraph,
    sg: &StateGraph,
    installed: &NodeSet,
    state: &State,
    threads: usize,
) -> Result<State> {
    let parallel = replay_parallel(history, cg, sg, installed, state, threads)?;
    let serial = replay_uninstalled(history, sg, installed, state)?;
    if parallel != serial {
        return Err(Error::InvariantViolated(format!(
            "parallel replay diverged from sequential replay: {parallel:?} vs {serial:?}"
        )));
    }
    Ok(parallel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::history::examples::{efg, figure4, hj, scenario1, scenario2, scenario3};
    use crate::installation::InstallationGraph;
    use crate::op::Operation;
    use crate::replay::replay_uninstalled_in_order;

    fn setup(h: &History) -> (ConflictGraph, InstallationGraph, StateGraph) {
        let cg = ConflictGraph::generate(h);
        let ig = InstallationGraph::from_conflict(&cg);
        let sg = StateGraph::from_conflict(h, &cg, &State::zeroed());
        (cg, ig, sg)
    }

    #[test]
    fn planned_schedules_validate_and_flatten_to_linear_extensions() {
        for h in [
            scenario1(),
            scenario2(),
            scenario3(),
            figure4(),
            efg(),
            hj(),
        ] {
            let (cg, ig, sg) = setup(&h);
            ig.dag()
                .for_each_prefix(1_000, |p| {
                    let schedule = RedoSchedule::plan(&cg, p);
                    schedule.validate(&cg, p).unwrap();
                    assert_eq!(schedule.len(), h.len() - p.count());
                    let s = sg.state_determined_by(p);
                    let via_order =
                        replay_uninstalled_in_order(&h, &cg, &sg, p, &schedule.order(), &s)
                            .unwrap();
                    assert_eq!(via_order, sg.final_state());
                })
                .unwrap();
        }
    }

    #[test]
    fn parallel_replay_matches_serial_on_all_prefixes() {
        for h in [
            scenario1(),
            scenario2(),
            scenario3(),
            figure4(),
            efg(),
            hj(),
        ] {
            let (cg, ig, sg) = setup(&h);
            for threads in [1, 2, 4] {
                ig.dag()
                    .for_each_prefix(1_000, |p| {
                        let s = sg.state_determined_by(p);
                        let out = replay_parallel_checked(&h, &cg, &sg, p, &s, threads).unwrap();
                        assert_eq!(out, sg.final_state());
                    })
                    .unwrap();
            }
        }
    }

    #[test]
    fn depth_and_width_of_chain_and_antichain() {
        // hj is a two-op chain (both touch y): depth 2, width 1, one
        // component.
        let h = hj();
        let (cg, _ig, _sg) = setup(&h);
        let schedule = RedoSchedule::plan(&cg, &NodeSet::new(h.len()));
        assert_eq!(schedule.depth(), 2);
        assert_eq!(schedule.width(), 1);
        assert_eq!(schedule.components(&cg).len(), 1);

        // Two ops on disjoint variables: depth 1, width 2, two
        // components.
        let h = History::new(vec![
            Operation::builder(OpId(0))
                .assign(Var(0), Expr::constant(1))
                .build()
                .unwrap(),
            Operation::builder(OpId(1))
                .assign(Var(1), Expr::constant(2))
                .build()
                .unwrap(),
        ])
        .unwrap();
        let (cg, _ig, _sg) = setup(&h);
        let schedule = RedoSchedule::plan(&cg, &NodeSet::new(h.len()));
        assert_eq!(schedule.depth(), 1);
        assert_eq!(schedule.width(), 2);
        assert_eq!(schedule.components(&cg).len(), 2);
    }

    #[test]
    fn reversed_conflict_edge_is_rejected() {
        let h = hj(); // H -> J
        let (cg, _ig, _sg) = setup(&h);
        let none = NodeSet::new(h.len());
        let bad = RedoSchedule::from_levels(vec![vec![OpId(1)], vec![OpId(0)]]);
        assert_eq!(
            bad.validate(&cg, &none),
            Err(Error::LogOrderViolation {
                before: OpId(0),
                after: OpId(1)
            })
        );
        // Collapsing the chain into one level races on the shared
        // variable and is equally illegal.
        let flat = RedoSchedule::from_levels(vec![vec![OpId(0), OpId(1)]]);
        assert_eq!(
            flat.validate(&cg, &none),
            Err(Error::LogOrderViolation {
                before: OpId(0),
                after: OpId(1)
            })
        );
    }

    #[test]
    fn coverage_faults_are_reported() {
        let h = hj();
        let (cg, _ig, _sg) = setup(&h);
        let none = NodeSet::new(h.len());
        let missing = RedoSchedule::from_levels(vec![vec![OpId(0)]]);
        assert_eq!(
            missing.validate(&cg, &none),
            Err(Error::OrderCoverageMismatch {
                op: OpId(1),
                fault: CoverageFault::Missing
            })
        );
        let duplicated =
            RedoSchedule::from_levels(vec![vec![OpId(0)], vec![OpId(0)], vec![OpId(1)]]);
        assert_eq!(
            duplicated.validate(&cg, &none),
            Err(Error::OrderCoverageMismatch {
                op: OpId(0),
                fault: CoverageFault::Duplicated
            })
        );
        let installed = NodeSet::from_indices(h.len(), [0]);
        let stale = RedoSchedule::from_levels(vec![vec![OpId(0)], vec![OpId(1)]]);
        assert_eq!(
            stale.validate(&cg, &installed),
            Err(Error::OrderCoverageMismatch {
                op: OpId(0),
                fault: CoverageFault::Installed
            })
        );
        let unknown = RedoSchedule::from_levels(vec![vec![OpId(7)]]);
        assert_eq!(unknown.validate(&cg, &none), Err(Error::NoSuchOp(OpId(7))));
    }

    #[test]
    fn single_variable_histories_partition_by_var() {
        // Page-shaped history: every op reads and writes one variable.
        // Two increments of Var(0), one of Var(1): two partitions, each
        // in schedule (= log) order.
        let incr = |id: u32, x: Var| {
            Operation::builder(OpId(id))
                .assign(x, Expr::read(x).add(Expr::constant(1)))
                .build()
                .unwrap()
        };
        let h = History::new(vec![incr(0, Var(0)), incr(1, Var(1)), incr(2, Var(0))]).unwrap();
        let (cg, _ig, _sg) = setup(&h);
        let schedule = RedoSchedule::plan(&cg, &NodeSet::new(h.len()));
        let parts = schedule.partition_by_var(&cg).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[&Var(0)], vec![OpId(0), OpId(2)]);
        assert_eq!(parts[&Var(1)], vec![OpId(1)]);

        // scenario2: A reads y and writes x — spans two variables.
        let h = scenario2();
        let (cg, _ig, _sg) = setup(&h);
        let schedule = RedoSchedule::plan(&cg, &NodeSet::new(h.len()));
        assert!(schedule.partition_by_var(&cg).is_none());
    }

    #[test]
    fn inapplicable_state_detected_in_parallel() {
        let h = scenario1();
        let (cg, _ig, sg) = setup(&h);
        let bad = State::from_pairs([(Var(1), Value(2))]);
        let err = replay_parallel(&h, &cg, &sg, &NodeSet::new(2), &bad, 4).unwrap_err();
        assert_eq!(
            err,
            Error::NotApplicable {
                op: OpId(0),
                var: Var(1)
            }
        );
    }
}
