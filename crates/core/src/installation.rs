//! The installation graph (§3.1).
//!
//! The installation graph is the conflict graph with the edges that
//! result *solely* from write-read conflicts removed. Its prefixes are
//! exactly the sets of operations that may appear installed in a
//! potentially recoverable state: a state update process that installs
//! operations in installation-graph order keeps the state explainable,
//! and hence recoverable (Theorem 3).
//!
//! The paper's earlier formulation (VLDB 1995) also removed certain
//! write-write edges via an elaborate construction; §1.3 notes that the
//! two definitions are equivalent for explainability, so this simpler
//! weakening is the one implemented here.

use crate::conflict::ConflictGraph;
use crate::graph::{Dag, NodeSet};
use crate::op::OpId;

/// The installation graph derived from a conflict graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InstallationGraph {
    dag: Dag,
    removed_edges: Vec<(OpId, OpId)>,
}

impl InstallationGraph {
    /// Derives the installation graph: keep an edge iff its kinds
    /// include a write-write or read-write conflict.
    #[must_use]
    pub fn from_conflict(cg: &ConflictGraph) -> InstallationGraph {
        let mut dag = Dag::new(cg.len());
        let mut removed = Vec::new();
        for (u, v, kinds) in cg.dag().edges() {
            if kinds.is_pure_write_read() {
                removed.push((OpId(u as u32), OpId(v as u32)));
            } else {
                dag.add_edge(u, v, kinds)
                    .expect("edges of a DAG remain valid");
            }
        }
        InstallationGraph {
            dag,
            removed_edges: removed,
        }
    }

    /// The underlying DAG.
    #[must_use]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dag.len()
    }

    /// Is the graph empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dag.is_empty()
    }

    /// The conflict-graph edges the derivation dropped (the dotted edges
    /// of Figure 5).
    #[must_use]
    pub fn removed_edges(&self) -> &[(OpId, OpId)] {
        &self.removed_edges
    }

    /// Is `set` a prefix of the installation graph?
    #[must_use]
    pub fn is_prefix(&self, set: &NodeSet) -> bool {
        self.dag.is_prefix(set)
    }

    /// Counts the prefixes of the installation graph, up to `limit`.
    /// Comparing this with the conflict graph's count quantifies the
    /// extra installation freedom the weakening buys (Figure 5's point).
    #[must_use]
    pub fn count_prefixes(&self, limit: usize) -> Option<usize> {
        self.dag.count_prefixes(limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKinds;
    use crate::history::examples::{efg, figure4, hj, scenario1, scenario2, scenario3};

    #[test]
    fn figure5_drops_only_the_wr_edge() {
        // Conflict graph of Figure 4: O-wr->P, O-ww|rw->Q, P-rw->Q.
        // Installation graph keeps O->Q and P->Q, drops O->P.
        let cg = ConflictGraph::generate(&figure4());
        let ig = InstallationGraph::from_conflict(&cg);
        assert_eq!(ig.dag().edge(0, 1), None);
        assert!(ig.dag().edge(0, 2).is_some());
        assert!(ig.dag().edge(1, 2).is_some());
        assert_eq!(ig.removed_edges(), &[(OpId(0), OpId(1))]);
    }

    #[test]
    fn scenario1_keeps_rw_edge() {
        let cg = ConflictGraph::generate(&scenario1());
        let ig = InstallationGraph::from_conflict(&cg);
        assert_eq!(ig.dag().edge(0, 1), Some(EdgeKinds::RW));
        // {B} alone is not an installation prefix.
        assert!(!ig.is_prefix(&NodeSet::from_indices(2, [1])));
    }

    #[test]
    fn scenario2_drops_wr_edge() {
        let cg = ConflictGraph::generate(&scenario2());
        let ig = InstallationGraph::from_conflict(&cg);
        assert_eq!(ig.dag().edge(0, 1), None);
        // {A} (node 1) becomes a legal prefix, the paper's point.
        assert!(ig.is_prefix(&NodeSet::from_indices(2, [1])));
        assert!(!cg.dag().is_prefix(&NodeSet::from_indices(2, [1])));
    }

    #[test]
    fn conflict_prefixes_are_installation_prefixes() {
        for h in [
            scenario1(),
            scenario2(),
            scenario3(),
            figure4(),
            efg(),
            hj(),
        ] {
            let cg = ConflictGraph::generate(&h);
            let ig = InstallationGraph::from_conflict(&cg);
            cg.dag()
                .for_each_prefix(10_000, |p| {
                    assert!(
                        ig.is_prefix(p),
                        "conflict prefix {p:?} not an installation prefix"
                    );
                })
                .expect("small");
        }
    }

    #[test]
    fn installation_graph_admits_at_least_as_many_prefixes() {
        for h in [
            scenario1(),
            scenario2(),
            scenario3(),
            figure4(),
            efg(),
            hj(),
        ] {
            let cg = ConflictGraph::generate(&h);
            let ig = InstallationGraph::from_conflict(&cg);
            let nc = cg.dag().count_prefixes(10_000).unwrap();
            let ni = ig.count_prefixes(10_000).unwrap();
            assert!(ni >= nc, "{ni} < {nc}");
        }
    }

    #[test]
    fn figure5_prefix_counts() {
        // Conflict graph O->P->Q chain plus O->Q: prefixes {}, {O},
        // {O,P}, {O,P,Q} = 4. Installation graph drops O->P: P becomes
        // independent of O, adding {P} and {O? no} ... prefixes:
        // {}, {O}, {P}, {O,P}, {O,P,Q} = 5 (the extra dashed state of
        // Figure 5).
        let cg = ConflictGraph::generate(&figure4());
        let ig = InstallationGraph::from_conflict(&cg);
        assert_eq!(cg.dag().count_prefixes(100), Some(4));
        assert_eq!(ig.count_prefixes(100), Some(5));
    }

    #[test]
    fn efg_keeps_everything_ordered() {
        // E->F is rw|wr (kept), F->G rw (kept), E->G ww|wr (kept).
        let cg = ConflictGraph::generate(&efg());
        let ig = InstallationGraph::from_conflict(&cg);
        assert_eq!(ig.dag().edge_count(), 3);
        assert!(ig.removed_edges().is_empty());
    }
}
