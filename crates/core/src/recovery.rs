//! The abstract redo recovery procedure (§4, Figure 6).
//!
//! ```text
//! procedure recover(state, log, checkpoint)
//!     unrecovered = operations(log) - checkpoint
//!     analysis = null
//!     while unrecovered is not empty
//!         O = minimal operation in unrecovered
//!         analysis = analyze(state, log, unrecovered, analysis)
//!         state = if redo(O, state, log, analysis) then O(state) else state
//!         unrecovered = unrecovered - {O}
//!     end while
//! ```
//!
//! The procedure is parametric in the *redo test* and the *analysis
//! function*; §4.3 permits both to be arbitrary. Running [`recover`]
//! yields a [`RecoveryOutcome`] recording the redo set, and
//! [`recover_checked`] additionally verifies the Recovery Corollary's
//! inductive invariant after every iteration — that the operations that
//! will never be redone form an installation-graph prefix explaining the
//! current state — pinpointing the exact iteration at which a buggy
//! method breaks the contract.

use crate::conflict::ConflictGraph;
use crate::error::{Error, Result};
use crate::graph::NodeSet;
use crate::history::History;
use crate::installation::InstallationGraph;
use crate::invariant::recovery_invariant;
use crate::log::Log;
use crate::op::{OpId, Operation};
use crate::state::State;
use crate::state_graph::StateGraph;

/// What a recovery run did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The rebuilt state at end of log.
    pub state: State,
    /// The operations the redo test chose to replay (`redo_set`), as a
    /// node set over the history.
    pub redo_set: NodeSet,
    /// The operations examined and bypassed.
    pub skipped: NodeSet,
    /// Operations never examined because the checkpoint excluded them.
    pub checkpointed: NodeSet,
    /// Number of loop iterations (= log records examined).
    pub iterations: usize,
}

impl RecoveryOutcome {
    /// The installed set this run implies: `operations(log) − redo_set`.
    #[must_use]
    pub fn installed(&self, log: &Log, universe: usize) -> NodeSet {
        let mut installed = log.operations(universe);
        installed.difference_with(&self.redo_set);
        installed
    }
}

/// Runs the Figure 6 procedure.
///
/// * `analyze` is called once per iteration with the current state, the
///   log, the set of still-unrecovered operations, and the previous
///   analysis (`None` on the first iteration). A conventional
///   run-once-at-start analysis simply returns its input when `Some`.
/// * `redo` is the redo test; `true` replays the operation against the
///   state.
///
/// Operations are examined in log order, which the paper requires to be
/// consistent with the conflict order — the "minimal operation in
/// unrecovered" of Figure 6.
pub fn recover<A>(
    history: &History,
    state: &State,
    log: &Log,
    checkpoint: &NodeSet,
    mut analyze: impl FnMut(&State, &Log, &NodeSet, Option<A>) -> A,
    mut redo: impl FnMut(&Operation, &State, &Log, &A) -> bool,
) -> RecoveryOutcome {
    let n = history.len();
    let mut unrecovered = log.operations(n);
    unrecovered.difference_with(checkpoint);
    let mut checkpointed = log.operations(n);
    checkpointed.difference_with(&unrecovered);

    let mut cur = state.clone();
    let mut redo_set = NodeSet::new(n);
    let mut skipped = NodeSet::new(n);
    let mut analysis: Option<A> = None;
    let mut iterations = 0usize;

    for record in log.records() {
        if !unrecovered.contains(record.op.index()) {
            continue;
        }
        iterations += 1;
        let a = analyze(&cur, log, &unrecovered, analysis.take());
        let op = history.op(record.op);
        if redo(op, &cur, log, &a) {
            op.apply(&mut cur);
            redo_set.insert(record.op.index());
        } else {
            skipped.insert(record.op.index());
        }
        analysis = Some(a);
        unrecovered.remove(record.op.index());
    }

    RecoveryOutcome {
        state: cur,
        redo_set,
        skipped,
        checkpointed,
        iterations,
    }
}

/// Runs [`recover`] and verifies the Recovery Corollary's inductive
/// invariant after every iteration: letting `redo_future(ℓ)` be the
/// operations replayed *after* iteration ℓ, the set
/// `operations(log) − redo_future(ℓ)` must be an installation-graph
/// prefix explaining the state at the end of iteration ℓ.
///
/// # Errors
///
/// [`Error::InvariantViolated`] naming the iteration and violation if the
/// invariant breaks, in which case recovery is not guaranteed to rebuild
/// the final state (and usually doesn't).
#[allow(clippy::too_many_arguments)] // mirrors Figure 6's recover() plus the audit context
pub fn recover_checked<A>(
    history: &History,
    cg: &ConflictGraph,
    ig: &InstallationGraph,
    sg: &StateGraph,
    state: &State,
    log: &Log,
    checkpoint: &NodeSet,
    mut analyze: impl FnMut(&State, &Log, &NodeSet, Option<A>) -> A,
    mut redo: impl FnMut(&Operation, &State, &Log, &A) -> bool,
) -> Result<RecoveryOutcome> {
    // First pass: run the procedure, recording each examined operation,
    // its decision, and the state after the iteration.
    let mut decisions: Vec<(OpId, bool)> = Vec::new();
    let mut snapshots: Vec<State> = vec![state.clone()];
    let outcome = recover(
        history,
        state,
        log,
        checkpoint,
        |s, l, u, prev| analyze(s, l, u, prev),
        |op, s, l, a| {
            let d = redo(op, s, l, a);
            decisions.push((op.id(), d));
            let mut after = s.clone();
            if d {
                op.apply(&mut after);
            }
            snapshots.push(after);
            d
        },
    );
    // Second pass: check the invariant at every step. redo_future(ℓ) is
    // the suffix of replayed decisions.
    let n = history.len();
    for step in 0..=decisions.len() {
        let mut redo_future = NodeSet::new(n);
        for &(op, d) in &decisions[step..] {
            if d {
                redo_future.insert(op.index());
            }
        }
        if let Err(v) = recovery_invariant(cg, ig, sg, log, &redo_future, &snapshots[step]) {
            return Err(Error::InvariantViolated(format!(
                "at iteration {step} of {}: {v}",
                decisions.len()
            )));
        }
    }
    Ok(outcome)
}

/// The Figure 6 procedure with the replay phase parallelized per
/// Theorem 3.
///
/// Runs in two passes. The *decision* pass walks the log in order,
/// calling `analyze` and `redo` exactly as [`recover`] does but against
/// the frozen crash state — the redo set is fixed up front. The *replay*
/// pass then redoes that set with
/// [`replay_parallel`](crate::schedule::replay_parallel): a level
/// schedule of the conflict graph restricted to the redo set, executed
/// on up to `threads` workers with per-step applicability checks.
///
/// Because the decision pass never applies operations, the redo test
/// must not depend on the evolving state — it may consult the crash
/// state, the log, and the analysis. Both standard tests qualify:
/// [`redo_always`] and LSN-style comparisons against on-disk page tags.
/// Theorem 3 is what makes the substitution sound: once the non-redone
/// operations form an installation-graph prefix explaining the crash
/// state, *any* conflict-consistent replay of the rest — including the
/// parallel one — rebuilds the same state as Figure 6's sequential loop.
///
/// # Errors
///
/// [`Error::NotApplicable`] if a replayed operation would read a value
/// differing from the original execution, i.e. the redo test chose a set
/// whose complement does not explain the crash state.
#[allow(clippy::too_many_arguments)] // mirrors Figure 6's recover() plus the executor knob
pub fn recover_parallel<A>(
    history: &History,
    cg: &ConflictGraph,
    sg: &StateGraph,
    state: &State,
    log: &Log,
    checkpoint: &NodeSet,
    mut analyze: impl FnMut(&State, &Log, &NodeSet, Option<A>) -> A,
    mut redo: impl FnMut(&Operation, &State, &Log, &A) -> bool,
    threads: usize,
) -> Result<RecoveryOutcome> {
    let n = history.len();
    let mut unrecovered = log.operations(n);
    unrecovered.difference_with(checkpoint);
    let mut checkpointed = log.operations(n);
    checkpointed.difference_with(&unrecovered);

    let mut redo_set = NodeSet::new(n);
    let mut skipped = NodeSet::new(n);
    let mut analysis: Option<A> = None;
    let mut iterations = 0usize;
    for record in log.records() {
        if !unrecovered.contains(record.op.index()) {
            continue;
        }
        iterations += 1;
        let a = analyze(state, log, &unrecovered, analysis.take());
        let op = history.op(record.op);
        if redo(op, state, log, &a) {
            redo_set.insert(record.op.index());
        } else {
            skipped.insert(record.op.index());
        }
        analysis = Some(a);
        unrecovered.remove(record.op.index());
    }

    let installed = redo_set.complement();
    let rebuilt = crate::schedule::replay_parallel(history, cg, sg, &installed, state, threads)?;
    Ok(RecoveryOutcome {
        state: rebuilt,
        redo_set,
        skipped,
        checkpointed,
        iterations,
    })
}

/// The trivial analysis function: returns the previous analysis, or `()`
/// the first time — the "single analysis phase at the start" shape of
/// §4.3 degenerated to no analysis at all.
pub fn analyze_noop(_: &State, _: &Log, _: &NodeSet, _: Option<()>) {}

/// The redo test used by logical and physical recovery (§6.1–6.2):
/// replay every unrecovered operation.
pub fn redo_always(_: &Operation, _: &State, _: &Log, _: &()) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::examples::{figure4, scenario1, scenario2, scenario3};
    use crate::history::History;
    use crate::log::Lsn;
    use crate::state::{Value, Var};
    use std::collections::BTreeMap;

    struct Ctx {
        h: History,
        cg: ConflictGraph,
        ig: InstallationGraph,
        sg: StateGraph,
        log: Log,
    }

    fn ctx(h: History) -> Ctx {
        let cg = ConflictGraph::generate(&h);
        let ig = InstallationGraph::from_conflict(&cg);
        let sg = StateGraph::from_conflict(&h, &cg, &State::zeroed());
        let log = Log::from_history(&h);
        Ctx { h, cg, ig, sg, log }
    }

    #[test]
    fn redo_all_from_initial_state_recovers() {
        for h in [scenario1(), scenario2(), scenario3(), figure4()] {
            let c = ctx(h);
            let out = recover(
                &c.h,
                &State::zeroed(),
                &c.log,
                &NodeSet::new(c.h.len()),
                analyze_noop,
                redo_always,
            );
            assert_eq!(out.state, c.sg.final_state());
            assert_eq!(out.redo_set.count(), c.h.len());
            assert_eq!(out.iterations, c.h.len());
        }
    }

    #[test]
    fn checkpoint_excludes_installed_prefix() {
        // Figure 4: checkpoint {O}; start from the state O determines.
        let c = ctx(figure4());
        let ckpt = NodeSet::from_indices(3, [0]);
        let start = c.sg.state_determined_by(&ckpt);
        let out = recover(&c.h, &start, &c.log, &ckpt, analyze_noop, redo_always);
        assert_eq!(out.state, c.sg.final_state());
        assert_eq!(out.iterations, 2);
        assert_eq!(out.checkpointed, ckpt);
    }

    #[test]
    fn recovery_corollary_checked_run_passes() {
        for h in [scenario2(), scenario3(), figure4()] {
            let c = ctx(h);
            let out = recover_checked(
                &c.h,
                &c.cg,
                &c.ig,
                &c.sg,
                &State::zeroed(),
                &c.log,
                &NodeSet::new(c.h.len()),
                analyze_noop,
                redo_always,
            )
            .unwrap();
            assert_eq!(out.state, c.sg.final_state());
        }
    }

    #[test]
    fn broken_redo_test_caught_by_checked_run() {
        // Scenario 1 from the bad state (B installed, A not) with a redo
        // test that skips B and replays A: the invariant is violated and
        // reported, and the rebuilt state is wrong.
        let c = ctx(scenario1());
        let bad = State::from_pairs([(Var(1), Value(2))]);
        let err = recover_checked(
            &c.h,
            &c.cg,
            &c.ig,
            &c.sg,
            &bad,
            &c.log,
            &NodeSet::new(2),
            analyze_noop,
            |op, _, _, _| op.id() == OpId(0), // replay A only
        )
        .unwrap_err();
        assert!(matches!(err, Error::InvariantViolated(_)), "{err}");
    }

    #[test]
    fn lsn_style_redo_test_skips_installed_ops() {
        // Tag each variable with the LSN of the last installed write;
        // replay iff some written variable is stale. Start from the
        // state with O and P installed (Figure 4).
        let c = ctx(figure4());
        let installed = NodeSet::from_indices(3, [0, 1]);
        let start = c.sg.state_determined_by(&installed);
        let mut tags: BTreeMap<Var, Lsn> = BTreeMap::new();
        tags.insert(Var(0), c.log.lsn_of(OpId(0)).unwrap());
        tags.insert(Var(1), c.log.lsn_of(OpId(1)).unwrap());
        let out = recover(
            &c.h,
            &start,
            &c.log,
            &NodeSet::new(3),
            analyze_noop,
            |op, _, log, ()| {
                let lsn = log.lsn_of(op.id()).unwrap();
                let stale = op
                    .writes()
                    .iter()
                    .any(|x| tags.get(x).copied().unwrap_or(Lsn::ZERO) < lsn);
                if stale {
                    for &x in op.writes() {
                        tags.insert(x, lsn);
                    }
                }
                stale
            },
        );
        assert_eq!(out.state, c.sg.final_state());
        assert_eq!(out.redo_set, NodeSet::from_indices(3, [2])); // only Q replayed
        assert_eq!(out.skipped, NodeSet::from_indices(3, [0, 1]));
    }

    #[test]
    fn parallel_recover_matches_serial_figure6() {
        for h in [scenario1(), scenario2(), scenario3(), figure4()] {
            let c = ctx(h);
            let serial = recover(
                &c.h,
                &State::zeroed(),
                &c.log,
                &NodeSet::new(c.h.len()),
                analyze_noop,
                redo_always,
            );
            for threads in [1, 2, 4] {
                let parallel = recover_parallel(
                    &c.h,
                    &c.cg,
                    &c.sg,
                    &State::zeroed(),
                    &c.log,
                    &NodeSet::new(c.h.len()),
                    analyze_noop,
                    redo_always,
                    threads,
                )
                .unwrap();
                assert_eq!(parallel, serial);
            }
        }
    }

    #[test]
    fn parallel_recover_with_checkpoint_and_lsn_test() {
        // Same setup as lsn_style_redo_test_skips_installed_ops: only Q
        // needs replay, and the parallel run agrees.
        let c = ctx(figure4());
        let installed = NodeSet::from_indices(3, [0, 1]);
        let start = c.sg.state_determined_by(&installed);
        let mut tags: BTreeMap<Var, Lsn> = BTreeMap::new();
        tags.insert(Var(0), c.log.lsn_of(OpId(0)).unwrap());
        tags.insert(Var(1), c.log.lsn_of(OpId(1)).unwrap());
        let out = recover_parallel(
            &c.h,
            &c.cg,
            &c.sg,
            &start,
            &c.log,
            &NodeSet::new(3),
            analyze_noop,
            |op, _, log, ()| {
                let lsn = log.lsn_of(op.id()).unwrap();
                op.writes()
                    .iter()
                    .any(|x| tags.get(x).copied().unwrap_or(Lsn::ZERO) < lsn)
            },
            4,
        )
        .unwrap();
        assert_eq!(out.state, c.sg.final_state());
        assert_eq!(out.redo_set, NodeSet::from_indices(3, [2]));
        assert_eq!(out.skipped, NodeSet::from_indices(3, [0, 1]));

        // A checkpoint covering O excludes it from examination entirely.
        let ckpt = NodeSet::from_indices(3, [0]);
        let start = c.sg.state_determined_by(&ckpt);
        let out = recover_parallel(
            &c.h,
            &c.cg,
            &c.sg,
            &start,
            &c.log,
            &ckpt,
            analyze_noop,
            redo_always,
            2,
        )
        .unwrap();
        assert_eq!(out.state, c.sg.final_state());
        assert_eq!(out.iterations, 2);
        assert_eq!(out.checkpointed, ckpt);
    }

    #[test]
    fn analysis_runs_every_iteration_and_threads_state() {
        let c = ctx(figure4());
        let mut calls = 0;
        let out = recover(
            &c.h,
            &State::zeroed(),
            &c.log,
            &NodeSet::new(3),
            |_, _, _, prev: Option<u32>| {
                calls += 1;
                prev.unwrap_or(0) + 1
            },
            |_, _, _, &a| a >= 1,
        );
        assert_eq!(calls, 3);
        assert_eq!(out.state, c.sg.final_state());
    }

    #[test]
    fn empty_log_recovers_immediately() {
        let h = History::new(vec![]).unwrap();
        let log = Log::from_order(&[]);
        let out = recover(
            &h,
            &State::zeroed(),
            &log,
            &NodeSet::new(0),
            analyze_noop,
            redo_always,
        );
        assert_eq!(out.iterations, 0);
        assert_eq!(out.state, State::zeroed());
    }

    #[test]
    fn installed_accessor() {
        let c = ctx(figure4());
        let out = recover(
            &c.h,
            &State::zeroed(),
            &c.log,
            &NodeSet::new(3),
            analyze_noop,
            redo_always,
        );
        assert!(out.installed(&c.log, 3).is_empty());
    }
}
