//! Operation sequences and the state sequences they generate (§2.1).

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::op::{OpId, Operation};
use crate::state::{State, Value, Var};

/// An operation sequence `O₁ O₂ … Oₖ` in invocation order.
///
/// Operations are numbered by position: `history.op(OpId(i))` is the
/// operation invoked `i`-th (0-based). This makes `OpId` double as the
/// node index in every graph generated from the history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct History {
    ops: Vec<Operation>,
}

impl History {
    /// Wraps a sequence whose operations are already numbered by
    /// position.
    ///
    /// # Errors
    ///
    /// [`Error::MisnumberedHistory`] if ids do not equal positions.
    pub fn new(ops: Vec<Operation>) -> Result<History> {
        for (i, op) in ops.iter().enumerate() {
            if op.id().index() != i {
                return Err(Error::MisnumberedHistory {
                    position: i,
                    found: op.id(),
                });
            }
        }
        Ok(History { ops })
    }

    /// Builds a history from operations in invocation order, renumbering
    /// them by position.
    #[must_use]
    pub fn renumbering(ops: Vec<Operation>) -> History {
        let ops = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| op.with_id(OpId(i as u32)))
            .collect();
        History { ops }
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the history empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range; use [`History::get`] for the
    /// fallible variant.
    #[must_use]
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// The operation with the given id, if present.
    #[must_use]
    pub fn get(&self, id: OpId) -> Option<&Operation> {
        self.ops.get(id.index())
    }

    /// Operations in invocation order.
    pub fn iter(&self) -> impl Iterator<Item = &Operation> {
        self.ops.iter()
    }

    /// All operation ids in invocation order.
    pub fn ids(&self) -> impl Iterator<Item = OpId> {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// The state sequence `S₀ S₁ … Sₖ` generated from `s0`: `states()[i]`
    /// is the state after the first `i` operations.
    #[must_use]
    pub fn states(&self, s0: &State) -> Vec<State> {
        let mut out = Vec::with_capacity(self.len() + 1);
        out.push(s0.clone());
        let mut cur = s0.clone();
        for op in &self.ops {
            op.apply(&mut cur);
            out.push(cur.clone());
        }
        out
    }

    /// The final state `Sₖ` of the sequence from `s0` — the state redo
    /// recovery must reconstruct.
    #[must_use]
    pub fn final_state(&self, s0: &State) -> State {
        let mut cur = s0.clone();
        for op in &self.ops {
            op.apply(&mut cur);
        }
        cur
    }

    /// Every variable accessed by any operation, with the ids of its
    /// accessors in invocation order.
    #[must_use]
    pub fn var_accessors(&self) -> BTreeMap<Var, Vec<OpId>> {
        let mut out: BTreeMap<Var, Vec<OpId>> = BTreeMap::new();
        for op in &self.ops {
            for x in op.accesses() {
                out.entry(x).or_default().push(op.id());
            }
        }
        out
    }

    /// Every variable written by any operation.
    #[must_use]
    pub fn written_vars(&self) -> Vec<Var> {
        let mut out: Vec<Var> = self
            .ops
            .iter()
            .flat_map(|op| op.writes().iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The value variable `x` holds after the first `i` operations
    /// (`i == 0` means `s0`). Convenience for tests and the checker.
    #[must_use]
    pub fn value_after(&self, s0: &State, i: usize, x: Var) -> Value {
        let mut cur = s0.clone();
        for op in self.ops.iter().take(i) {
            op.apply(&mut cur);
        }
        cur.get(x)
    }
}

impl std::ops::Index<OpId> for History {
    type Output = Operation;
    fn index(&self, id: OpId) -> &Operation {
        self.op(id)
    }
}

/// The paper's running examples as ready-made histories.
pub mod examples {
    use super::History;
    use crate::expr::Expr;
    use crate::op::examples::{op_a, op_b, op_c, op_d};
    use crate::op::{OpId, Operation};
    use crate::state::Var;

    /// Scenario 1 (Figure 1): `A: x ← y+1` then `B: y ← 2`.
    #[must_use]
    pub fn scenario1() -> History {
        History::new(vec![op_a(OpId(0)), op_b(OpId(1))]).expect("well-formed")
    }

    /// Scenario 2 (Figure 2): `B: y ← 2` then `A: x ← y+1`.
    #[must_use]
    pub fn scenario2() -> History {
        History::new(vec![op_b(OpId(0)), op_a(OpId(1))]).expect("well-formed")
    }

    /// Scenario 3 (Figure 3): `C: ⟨x ← x+1; y ← y+1⟩` then `D: x ← y+1`.
    #[must_use]
    pub fn scenario3() -> History {
        History::new(vec![op_c(OpId(0)), op_d(OpId(1))]).expect("well-formed")
    }

    /// The §2.4 / Figure 4 example: `O` (reads x, writes x), `P` (reads
    /// x, writes y), `Q` (reads x, writes x). With `x` initially 0 the
    /// paper's figure shows the successive states; we realize `O` and `Q`
    /// as increments and `P` as a copy so those states are
    /// distinguishable.
    #[must_use]
    pub fn figure4() -> History {
        let x = Var(0);
        let y = Var(1);
        let o = Operation::builder(OpId(0))
            .assign(x, Expr::read(x).add(Expr::constant(1)))
            .build()
            .expect("well-formed");
        let p = Operation::builder(OpId(1))
            .assign(y, Expr::read(x).add(Expr::constant(10)))
            .build()
            .expect("well-formed");
        let q = Operation::builder(OpId(2))
            .assign(x, Expr::read(x).add(Expr::constant(1)))
            .build()
            .expect("well-formed");
        History::new(vec![o, p, q]).expect("well-formed")
    }

    /// §5's E, F, G example: `E: x ← y+1`, `F: y ← x+1`, `G: x ← x+1`.
    /// E and F are entangled (installing either alone is unrecoverable);
    /// the write graph must collapse them.
    #[must_use]
    pub fn efg() -> History {
        let x = Var(0);
        let y = Var(1);
        let e = Operation::builder(OpId(0))
            .assign(x, Expr::read(y).add(Expr::constant(1)))
            .build()
            .expect("well-formed");
        let f = Operation::builder(OpId(1))
            .assign(y, Expr::read(x).add(Expr::constant(1)))
            .build()
            .expect("well-formed");
        let g = Operation::builder(OpId(2))
            .assign(x, Expr::read(x).add(Expr::constant(1)))
            .build()
            .expect("well-formed");
        History::new(vec![e, f, g]).expect("well-formed")
    }

    /// §5's H, J example: `H: ⟨x ← x+1; y ← y+1⟩`, `J: y ← 0`. J's blind
    /// write makes `y` unexposed after H, so installing H only requires
    /// updating `x`.
    #[must_use]
    pub fn hj() -> History {
        let x = Var(0);
        let y = Var(1);
        let h = Operation::builder(OpId(0))
            .assign(x, Expr::read(x).add(Expr::constant(1)))
            .assign(y, Expr::read(y).add(Expr::constant(1)))
            .build()
            .expect("well-formed");
        let j = Operation::builder(OpId(1))
            .assign(y, Expr::constant(0))
            .build()
            .expect("well-formed");
        History::new(vec![h, j]).expect("well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::examples::*;
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn misnumbered_history_rejected() {
        let op = Operation::builder(OpId(5))
            .assign(Var(0), Expr::constant(1))
            .build()
            .unwrap();
        let err = History::new(vec![op]).unwrap_err();
        assert!(matches!(err, Error::MisnumberedHistory { position: 0, .. }));
    }

    #[test]
    fn renumbering_fixes_ids() {
        let op = Operation::builder(OpId(5))
            .assign(Var(0), Expr::constant(1))
            .build()
            .unwrap();
        let h = History::renumbering(vec![op.clone(), op]);
        assert_eq!(h.op(OpId(0)).id(), OpId(0));
        assert_eq!(h.op(OpId(1)).id(), OpId(1));
    }

    #[test]
    fn state_sequence_of_scenario1() {
        let h = scenario1();
        let states = h.states(&State::zeroed());
        assert_eq!(states.len(), 3);
        assert_eq!(states[0].get(Var(0)), Value(0));
        assert_eq!(states[1].get(Var(0)), Value(1)); // after A
        assert_eq!(states[2].get(Var(1)), Value(2)); // after B
    }

    #[test]
    fn final_state_matches_last_of_sequence() {
        let h = figure4();
        let s0 = State::zeroed();
        assert_eq!(h.final_state(&s0), h.states(&s0).pop().unwrap());
    }

    #[test]
    fn figure4_final_state() {
        // O: x=1; P: y=11; Q: x=2.
        let h = figure4();
        let f = h.final_state(&State::zeroed());
        assert_eq!(f.get(Var(0)), Value(2));
        assert_eq!(f.get(Var(1)), Value(11));
    }

    #[test]
    fn var_accessors_in_order() {
        let h = figure4();
        let acc = h.var_accessors();
        assert_eq!(acc[&Var(0)], vec![OpId(0), OpId(1), OpId(2)]);
        assert_eq!(acc[&Var(1)], vec![OpId(1)]);
    }

    #[test]
    fn written_vars_deduped() {
        let h = figure4();
        assert_eq!(h.written_vars(), vec![Var(0), Var(1)]);
    }

    #[test]
    fn value_after_prefixes() {
        let h = scenario2();
        let s0 = State::zeroed();
        assert_eq!(h.value_after(&s0, 0, Var(1)), Value(0));
        assert_eq!(h.value_after(&s0, 1, Var(1)), Value(2));
        assert_eq!(h.value_after(&s0, 2, Var(0)), Value(3));
    }

    #[test]
    fn efg_entanglement_semantics() {
        // E: x=1, F: y=2, G: x=2 from zero.
        let h = efg();
        let f = h.final_state(&State::zeroed());
        assert_eq!(f.get(Var(0)), Value(2));
        assert_eq!(f.get(Var(1)), Value(2));
    }

    #[test]
    fn hj_semantics() {
        let h = hj();
        let f = h.final_state(&State::zeroed());
        assert_eq!(f.get(Var(0)), Value(1));
        assert_eq!(f.get(Var(1)), Value(0));
    }
}
