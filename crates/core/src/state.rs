//! Variables, values, and states (§2.1).
//!
//! The paper fixes a set of *variables* and a set of *values*; a *state*
//! is a function mapping each variable to a value. We use dense `u32`
//! variable identifiers and 64-bit values. Unmapped variables read as the
//! state's *default* value, so a [`State`] is a total function with a
//! finite support, exactly as the paper requires while staying cheap to
//! clone and compare.

use std::collections::BTreeMap;
use std::fmt;

/// A variable identifier.
///
/// The theory is indifferent to what a variable is; the storage substrate
/// (`redo-sim`) maps page slots onto `Var`s, and the B-tree maps whole
/// pages onto them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A value a variable may assume.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(pub u64);

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Value {
    /// Wrapping addition; operation bodies use wrapping arithmetic so
    /// replay can never trap.
    #[must_use]
    pub fn wrapping_add(self, rhs: Value) -> Value {
        Value(self.0.wrapping_add(rhs.0))
    }

    /// Wrapping subtraction.
    #[must_use]
    pub fn wrapping_sub(self, rhs: Value) -> Value {
        Value(self.0.wrapping_sub(rhs.0))
    }

    /// Wrapping multiplication.
    #[must_use]
    pub fn wrapping_mul(self, rhs: Value) -> Value {
        Value(self.0.wrapping_mul(rhs.0))
    }

    /// Bitwise exclusive or.
    #[must_use]
    pub fn xor(self, rhs: Value) -> Value {
        Value(self.0 ^ rhs.0)
    }

    /// A cheap, deterministic one-value hash mix (splitmix64 finalizer).
    /// Used to build operation bodies whose outputs are extremely unlikely
    /// to collide by accident, which sharpens the checker's state
    /// comparisons.
    #[must_use]
    pub fn mix(self) -> Value {
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Value(z ^ (z >> 31))
    }
}

/// A total mapping from variables to values with finite support.
///
/// Two states compare equal iff they agree on *every* variable, i.e. both
/// their supports (normalized to drop default-valued entries) and their
/// defaults agree.
#[derive(Clone, PartialEq, Eq)]
pub struct State {
    map: BTreeMap<Var, Value>,
    default: Value,
}

impl State {
    /// The state mapping every variable to zero — the customary `S0` of
    /// the paper's examples.
    #[must_use]
    pub fn zeroed() -> State {
        State {
            map: BTreeMap::new(),
            default: Value(0),
        }
    }

    /// A state mapping every variable to `default`.
    #[must_use]
    pub fn with_default(default: Value) -> State {
        State {
            map: BTreeMap::new(),
            default,
        }
    }

    /// Builds a state from explicit pairs (remaining variables take the
    /// default value zero).
    #[must_use]
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, Value)>) -> State {
        let mut s = State::zeroed();
        for (x, v) in pairs {
            s.set(x, v);
        }
        s
    }

    /// The value of variable `x`.
    #[must_use]
    pub fn get(&self, x: Var) -> Value {
        self.map.get(&x).copied().unwrap_or(self.default)
    }

    /// Updates variable `x`. Setting a variable to the default value
    /// removes it from the support, keeping equality semantic.
    pub fn set(&mut self, x: Var, v: Value) {
        if v == self.default {
            self.map.remove(&x);
        } else {
            self.map.insert(x, v);
        }
    }

    /// The state's default value for unmapped variables.
    #[must_use]
    pub fn default_value(&self) -> Value {
        self.default
    }

    /// Iterates over the finite support (variables holding non-default
    /// values), in ascending variable order.
    pub fn support(&self) -> impl Iterator<Item = (Var, Value)> + '_ {
        self.map.iter().map(|(&x, &v)| (x, v))
    }

    /// Number of variables holding non-default values.
    #[must_use]
    pub fn support_len(&self) -> usize {
        self.map.len()
    }

    /// Do `self` and `other` agree on every variable in `vars`?
    #[must_use]
    pub fn agrees_on<'a>(&self, other: &State, vars: impl IntoIterator<Item = &'a Var>) -> bool {
        vars.into_iter().all(|&x| self.get(x) == other.get(x))
    }
}

impl fmt::Debug for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "State{{default: {:?}", self.default)?;
        for (x, v) in &self.map {
            write!(f, ", {x:?}={v:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_variables_read_default() {
        let s = State::zeroed();
        assert_eq!(s.get(Var(42)), Value(0));
        let s = State::with_default(Value(7));
        assert_eq!(s.get(Var(42)), Value(7));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = State::zeroed();
        s.set(Var(1), Value(10));
        s.set(Var(2), Value(20));
        assert_eq!(s.get(Var(1)), Value(10));
        assert_eq!(s.get(Var(2)), Value(20));
        assert_eq!(s.get(Var(3)), Value(0));
    }

    #[test]
    fn setting_default_value_normalizes_support() {
        let mut a = State::zeroed();
        a.set(Var(1), Value(10));
        a.set(Var(1), Value(0));
        let b = State::zeroed();
        assert_eq!(a, b);
        assert_eq!(a.support_len(), 0);
    }

    #[test]
    fn equality_is_total_function_equality() {
        let mut a = State::zeroed();
        let mut b = State::zeroed();
        a.set(Var(1), Value(5));
        assert_ne!(a, b);
        b.set(Var(1), Value(5));
        assert_eq!(a, b);
        // Different defaults differ even with empty support.
        assert_ne!(State::zeroed(), State::with_default(Value(1)));
    }

    #[test]
    fn agrees_on_subsets() {
        let a = State::from_pairs([(Var(0), Value(1)), (Var(1), Value(2))]);
        let b = State::from_pairs([(Var(0), Value(1)), (Var(1), Value(99))]);
        assert!(a.agrees_on(&b, &[Var(0)]));
        assert!(!a.agrees_on(&b, &[Var(0), Var(1)]));
    }

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(Value(1).mix(), Value(1).mix());
        assert_ne!(Value(1).mix(), Value(2).mix());
        assert_ne!(Value(0).mix(), Value(0));
    }

    #[test]
    fn wrapping_ops_do_not_trap() {
        let max = Value(u64::MAX);
        assert_eq!(max.wrapping_add(Value(1)), Value(0));
        assert_eq!(Value(0).wrapping_sub(Value(1)), max);
        let _ = max.wrapping_mul(max);
    }
}
