//! Deterministic expression bodies for operations.
//!
//! The paper models an operation as "a function with a fixed set of input
//! variables and a fixed set of output variables" (§2.1). To make that
//! function *data* — so histories can be generated, replayed, logged and
//! compared structurally — each written variable's new value is given by
//! an [`Expr`] over the operation's read variables and constants.
//! Evaluation is total (wrapping arithmetic) and deterministic: the same
//! read values always produce the same written value, which is exactly
//! the property redo replay relies on.

use std::collections::BTreeSet;
use std::fmt;

use crate::state::{Value, Var};

/// An arithmetic expression over read variables and constants.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// The pre-state value of a variable; contributes that variable to
    /// the enclosing operation's read set.
    Read(Var),
    /// Wrapping sum of both operands.
    Add(Box<Expr>, Box<Expr>),
    /// Wrapping difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Wrapping product.
    Mul(Box<Expr>, Box<Expr>),
    /// Bitwise exclusive or.
    Xor(Box<Expr>, Box<Expr>),
    /// An order-sensitive hash combination of the operands. Workload
    /// generators use `Mix` so that distinct (operation, input) pairs
    /// yield distinct outputs with overwhelming probability, making state
    /// comparisons in the checker sharp.
    Mix(Vec<Expr>),
}

#[allow(clippy::should_implement_trait)] // add/sub/mul are builder combinators, not std::ops
impl Expr {
    /// A constant expression.
    #[must_use]
    pub fn constant(v: u64) -> Expr {
        Expr::Const(Value(v))
    }

    /// Reads a variable.
    #[must_use]
    pub fn read(x: Var) -> Expr {
        Expr::Read(x)
    }

    /// `self + rhs` (wrapping).
    #[must_use]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs` (wrapping).
    #[must_use]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs` (wrapping).
    #[must_use]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self ^ rhs`.
    #[must_use]
    pub fn xor(self, rhs: Expr) -> Expr {
        Expr::Xor(Box::new(self), Box::new(rhs))
    }

    /// An order-sensitive hash mix of `parts`.
    #[must_use]
    pub fn mix(parts: Vec<Expr>) -> Expr {
        Expr::Mix(parts)
    }

    /// Evaluates the expression against a read function (usually a
    /// pre-state lookup).
    pub fn eval(&self, read: &mut impl FnMut(Var) -> Value) -> Value {
        match self {
            Expr::Const(v) => *v,
            Expr::Read(x) => read(*x),
            Expr::Add(a, b) => a.eval(read).wrapping_add(b.eval(read)),
            Expr::Sub(a, b) => a.eval(read).wrapping_sub(b.eval(read)),
            Expr::Mul(a, b) => a.eval(read).wrapping_mul(b.eval(read)),
            Expr::Xor(a, b) => a.eval(read).xor(b.eval(read)),
            Expr::Mix(parts) => {
                let mut acc = Value(0x51ed_270b);
                for p in parts {
                    acc = acc.xor(p.eval(read)).mix();
                }
                acc
            }
        }
    }

    /// Accumulates every variable the expression reads into `out`.
    pub fn collect_reads(&self, out: &mut BTreeSet<Var>) {
        match self {
            Expr::Const(_) => {}
            Expr::Read(x) => {
                out.insert(*x);
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Xor(a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Expr::Mix(parts) => {
                for p in parts {
                    p.collect_reads(out);
                }
            }
        }
    }

    /// `true` iff the expression reads no variable at all, i.e. the
    /// assignment it feeds is a *blind write*. Blind writes are what make
    /// variables unexposed (§2.3) and what physical logging (§6.2)
    /// consists of exclusively.
    #[must_use]
    pub fn is_blind(&self) -> bool {
        let mut reads = BTreeSet::new();
        self.collect_reads(&mut reads);
        reads.is_empty()
    }

    /// Number of AST nodes; used by workload generators to bound body
    /// sizes.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Read(_) => 1,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Xor(a, b) => {
                1 + a.size() + b.size()
            }
            Expr::Mix(parts) => 1 + parts.iter().map(Expr::size).sum::<usize>(),
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v:?}"),
            Expr::Read(x) => write!(f, "{x:?}"),
            Expr::Add(a, b) => write!(f, "({a:?} + {b:?})"),
            Expr::Sub(a, b) => write!(f, "({a:?} - {b:?})"),
            Expr::Mul(a, b) => write!(f, "({a:?} * {b:?})"),
            Expr::Xor(a, b) => write!(f, "({a:?} ^ {b:?})"),
            Expr::Mix(parts) => {
                write!(f, "mix(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p:?}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_zeroed(e: &Expr) -> Value {
        e.eval(&mut |_| Value(0))
    }

    #[test]
    fn constant_evaluates_to_itself() {
        assert_eq!(eval_zeroed(&Expr::constant(7)), Value(7));
    }

    #[test]
    fn read_pulls_from_environment() {
        let e = Expr::read(Var(3));
        let v = e.eval(&mut |x| Value(u64::from(x.0) * 10));
        assert_eq!(v, Value(30));
    }

    #[test]
    fn arithmetic_matches_value_ops() {
        let a = Expr::constant(10);
        let b = Expr::constant(3);
        assert_eq!(eval_zeroed(&a.clone().add(b.clone())), Value(13));
        assert_eq!(eval_zeroed(&a.clone().sub(b.clone())), Value(7));
        assert_eq!(eval_zeroed(&a.clone().mul(b.clone())), Value(30));
        assert_eq!(eval_zeroed(&a.xor(b)), Value(9));
    }

    #[test]
    fn collect_reads_finds_all_leaves() {
        let e = Expr::read(Var(1)).add(Expr::read(Var(2)).mul(Expr::read(Var(1))));
        let mut reads = BTreeSet::new();
        e.collect_reads(&mut reads);
        assert_eq!(reads, BTreeSet::from([Var(1), Var(2)]));
    }

    #[test]
    fn blindness() {
        assert!(Expr::constant(5).is_blind());
        assert!(Expr::constant(5).add(Expr::constant(6)).is_blind());
        assert!(!Expr::read(Var(0)).is_blind());
        assert!(!Expr::mix(vec![Expr::constant(1), Expr::read(Var(9))]).is_blind());
    }

    #[test]
    fn mix_is_order_sensitive() {
        let ab = Expr::mix(vec![Expr::constant(1), Expr::constant(2)]);
        let ba = Expr::mix(vec![Expr::constant(2), Expr::constant(1)]);
        assert_ne!(eval_zeroed(&ab), eval_zeroed(&ba));
    }

    #[test]
    fn mix_differs_from_parts() {
        let one = Expr::mix(vec![Expr::constant(1)]);
        assert_ne!(eval_zeroed(&one), Value(1));
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::read(Var(0)).add(Expr::constant(1));
        assert_eq!(e.size(), 3);
        assert_eq!(Expr::mix(vec![Expr::constant(0); 4]).size(), 5);
    }
}
