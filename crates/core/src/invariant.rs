//! The Recovery Invariant (§4.5).
//!
//! > **Recovery Invariant.** The set `operations(log) − redo_set` induces
//! > a prefix of the installation graph that explains the state.
//!
//! This invariant is the contract between state update and recovery: as
//! long as every change to the state is accompanied by a matching change
//! to the set of operations the redo test will choose to replay, the
//! abstract recovery procedure terminates in the state determined by the
//! conflict graph (Corollary 4). Every concrete method in `redo-methods`
//! is audited against this module.

use crate::conflict::ConflictGraph;
use crate::explain::first_unexplained_var;
use crate::graph::NodeSet;
use crate::installation::InstallationGraph;
use crate::log::Log;
use crate::op::OpId;
use crate::state::{State, Value, Var};
use crate::state_graph::StateGraph;

/// Why the recovery invariant failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InvariantViolation {
    /// The installed set is not a prefix of the installation graph:
    /// `op` is installed but its predecessor `missing_pred` is not.
    NotAPrefix {
        /// An installed operation...
        op: OpId,
        /// ...with this uninstalled installation-graph predecessor.
        missing_pred: OpId,
    },
    /// The installed prefix does not explain the state: the exposed
    /// variable `var` holds `actual` but the prefix determines
    /// `expected`.
    Unexplained {
        /// The offending exposed variable.
        var: Var,
        /// The value the prefix determines.
        expected: Value,
        /// The value the state actually holds.
        actual: Value,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::NotAPrefix { op, missing_pred } => write!(
                f,
                "installed set is not an installation-graph prefix: {op:?} installed, predecessor {missing_pred:?} is not"
            ),
            InvariantViolation::Unexplained { var, expected, actual } => write!(
                f,
                "installed prefix does not explain the state: exposed {var:?} holds {actual:?}, expected {expected:?}"
            ),
        }
    }
}

/// Checks the recovery invariant for a given redo set.
///
/// `redo_set` is the set of operations the redo test would choose to
/// replay *right now*; `operations(log) − redo_set` is the implied
/// installed set.
///
/// # Errors
///
/// The first [`InvariantViolation`] found, if any.
pub fn recovery_invariant(
    cg: &ConflictGraph,
    ig: &InstallationGraph,
    sg: &StateGraph,
    log: &Log,
    redo_set: &NodeSet,
    state: &State,
) -> Result<(), InvariantViolation> {
    let mut installed = log.operations(cg.len());
    installed.difference_with(redo_set);
    // Prefix check with a precise witness.
    for op in installed.iter() {
        for (p, _) in ig.dag().predecessors(op) {
            if !installed.contains(p) {
                return Err(InvariantViolation::NotAPrefix {
                    op: OpId(op as u32),
                    missing_pred: OpId(p as u32),
                });
            }
        }
    }
    if let Some(var) = first_unexplained_var(cg, sg, &installed, state) {
        let expected = sg.state_determined_by(&installed).get(var);
        return Err(InvariantViolation::Unexplained {
            var,
            expected,
            actual: state.get(var),
        });
    }
    Ok(())
}

/// Boolean form of [`recovery_invariant`].
#[must_use]
pub fn recovery_invariant_holds(
    cg: &ConflictGraph,
    ig: &InstallationGraph,
    sg: &StateGraph,
    log: &Log,
    redo_set: &NodeSet,
    state: &State,
) -> bool {
    recovery_invariant(cg, ig, sg, log, redo_set, state).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::examples::{figure4, scenario1, scenario2, scenario3};
    use crate::history::History;

    struct Ctx {
        h: History,
        cg: ConflictGraph,
        ig: InstallationGraph,
        sg: StateGraph,
        log: Log,
    }

    fn ctx(h: History) -> Ctx {
        let cg = ConflictGraph::generate(&h);
        let ig = InstallationGraph::from_conflict(&cg);
        let sg = StateGraph::from_conflict(&h, &cg, &State::zeroed());
        let log = Log::from_history(&h);
        Ctx { h, cg, ig, sg, log }
    }

    #[test]
    fn redo_everything_from_s0_satisfies_invariant() {
        for h in [scenario1(), scenario2(), scenario3(), figure4()] {
            let c = ctx(h);
            let redo_all = NodeSet::full(c.h.len());
            recovery_invariant(&c.cg, &c.ig, &c.sg, &c.log, &redo_all, &State::zeroed()).unwrap();
        }
    }

    #[test]
    fn redo_nothing_from_final_state_satisfies_invariant() {
        for h in [scenario1(), scenario2(), scenario3(), figure4()] {
            let c = ctx(h);
            let none = NodeSet::new(c.h.len());
            let final_state = c.sg.final_state();
            recovery_invariant(&c.cg, &c.ig, &c.sg, &c.log, &none, &final_state).unwrap();
        }
    }

    #[test]
    fn scenario1_installed_b_violates_prefix() {
        // redo_set = {A}: installed = {B}, but B's installation-graph
        // predecessor A (read-write edge) is uninstalled.
        let c = ctx(scenario1());
        let redo = NodeSet::from_indices(2, [0]);
        let state = State::from_pairs([(Var(1), Value(2))]);
        let err = recovery_invariant(&c.cg, &c.ig, &c.sg, &c.log, &redo, &state).unwrap_err();
        assert_eq!(
            err,
            InvariantViolation::NotAPrefix {
                op: OpId(1),
                missing_pred: OpId(0)
            }
        );
    }

    #[test]
    fn scenario2_installed_a_satisfies_invariant() {
        // redo_set = {B}: installed = {A}, a legal installation prefix
        // explaining the state x=3.
        let c = ctx(scenario2());
        let redo = NodeSet::from_indices(2, [0]);
        let state = State::from_pairs([(Var(0), Value(3))]);
        recovery_invariant(&c.cg, &c.ig, &c.sg, &c.log, &redo, &state).unwrap();
    }

    #[test]
    fn wrong_exposed_value_reported() {
        let c = ctx(scenario2());
        let redo = NodeSet::from_indices(2, [0]);
        // Installed {A} determines x=3; state holds x=9.
        let state = State::from_pairs([(Var(0), Value(9))]);
        let err = recovery_invariant(&c.cg, &c.ig, &c.sg, &c.log, &redo, &state).unwrap_err();
        assert_eq!(
            err,
            InvariantViolation::Unexplained {
                var: Var(0),
                expected: Value(3),
                actual: Value(9)
            }
        );
    }

    #[test]
    fn unexposed_garbage_is_tolerated() {
        // Scenario 3, redo {D}: installed {C}; x unexposed, may hold
        // anything; y exposed, must be 1.
        let c = ctx(scenario3());
        let redo = NodeSet::from_indices(2, [1]);
        let state = State::from_pairs([(Var(0), Value(0xbad)), (Var(1), Value(1))]);
        recovery_invariant(&c.cg, &c.ig, &c.sg, &c.log, &redo, &state).unwrap();
    }

    #[test]
    fn invariant_violation_displays() {
        let v = InvariantViolation::NotAPrefix {
            op: OpId(1),
            missing_pred: OpId(0),
        };
        assert!(v.to_string().contains("op1"));
        let v = InvariantViolation::Unexplained {
            var: Var(2),
            expected: Value(1),
            actual: Value(3),
        };
        assert!(v.to_string().contains("v2"));
    }
}
