//! Criterion benchmark harness for the paper reproduction; see `benches/`.
