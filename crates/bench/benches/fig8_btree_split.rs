//! FIG8 — B-tree splits: generalized-LSN vs physiological logging.
//!
//! The figure's write graph shows the generalized split's edge forcing
//! the new node to disk before the old node's truncation. The experiment
//! measures, for bulk loads forcing many splits:
//!
//! * insert throughput per strategy,
//! * **log volume** per strategy (the paper's efficiency claim: the
//!   generalized split "avoids physically logging the half of a
//!   splitting B-tree node"),
//! * recovery time from a crash at end-of-load.
//!
//! Paper-shape expectation: the generalized strategy logs dramatically
//! fewer bytes per split (here ~40x smaller split records, a large
//! fraction of total volume at big page sizes), at equal correctness;
//! recovery times are comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use redo_btree::{BTree, SplitStrategy};
use redo_workload::pages::mix64;

fn load(strategy: SplitStrategy, keys: u64, spp: u16) -> BTree {
    let mut tree = BTree::new(strategy, spp).expect("bootstrap");
    for k in 0..keys {
        tree.insert(mix64(k), k).expect("insert");
    }
    tree
}

fn bench(c: &mut Criterion) {
    // Shape check + report: log volume ratio at two page sizes.
    for spp in [16u16, 64] {
        let physio = load(SplitStrategy::Physiological, 2_000, spp);
        let general = load(SplitStrategy::Generalized, 2_000, spp);
        let (pb, gb) = (
            physio.db.log.appended_bytes(),
            general.db.log.appended_bytes(),
        );
        println!(
            "fig8 shape-check: spp={spp}: physiological {pb} bytes, generalized {gb} bytes \
             ({:.1}% saved)",
            100.0 * (pb - gb) as f64 / pb as f64
        );
        assert!(gb < pb, "generalized must log less");
    }

    let mut group = c.benchmark_group("fig8_btree_split");
    for keys in [1_000u64, 5_000] {
        group.throughput(Throughput::Elements(keys));
        for (name, strategy) in [
            ("physiological", SplitStrategy::Physiological),
            ("generalized", SplitStrategy::Generalized),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("bulk_load_{name}"), keys),
                &keys,
                |b, &keys| b.iter(|| load(strategy, keys, 64)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("recover_{name}"), keys),
                &keys,
                |b, &keys| {
                    b.iter_batched(
                        || {
                            let mut t = load(strategy, keys, 64);
                            t.db.log.flush_all();
                            t.crash();
                            t
                        },
                        |mut t| {
                            t.recover().expect("recovery");
                            t
                        },
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
