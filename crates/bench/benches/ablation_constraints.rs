//! ABLATION — what the careful write order costs.
//!
//! §6.4's generalized operations make the cache manager enforce
//! write-order constraints; §6.3's physiological operations don't need
//! any. This bench isolates that overhead on *identical* single-page
//! workloads (where the constraint machinery is pure overhead for the
//! generalized method: zero constraints registered), and then on
//! cross-page workloads with growing cross-read fractions (real
//! constraint pressure: flush checks scan the live constraint list,
//! flush_all retries around blocked pages).
//!
//! Expectation: zero-constraint overhead is negligible; cost grows
//! mildly with the cross-read fraction; checkpoint flush-all still
//! terminates (write-graph acyclicity) at every setting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_methods::generalized::Generalized;
use redo_methods::physiological::Physiological;
use redo_methods::RecoveryMethod;
use redo_sim::db::{Db, Geometry};
use redo_workload::pages::{PageOp, PageWorkloadSpec};

fn run_to_checkpoint<M: RecoveryMethod>(method: &M, ops: &[PageOp]) -> u64 {
    let mut db: Db<M::Payload> = Db::new(Geometry { slots_per_page: 8 });
    let mut rng = StdRng::seed_from_u64(5);
    for op in ops {
        method.execute(&mut db, op).expect("execute");
        db.chaos_flush(&mut rng, 0.6, 0.25).unwrap();
    }
    method.checkpoint(&mut db).expect("checkpoint");
    db.disk.page_writes()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_constraints");
    let n = 300usize;

    // Identical single-page workload under both methods: isolates the
    // constraint machinery's fixed overhead (zero constraints).
    let single = PageWorkloadSpec {
        n_ops: n,
        n_pages: 8,
        ..Default::default()
    }
    .generate(31);
    group.bench_function("physiological_single_page", |b| {
        b.iter(|| run_to_checkpoint(&Physiological, &single))
    });
    group.bench_function("generalized_single_page_no_constraints", |b| {
        b.iter(|| run_to_checkpoint(&Generalized, &single))
    });

    // Growing cross-read fractions: real constraint pressure.
    for pct in [10u32, 40, 80] {
        let ops = PageWorkloadSpec {
            n_ops: n,
            n_pages: 8,
            cross_page_fraction: f64::from(pct) / 100.0,
            blind_fraction: 0.1,
            ..Default::default()
        }
        .generate(31);
        // Shape check: it completes, and reports flush volume.
        let writes = run_to_checkpoint(&Generalized, &ops);
        println!("ablation_constraints shape-check: cross={pct}% -> {writes} page writes");
        group.bench_with_input(
            BenchmarkId::new("generalized_cross_page", pct),
            &ops,
            |b, ops| b.iter(|| run_to_checkpoint(&Generalized, ops)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
