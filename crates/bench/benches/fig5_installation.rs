//! FIG5 — the installation graph's extra freedom, quantified.
//!
//! The figure shows the installation state graph for O, P, Q with the
//! dropped write-read edge admitting one additional recoverable state.
//! The scaled experiment counts prefixes (legal installed sets) of the
//! conflict graph vs the installation graph across workload shapes, and
//! measures explainability testing — `explains` — which is the check a
//! cache manager's install decision logically answers.
//!
//! Paper-shape expectation: the installation graph's prefix count is
//! ≥ the conflict graph's, with the gap widest for write-read-heavy
//! workloads and zero for blind workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redo_theory::conflict::ConflictGraph;
use redo_theory::explain::explains;
use redo_theory::graph::NodeSet;
use redo_theory::installation::InstallationGraph;
use redo_theory::state::State;
use redo_theory::state_graph::StateGraph;
use redo_workload::{Shape, WorkloadSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_installation");

    // Shape check: prefix-count ratios per family on small instances.
    for (name, shape, blind) in [
        ("wr_heavy", Shape::WriteReadHeavy, 0.8),
        ("random", Shape::Random, 0.3),
        ("blind", Shape::Blind, 1.0),
    ] {
        let h = WorkloadSpec {
            n_ops: 12,
            n_vars: 6,
            shape,
            blind_fraction: blind,
            max_reads: 1,
            max_writes: 1,
            ..Default::default()
        }
        .generate(6);
        let cg = ConflictGraph::generate(&h);
        let ig = InstallationGraph::from_conflict(&cg);
        let pc = cg.dag().count_prefixes(5_000_000).expect("small");
        let pi = ig.count_prefixes(5_000_000).expect("small");
        println!("fig5 shape-check [{name}]: conflict prefixes {pc}, installation prefixes {pi}");
        assert!(pi >= pc);
        if name == "blind" {
            assert_eq!(pi, pc, "blind workloads shed no edges");
        }
    }

    for n in [256usize, 1024, 4096] {
        let h = WorkloadSpec {
            n_ops: n,
            n_vars: (n / 8).max(4) as u32,
            shape: Shape::WriteReadHeavy,
            blind_fraction: 0.8,
            max_reads: 2,
            max_writes: 1,
            ..Default::default()
        }
        .generate(7);
        let cg = ConflictGraph::generate(&h);
        let ig = InstallationGraph::from_conflict(&cg);
        let sg = StateGraph::from_conflict(&h, &cg, &State::zeroed());
        let prefix = NodeSet::from_indices(n, 0..n / 2);
        let state = sg.state_determined_by(&prefix);
        assert!(explains(&cg, &sg, &prefix, &state));
        group.bench_with_input(
            BenchmarkId::new("is_prefix", n),
            &(&ig, &prefix),
            |b, (ig, prefix)| b.iter(|| ig.is_prefix(prefix)),
        );
        group.bench_with_input(
            BenchmarkId::new("explains", n),
            &(&cg, &sg, &prefix, &state),
            |b, (cg, sg, prefix, state)| b.iter(|| explains(cg, sg, prefix, state)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
