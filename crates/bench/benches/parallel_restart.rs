//! PARALLEL_RESTART — checkpoint-aware parallel restart latency.
//!
//! The two restart accelerators this repo builds — the fuzzy
//! checkpoint's dirty-page-table seek and Theorem 3's page-partitioned
//! parallel replay — measured together. For live runs of 1k / 10k /
//! 100k operations, each in two images:
//!
//! * `no_ck` — no checkpoint: the restart scan decodes the whole log;
//! * `ck` — one online fuzzy checkpoint published a fifth of the way
//!   in (after draining the pool, so its dirty-page table is shallow
//!   and its redo-start truncates the entire prefix): the scan seeks
//!   past 20% of the history and replays the 80% suffix.
//!
//! each recovered serially (the checkpoint-aware [`Generalized`]
//! analyze path) and through
//! [`recover_physiological_parallel`] at 1 / 2 / 4 / 8 worker threads.
//! The `ck` image additionally sweeps a `log_shards ∈ {1, 2, 4, 8}`
//! axis: the same run logged through a [`ShardedLog`] with that many
//! per-partition logs, so restart decodes N shard scans concurrently
//! instead of one merged scan. The interesting cells are
//! `ck × shards1 × 4 threads` (replay fanned out, decode still serial)
//! against `ck × shards4 × 4 threads` (decode fanned out too).
//!
//! Shape checks before timing assert the checkpoint image's parallel
//! recovery really started from the published checkpoint (checkpoint
//! LSN recorded, checkpoint record counted, prefix bytes reclaimed)
//! and that every thread count — and every shard count — lands on the
//! identical recovered state as the single-log serial path. The
//! sharded-log decode scaling is asserted deterministically at every
//! size: with 4 shards, the busiest shard's post-checkpoint decode
//! (the restart scan's critical path — each shard's scan decodes only
//! its own frames, concurrently) must be at most half the single log's.
//! At the largest size the check also wall-clocks 4 workers on the
//! single-log and 4-shard images against the serial baseline and
//! prints both speedups; when the host has at least 4 CPUs (wall-clock
//! parallelism is physically measurable) it additionally asserts the
//! 4-worker speedup with 4 log shards keeps up with the single-log
//! 4-worker speedup.
//!
//! [`ShardedLog`]: redo_sim::wal::ShardedLog
//!
//! Set `PARALLEL_RESTART_SMOKE=1` to run only the smallest size (CI's
//! smoke iteration).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_methods::generalized::Generalized;
use redo_methods::online::GeneralizedOnline;
use redo_methods::oprecord::PageOpPayload;
use redo_methods::parallel::recover_physiological_parallel;
use redo_methods::physiological::Physiological;
use redo_methods::RecoveryMethod;
use redo_sim::backend::BackendKind;
use redo_sim::db::{Db, Geometry};
use redo_workload::pages::PageWorkloadSpec;

/// A crashed database after an `n_ops` single-page-op run with
/// group-committed log flushes. Background page cleaning runs only
/// through the first fifth of the run: the crash then catches the
/// write-behind with the entire suffix still uninstalled — the
/// worst-case restart depth the partitioned scheduler exists for (a
/// well-cleaned cache makes restart a pure scan with nothing to
/// parallelize). With `checkpoint` set, one online fuzzy checkpoint is
/// published right where the cleaning stops, after draining the pool:
/// its dirty-page table is then shallow, its redo-start sits at the
/// checkpoint itself, and the whole prefix truncates. `log_shards`
/// picks how many per-partition logs carry the history (1 = the plain
/// single log).
fn crashed_db(n_ops: usize, checkpoint: bool, log_shards: usize) -> Db<PageOpPayload> {
    let ops = PageWorkloadSpec {
        n_ops,
        n_pages: 64,
        cross_page_fraction: 0.0,
        multi_page_fraction: 0.0,
        blind_fraction: 0.1,
        ..Default::default()
    }
    .generate(41);
    let mut db = Db::on_sharded(BackendKind::Mem, Geometry::default(), None, log_shards);
    let mut rng = StdRng::seed_from_u64(13);
    let ck_at = n_ops / 5;
    for (i, op) in ops.iter().enumerate() {
        Physiological.execute(&mut db, op).unwrap();
        let page_p = if i < ck_at { 0.05 } else { 0.0 };
        db.chaos_flush(&mut rng, 0.9, page_p).unwrap();
        if checkpoint && i + 1 == ck_at {
            db.log.flush_all();
            let stable = db.log.stable_lsn();
            db.pool.flush_all(&mut db.disk, stable).unwrap();
            GeneralizedOnline::checkpoint_online(&mut db)
                .unwrap()
                .expect("unfaulted publication lands");
        }
    }
    db.log.flush_all();
    db.crash();
    db
}

/// Decoded bytes per shard for the post-checkpoint suffix — the decode
/// critical path of a partitioned restart, since each shard's scan
/// thread decodes only its own frames, concurrently with the others.
fn suffix_decode_bytes(image: &Db<PageOpPayload>) -> Vec<u64> {
    let mut probe = image.clone();
    probe.repair_after_crash();
    let analysis = Generalized::analyze_dpt(&probe).unwrap();
    (0..probe.log.n_shards())
        .map(|s| {
            let mut cursor = probe.log.shard_cursor_from(s, analysis.redo_start);
            for frame in cursor.by_ref() {
                frame.unwrap();
            }
            cursor.stats().bytes_scanned
        })
        .collect()
}

fn wall_clock(
    db: &Db<PageOpPayload>,
    reps: u32,
    mut recover: impl FnMut(&mut Db<PageOpPayload>),
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut image = db.clone();
        let start = Instant::now();
        recover(&mut image);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("PARALLEL_RESTART_SMOKE").is_ok();
    let sizes: &[usize] = if smoke {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let threads: &[usize] = &[1, 2, 4, 8];
    let shard_counts: &[usize] = &[1, 2, 4, 8];
    let mut group = c.benchmark_group("parallel_restart");
    for &n in sizes {
        let no_ck = crashed_db(n, false, 1);
        let ck_images: Vec<(usize, Db<PageOpPayload>)> = shard_counts
            .iter()
            .map(|&s| (s, crashed_db(n, true, s)))
            .collect();

        // Shape checks: the checkpoint must actually feed the
        // partitioned scheduler, and every path — every thread count
        // on every shard count — must agree on the recovered state.
        let mut probe = ck_images[0].1.clone();
        let serial_stats = Generalized.recover(&mut probe).unwrap();
        let serial_state = probe.volatile_theory_state();
        let mut ck_records = 0;
        for (s, ck) in &ck_images {
            let mut shard_probe = ck.clone();
            let shard_serial_stats = Generalized.recover(&mut shard_probe).unwrap();
            assert_eq!(
                shard_probe.volatile_theory_state(),
                serial_state,
                "serial recovery over {s} log shards diverged from the single log"
            );
            for &t in threads {
                let mut image = ck.clone();
                let stats = recover_physiological_parallel(&mut image, t).unwrap();
                assert!(
                    stats.checkpoint_lsn.is_some(),
                    "parallel restart must start from the published checkpoint"
                );
                assert!(
                    stats.checkpoint_records >= 1,
                    "the checkpoint record must be recognized (and kept out of the partitions)"
                );
                assert!(
                    stats.truncated_bytes > 0,
                    "the checkpoint must have reclaimed the log prefix"
                );
                assert_eq!(
                    image.volatile_theory_state(),
                    serial_state,
                    "parallel restart with {t} threads over {s} log shards \
                     diverged from serial recovery"
                );
                assert_eq!(
                    stats, shard_serial_stats,
                    "semantic stats diverged at {t} threads over {s} log shards"
                );
                ck_records = stats.checkpoint_records;
            }
        }
        // The decode-scaling claim itself, asserted on telemetry rather
        // than timing (robust on any host): the busiest shard's suffix
        // decode is the scan's critical path, and 4 shards must cut it
        // to at most half of the single log's.
        let ck1 = &ck_images[0].1;
        let ck4 = &ck_images
            .iter()
            .find(|(s, _)| *s == 4)
            .expect("4-shard image is in the sweep")
            .1;
        let single_decode: u64 = suffix_decode_bytes(ck1).iter().sum();
        let per_shard = suffix_decode_bytes(ck4);
        let busiest = per_shard.iter().copied().max().unwrap_or(0);
        assert!(
            busiest * 2 <= single_decode,
            "4 log shards must cut the restart decode critical path: \
             busiest shard decodes {busiest} of the single log's {single_decode} suffix bytes"
        );
        println!(
            "parallel_restart shape-check [n={n}]: checkpoint at {:?}, \
             {} records scanned ({} checkpoint), {} replayed, {} stable bytes reclaimed, \
             state identical across log shard counts {shard_counts:?}; \
             suffix decode critical path {single_decode} bytes on one log \
             vs {busiest} on the busiest of 4 shards (per shard: {per_shard:?})",
            serial_stats.checkpoint_lsn,
            serial_stats.scanned,
            ck_records,
            serial_stats.replay_count(),
            serial_stats.truncated_bytes,
        );
        if n >= 100_000 {
            let ts = wall_clock(ck1, 3, |db| {
                Generalized.recover(db).unwrap();
            });
            let t1 = wall_clock(ck1, 3, |db| {
                recover_physiological_parallel(db, 1).unwrap();
            });
            let t4 = wall_clock(ck1, 3, |db| {
                recover_physiological_parallel(db, 4).unwrap();
            });
            let t4_sharded = wall_clock(ck4, 3, |db| {
                recover_physiological_parallel(db, 4).unwrap();
            });
            let single_log_speedup = ts / t4;
            let sharded_speedup = ts / t4_sharded;
            let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
            println!(
                "parallel_restart speedup [n={n}, ck, {cores} core(s)]: serial {:.1} ms, \
                 1 thread {:.1} ms, 4 threads {:.1} ms ({:.2}x), \
                 4 threads over 4 log shards {:.1} ms ({:.2}x)",
                ts * 1e3,
                t1 * 1e3,
                t4 * 1e3,
                single_log_speedup,
                t4_sharded * 1e3,
                sharded_speedup,
            );
            if cores >= 4 {
                assert!(
                    sharded_speedup >= single_log_speedup * 0.95,
                    "4-worker restart over 4 log shards ({sharded_speedup:.2}x) must not trail \
                     the single-log 4-worker speedup ({single_log_speedup:.2}x): \
                     sharding the log parallelizes the decode the merged scan serializes"
                );
            } else {
                println!(
                    "parallel_restart speedup [n={n}, ck]: {cores} core(s) — wall-clock \
                     parallel scaling is not measurable here; decode scaling asserted \
                     via per-shard scan telemetry above"
                );
            }
        }

        group.bench_with_input(BenchmarkId::new("no_ck/serial", n), &no_ck, |b, image| {
            b.iter_batched(
                || (*image).clone(),
                |mut db| Generalized.recover(&mut db).unwrap(),
                BatchSize::LargeInput,
            )
        });
        for &t in threads {
            group.bench_with_input(
                BenchmarkId::new(format!("no_ck/threads{t}"), n),
                &no_ck,
                |b, image| {
                    b.iter_batched(
                        || (*image).clone(),
                        |mut db| recover_physiological_parallel(&mut db, t).unwrap(),
                        BatchSize::LargeInput,
                    )
                },
            );
        }
        for (s, ck) in &ck_images {
            group.bench_with_input(
                BenchmarkId::new(format!("ck/shards{s}/serial"), n),
                ck,
                |b, image| {
                    b.iter_batched(
                        || (*image).clone(),
                        |mut db| Generalized.recover(&mut db).unwrap(),
                        BatchSize::LargeInput,
                    )
                },
            );
            // The full thread sweep runs on the single log; sharded
            // images bench the interesting 4-worker cell to keep the
            // matrix tractable.
            let shard_threads: &[usize] = if *s == 1 { threads } else { &[4] };
            for &t in shard_threads {
                group.bench_with_input(
                    BenchmarkId::new(format!("ck/shards{s}/threads{t}"), n),
                    ck,
                    |b, image| {
                        b.iter_batched(
                            || (*image).clone(),
                            |mut db| recover_physiological_parallel(&mut db, t).unwrap(),
                            BatchSize::LargeInput,
                        )
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
