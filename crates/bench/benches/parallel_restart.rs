//! PARALLEL_RESTART — checkpoint-aware parallel restart latency.
//!
//! The two restart accelerators this repo builds — the fuzzy
//! checkpoint's dirty-page-table seek and Theorem 3's page-partitioned
//! parallel replay — measured together. For live runs of 1k / 10k /
//! 100k operations, each in two images:
//!
//! * `no_ck` — no checkpoint: the restart scan decodes the whole log;
//! * `ck` — one online fuzzy checkpoint published a fifth of the way
//!   in (after draining the pool, so its dirty-page table is shallow
//!   and its redo-start truncates the entire prefix): the scan seeks
//!   past 20% of the history and replays the 80% suffix.
//!
//! each recovered serially (the checkpoint-aware [`Generalized`]
//! analyze path) and through
//! [`recover_physiological_parallel`] at 1 / 2 / 4 / 8 worker threads.
//! The interesting cell is `ck × 4 threads`: checkpoint seek active
//! *and* the replay fanned out.
//!
//! Shape checks before timing assert the checkpoint image's parallel
//! recovery really started from the published checkpoint (checkpoint
//! LSN recorded, checkpoint record counted, prefix bytes reclaimed)
//! and that every thread count lands on the identical recovered state
//! as the serial path; at the largest size the check also wall-clocks
//! 4 workers against 1 and prints the speedup.
//!
//! Set `PARALLEL_RESTART_SMOKE=1` to run only the smallest size (CI's
//! smoke iteration).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_methods::generalized::Generalized;
use redo_methods::online::GeneralizedOnline;
use redo_methods::oprecord::PageOpPayload;
use redo_methods::parallel::recover_physiological_parallel;
use redo_methods::physiological::Physiological;
use redo_methods::RecoveryMethod;
use redo_sim::db::{Db, Geometry};
use redo_workload::pages::PageWorkloadSpec;

/// A crashed database after an `n_ops` single-page-op run with
/// group-committed log flushes. Background page cleaning runs only
/// through the first fifth of the run: the crash then catches the
/// write-behind with the entire suffix still uninstalled — the
/// worst-case restart depth the partitioned scheduler exists for (a
/// well-cleaned cache makes restart a pure scan with nothing to
/// parallelize). With `checkpoint` set, one online fuzzy checkpoint is
/// published right where the cleaning stops, after draining the pool:
/// its dirty-page table is then shallow, its redo-start sits at the
/// checkpoint itself, and the whole prefix truncates.
fn crashed_db(n_ops: usize, checkpoint: bool) -> Db<PageOpPayload> {
    let ops = PageWorkloadSpec {
        n_ops,
        n_pages: 64,
        cross_page_fraction: 0.0,
        multi_page_fraction: 0.0,
        blind_fraction: 0.1,
        ..Default::default()
    }
    .generate(41);
    let mut db = Db::new(Geometry::default());
    let mut rng = StdRng::seed_from_u64(13);
    let ck_at = n_ops / 5;
    for (i, op) in ops.iter().enumerate() {
        Physiological.execute(&mut db, op).unwrap();
        let page_p = if i < ck_at { 0.05 } else { 0.0 };
        db.chaos_flush(&mut rng, 0.9, page_p).unwrap();
        if checkpoint && i + 1 == ck_at {
            db.log.flush_all();
            let stable = db.log.stable_lsn();
            db.pool.flush_all(&mut db.disk, stable).unwrap();
            GeneralizedOnline::checkpoint_online(&mut db)
                .unwrap()
                .expect("unfaulted publication lands");
        }
    }
    db.log.flush_all();
    db.crash();
    db
}

fn wall_clock(
    db: &Db<PageOpPayload>,
    reps: u32,
    mut recover: impl FnMut(&mut Db<PageOpPayload>),
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut image = db.clone();
        let start = Instant::now();
        recover(&mut image);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("PARALLEL_RESTART_SMOKE").is_ok();
    let sizes: &[usize] = if smoke {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let threads: &[usize] = &[1, 2, 4, 8];
    let mut group = c.benchmark_group("parallel_restart");
    for &n in sizes {
        let no_ck = crashed_db(n, false);
        let ck = crashed_db(n, true);

        // Shape checks: the checkpoint must actually feed the
        // partitioned scheduler, and every path must agree on the
        // recovered state.
        let mut probe = ck.clone();
        let serial_stats = Generalized.recover(&mut probe).unwrap();
        let serial_state = probe.volatile_theory_state();
        let mut ck_records = 0;
        for &t in threads {
            let mut image = ck.clone();
            let stats = recover_physiological_parallel(&mut image, t).unwrap();
            assert!(
                stats.checkpoint_lsn.is_some(),
                "parallel restart must start from the published checkpoint"
            );
            assert!(
                stats.checkpoint_records >= 1,
                "the checkpoint record must be recognized (and kept out of the partitions)"
            );
            assert!(
                stats.truncated_bytes > 0,
                "the checkpoint must have reclaimed the log prefix"
            );
            assert_eq!(
                image.volatile_theory_state(),
                serial_state,
                "parallel restart with {t} threads diverged from serial recovery"
            );
            assert_eq!(
                stats, serial_stats,
                "semantic stats diverged at {t} threads"
            );
            ck_records = stats.checkpoint_records;
        }
        println!(
            "parallel_restart shape-check [n={n}]: checkpoint at {:?}, \
             {} records scanned ({} checkpoint), {} replayed, {} stable bytes reclaimed",
            serial_stats.checkpoint_lsn,
            serial_stats.scanned,
            ck_records,
            serial_stats.replay_count(),
            serial_stats.truncated_bytes,
        );
        if n >= 100_000 {
            let ts = wall_clock(&ck, 3, |db| {
                Generalized.recover(db).unwrap();
            });
            let t1 = wall_clock(&ck, 3, |db| {
                recover_physiological_parallel(db, 1).unwrap();
            });
            let t4 = wall_clock(&ck, 3, |db| {
                recover_physiological_parallel(db, 4).unwrap();
            });
            println!(
                "parallel_restart speedup [n={n}, ck]: serial {:.1} ms, \
                 1 thread {:.1} ms, 4 threads {:.1} ms, speedup at 4 threads {:.2}x",
                ts * 1e3,
                t1 * 1e3,
                t4 * 1e3,
                ts / t4
            );
        }

        for (label, image) in [("no_ck", &no_ck), ("ck", &ck)] {
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/serial"), n),
                image,
                |b, image| {
                    b.iter_batched(
                        || (*image).clone(),
                        |mut db| Generalized.recover(&mut db).unwrap(),
                        BatchSize::LargeInput,
                    )
                },
            );
            for &t in threads {
                group.bench_with_input(
                    BenchmarkId::new(format!("{label}/threads{t}"), n),
                    image,
                    |b, image| {
                        b.iter_batched(
                            || (*image).clone(),
                            |mut db| recover_physiological_parallel(&mut db, t).unwrap(),
                            BatchSize::LargeInput,
                        )
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
