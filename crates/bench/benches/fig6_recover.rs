//! FIG6 — the abstract recovery procedure.
//!
//! The figure gives the `recover(state, log, checkpoint)` loop. The
//! scaled experiment measures recovery time as a function of log length
//! and checkpoint coverage, under the two canonical redo tests: constant
//! *true* (logical/physical) and the LSN-style installed-set test.
//!
//! Paper-shape expectation: recovery cost is linear in the uncheckpointed
//! log suffix; an LSN-style test that skips installed operations pays
//! the scan but not the replay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redo_theory::graph::NodeSet;
use redo_theory::history::History;
use redo_theory::log::Log;
use redo_theory::recovery::{analyze_noop, recover, redo_always};
use redo_theory::state::State;
use redo_theory::state_graph::StateGraph;
use redo_workload::WorkloadSpec;

struct Setup {
    h: History,
    sg: StateGraph,
    log: Log,
}

fn setup(n: usize) -> Setup {
    let h = WorkloadSpec::physiological(n, (n / 8).max(4) as u32).generate(8);
    let sg = StateGraph::conflict_state_graph(&h, &State::zeroed());
    let log = Log::from_history(&h);
    Setup { h, sg, log }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_recover");
    for n in [1_000usize, 4_000, 16_000] {
        let s = setup(n);
        for coverage_pct in [0usize, 50, 90] {
            let covered = n * coverage_pct / 100;
            let ckpt = NodeSet::from_indices(n, 0..covered);
            let start = s.sg.state_determined_by(&ckpt);
            // Shape check: redo-everything reaches the final state.
            let out = recover(&s.h, &start, &s.log, &ckpt, analyze_noop, redo_always);
            assert_eq!(out.state, s.sg.final_state());
            assert_eq!(out.iterations, n - covered);
            group.bench_with_input(
                BenchmarkId::new(format!("redo_all_ckpt{coverage_pct}pct"), n),
                &(&s, &ckpt, &start),
                |b, (s, ckpt, start)| {
                    b.iter(|| recover(&s.h, start, &s.log, ckpt, analyze_noop, redo_always))
                },
            );
        }
        // LSN-style: per page (variable), the first half of its update
        // chain is installed — a legal installation prefix for the RMW
        // workload, exactly what partially flushed pages produce. The
        // redo test skips the installed half.
        let cg = redo_theory::conflict::ConflictGraph::generate(&s.h);
        let mut sound = NodeSet::new(n);
        for x in cg.vars().collect::<Vec<_>>() {
            let writers: Vec<_> = cg
                .accessors_of(x)
                .iter()
                .filter(|a| a.writes)
                .map(|a| a.op.index())
                .collect();
            for &w in writers.iter().take(writers.len() / 2) {
                sound.insert(w);
            }
        }
        let start_sound = s.sg.state_determined_by(&sound);
        let sound_ref = &sound;
        let out = recover(
            &s.h,
            &start_sound,
            &s.log,
            &NodeSet::new(n),
            analyze_noop,
            |op, _, _, _| !sound_ref.contains(op.id().index()),
        );
        assert_eq!(out.state, s.sg.final_state());
        group.bench_with_input(
            BenchmarkId::new("lsn_style_skips_half", n),
            &(&s, &sound, &start_sound),
            |b, (s, sound, start)| {
                b.iter(|| {
                    recover(
                        &s.h,
                        start,
                        &s.log,
                        &NodeSet::new(s.h.len()),
                        analyze_noop,
                        |op, _, _, _| !sound.contains(op.id().index()),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
