//! ABLATION — checkpoint discipline: heavyweight vs fuzzy vs none.
//!
//! DESIGN.md calls out the checkpoint as a design choice worth ablating:
//! §6's methods use a flush-everything checkpoint, while real systems
//! take ARIES-style fuzzy checkpoints (dirty-page table only, §4.3's
//! analysis phase does the rest). This bench quantifies the trade on the
//! same workload:
//!
//! * normal-operation cost (a heavyweight checkpoint stalls to flush);
//! * recovery scan length (records examined after a crash);
//! * page writes (fuzzy defers them; none avoids them entirely until
//!   eviction).
//!
//! Expectation: heavy checkpoints pay at runtime and win at recovery;
//! fuzzy checkpoints cost almost nothing at runtime and bound the scan
//! via min-recLSN; no checkpoints maximize both scan and replay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_methods::fuzzy::FuzzyPhysiological;
use redo_methods::physiological::Physiological;
use redo_methods::RecoveryMethod;
use redo_sim::db::{Db, Geometry};
use redo_workload::pages::{PageOp, PageWorkloadSpec};

fn workload(n: usize) -> Vec<PageOp> {
    PageWorkloadSpec {
        n_ops: n,
        n_pages: 16,
        ..Default::default()
    }
    .generate(21)
}

/// Runs a workload with checkpoints every `every` ops (None = never),
/// then crashes and recovers; returns (scanned, replayed).
fn run_once<M: RecoveryMethod>(method: &M, ops: &[PageOp], every: Option<usize>) -> (usize, usize) {
    let mut db: Db<M::Payload> = Db::new(Geometry { slots_per_page: 8 });
    let mut rng = StdRng::seed_from_u64(77);
    for (i, op) in ops.iter().enumerate() {
        method.execute(&mut db, op).expect("execute");
        db.chaos_flush(&mut rng, 0.8, 0.2).unwrap();
        if let Some(k) = every {
            if (i + 1) % k == 0 {
                method.checkpoint(&mut db).expect("checkpoint");
            }
        }
    }
    db.log.flush_all();
    db.crash();
    let stats = method.recover(&mut db).expect("recover");
    (stats.scanned, stats.replay_count())
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_checkpoint");
    let n = 400usize;
    let ops = workload(n);

    // Shape check + report.
    let (scan_none, replay_none) = run_once(&Physiological, &ops, None);
    let (scan_heavy, replay_heavy) = run_once(&Physiological, &ops, Some(25));
    let (scan_fuzzy, replay_fuzzy) = run_once(&FuzzyPhysiological, &ops, Some(25));
    println!("ablation_checkpoint shape-check (n={n}):");
    println!("  none:  scanned {scan_none:>4}, replayed {replay_none:>4}");
    println!("  heavy: scanned {scan_heavy:>4}, replayed {replay_heavy:>4}");
    println!("  fuzzy: scanned {scan_fuzzy:>4}, replayed {replay_fuzzy:>4}");
    assert!(
        scan_heavy < scan_none,
        "heavy checkpoints must bound the scan"
    );
    assert!(
        scan_fuzzy < scan_none,
        "fuzzy checkpoints must bound the scan"
    );
    assert!(
        scan_heavy <= scan_fuzzy,
        "fuzzy scans at least as much as heavy"
    );

    for every in [10usize, 50, 200] {
        group.bench_with_input(
            BenchmarkId::new("heavy_run_and_recover", every),
            &(&ops, every),
            |b, (ops, every)| b.iter(|| run_once(&Physiological, ops, Some(*every))),
        );
        group.bench_with_input(
            BenchmarkId::new("fuzzy_run_and_recover", every),
            &(&ops, every),
            |b, (ops, every)| b.iter(|| run_once(&FuzzyPhysiological, ops, Some(*every))),
        );
    }
    group.bench_function("no_checkpoint_run_and_recover", |b| {
        b.iter(|| run_once(&Physiological, &ops, None))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
