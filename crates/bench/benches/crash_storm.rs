//! CRASH_STORM — recovery latency vs injected-fault density.
//!
//! Two questions about the fault-injection layer's cost model:
//!
//! * **recover_after**: does the *kind* of crash damage change recovery
//!   latency? A clean crash, a clean stop at a crash point, a torn page
//!   write, and a torn log flush each produce a different stable image
//!   of the same workload; repair + recovery runs over each. Torn
//!   damage adds a repair pass (pre-image restore, tail truncation) but
//!   also *shrinks* the durable log in the torn-flush case — the two
//!   effects pull latency in opposite directions.
//! * **fault_density**: a storm of crash/recover cycles where a rising
//!   fraction of cycles carries an armed fault. Recovery latency per
//!   storm should grow roughly linearly with density: every faulty
//!   cycle cuts the cycle short (less work to redo) but pays repair and
//!   re-replays the surviving tail after an earlier trip point.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_methods::oprecord::PageOpPayload;
use redo_methods::physiological::Physiological;
use redo_methods::RecoveryMethod;
use redo_sim::db::{Db, Geometry};
use redo_sim::fault::{FaultKind, FaultPlan};
use redo_workload::pages::{PageOp, PageWorkloadSpec};

fn workload(n: usize, seed: u64) -> Vec<PageOp> {
    PageWorkloadSpec {
        n_ops: n,
        n_pages: 8,
        ..Default::default()
    }
    .generate(seed)
}

/// Runs `ops` under physiological logging with background chaos and an
/// optional armed fault, then crashes. Returns the crashed image.
fn crashed_image(ops: &[PageOp], fault: Option<FaultPlan>) -> Db<PageOpPayload> {
    let mut db = Db::new(Geometry::default());
    let mut rng = StdRng::seed_from_u64(42);
    if let Some(plan) = fault {
        db.arm_faults(plan);
    }
    for (i, op) in ops.iter().enumerate() {
        match Physiological.execute(&mut db, op) {
            Ok(_) => {}
            Err(_) if db.fault_tripped() => {}
            Err(e) => panic!("execute failed without a fault: {e}"),
        }
        match db.chaos_flush(&mut rng, 0.7, 0.3) {
            Ok(()) => {}
            Err(_) if db.fault_tripped() => {}
            Err(e) => panic!("chaos failed without a fault: {e}"),
        }
        if (i + 1) % 20 == 0 {
            match Physiological.checkpoint(&mut db) {
                Ok(()) => {}
                Err(_) if db.fault_tripped() => {}
                Err(e) => panic!("checkpoint failed without a fault: {e}"),
            }
        }
        if db.fault_tripped() {
            break;
        }
    }
    db.crash();
    db
}

fn bench_recover_after(c: &mut Criterion) {
    let ops = workload(200, 3);
    let cases: [(&str, Option<FaultPlan>); 4] = [
        ("clean-crash", None),
        (
            "clean-stop",
            Some(FaultPlan {
                at: 150,
                kind: FaultKind::Clean,
            }),
        ),
        (
            "torn-write",
            Some(FaultPlan {
                at: 150,
                kind: FaultKind::TornWrite { sectors: 2 },
            }),
        ),
        (
            "torn-flush",
            Some(FaultPlan {
                at: 150,
                kind: FaultKind::TornFlush { bytes: 7 },
            }),
        ),
    ];
    let mut group = c.benchmark_group("crash_storm/recover_after");
    for (label, fault) in cases {
        let image = crashed_image(&ops, fault);
        group.bench_function(label, |b| {
            b.iter_batched(
                || image.clone(),
                |mut db| {
                    db.repair_after_crash();
                    Physiological.recover(&mut db).expect("recovery succeeds");
                    db
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_fault_density(c: &mut Criterion) {
    const CYCLES: usize = 16;
    const OPS_PER_CYCLE: usize = 12;
    let ops = workload(CYCLES * OPS_PER_CYCLE, 9);
    let mut group = c.benchmark_group("crash_storm/fault_density");
    for faulty in [0usize, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("density", format!("{faulty}of{CYCLES}")),
            &faulty,
            |b, &faulty| {
                b.iter(|| {
                    let mut db: Db<PageOpPayload> = Db::new(Geometry::default());
                    let mut rng = StdRng::seed_from_u64(1);
                    for cycle in 0..CYCLES {
                        // Bresenham spread: `faulty` of the CYCLES cycles
                        // carry a fault, evenly interleaved.
                        if (cycle + 1) * faulty / CYCLES > cycle * faulty / CYCLES {
                            let kind = if cycle % 2 == 0 {
                                FaultKind::TornWrite { sectors: 1 }
                            } else {
                                FaultKind::TornFlush { bytes: 5 }
                            };
                            db.arm_faults(FaultPlan { at: 12, kind });
                        }
                        let slice = &ops[cycle * OPS_PER_CYCLE..(cycle + 1) * OPS_PER_CYCLE];
                        for op in slice {
                            match Physiological.execute(&mut db, op) {
                                Ok(_) => {}
                                Err(_) if db.fault_tripped() => {}
                                Err(e) => panic!("execute failed without a fault: {e}"),
                            }
                            match db.chaos_flush(&mut rng, 0.7, 0.3) {
                                Ok(()) => {}
                                Err(_) if db.fault_tripped() => {}
                                Err(e) => panic!("chaos failed without a fault: {e}"),
                            }
                            if db.fault_tripped() {
                                break;
                            }
                        }
                        db.crash();
                        db.repair_after_crash();
                        Physiological.recover(&mut db).expect("recovery succeeds");
                    }
                    db
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_recover_after, bench_fault_density);
criterion_main!(benches);
