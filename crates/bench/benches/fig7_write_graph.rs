//! FIG7 — write-graph evolution: collapse, install, remove-write.
//!
//! The figure shows collapsing the two writers of `x`, forcing the cache
//! to write `y` before `x`. The scaled experiment measures the write
//! graph's operations at realistic sizes: building the graph from the
//! installation graph, collapsing all same-variable writers (how a
//! single-copy cache behaves), installing everything in a legal order,
//! and removing writes hidden by blind followers.
//!
//! Paper-shape expectation: collapse reduces node count to ~#variables;
//! installs stay legal in collapsed order; every step preserves
//! Corollary 5 (checked inline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redo_theory::conflict::ConflictGraph;
use redo_theory::history::History;
use redo_theory::installation::InstallationGraph;
use redo_theory::state::State;
use redo_theory::state_graph::StateGraph;
use redo_theory::write_graph::WriteGraph;
use redo_workload::{Shape, WorkloadSpec};

struct Setup {
    h: History,
    cg: ConflictGraph,
    ig: InstallationGraph,
    sg: StateGraph,
}

fn setup(n: usize, n_vars: u32) -> Setup {
    let h = WorkloadSpec {
        n_ops: n,
        n_vars,
        shape: Shape::Random,
        blind_fraction: 0.5,
        max_reads: 1,
        max_writes: 1,
        ..Default::default()
    }
    .generate(9);
    let cg = ConflictGraph::generate(&h);
    let ig = InstallationGraph::from_conflict(&cg);
    let sg = StateGraph::from_conflict(&h, &cg, &State::zeroed());
    Setup { h, cg, ig, sg }
}

/// Collapse writers of each variable into as few nodes as the graph
/// allows — the single-copy-per-page cache of §5/§6. Pairwise greedy:
/// some merges are illegal (they would create cycles through other
/// variables' nodes); a real cache would then flush the earlier version
/// first, so those pairs simply stay separate here.
fn collapse_per_variable(s: &Setup) -> WriteGraph {
    let mut wg = WriteGraph::from_installation_graph(&s.h, &s.cg, &s.ig, &s.sg);
    for x in s.cg.vars().collect::<Vec<_>>() {
        let writers: Vec<_> =
            s.cg.accessors_of(x)
                .iter()
                .filter(|a| a.writes)
                .map(|a| a.op)
                .collect();
        for pair in writers.windows(2) {
            let (a, b) = (wg.node_of_op(pair[0]), wg.node_of_op(pair[1]));
            if a != b {
                let _ = wg.collapse(&[a, b]);
            }
        }
    }
    wg
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_write_graph");

    // Shape check on a small instance.
    let s = setup(64, 8);
    let wg = collapse_per_variable(&s);
    println!(
        "fig7 shape-check: {} ops collapsed into {} write-graph nodes over {} variables",
        s.h.len(),
        wg.live_count(),
        s.cg.vars().count()
    );
    assert!(wg.live_count() < s.h.len());
    assert!(wg.check_corollary5(&s.ig));

    for n in [64usize, 256, 1024] {
        let s = setup(n, (n / 8).max(2) as u32);
        group.bench_with_input(
            BenchmarkId::new("build_from_installation", n),
            &s,
            |b, s| b.iter(|| WriteGraph::from_installation_graph(&s.h, &s.cg, &s.ig, &s.sg)),
        );
        group.bench_with_input(BenchmarkId::new("collapse_per_variable", n), &s, |b, s| {
            b.iter(|| collapse_per_variable(s))
        });
        group.bench_with_input(BenchmarkId::new("install_everything", n), &s, |b, s| {
            b.iter_batched(
                || collapse_per_variable(s),
                |mut wg| {
                    // Install in any legal order until done.
                    loop {
                        let mins = wg.minimal_uninstalled();
                        if mins.is_empty() {
                            break;
                        }
                        for m in mins {
                            wg.install(m).expect("minimal nodes are installable");
                        }
                    }
                    assert!(wg.check_corollary5(&s.ig));
                    wg
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
