//! FIG4 — conflict state graphs and the states their prefixes determine.
//!
//! The figure shows the conflict state graph of O, P, Q and the system
//! states determined by its prefixes. The scaled experiment measures
//! state-graph construction and prefix-state queries as history length
//! grows, for the figure's read-modify-write shape.
//!
//! Paper-shape expectation: construction is linear-ish in history
//! length; a prefix-state query costs O(written variables), independent
//! of which prefix is asked about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redo_theory::graph::NodeSet;
use redo_theory::state::State;
use redo_theory::state_graph::StateGraph;
use redo_workload::WorkloadSpec;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_state_graph");
    for n in [256usize, 1024, 4096] {
        let h = WorkloadSpec::physiological(n, (n / 8).max(4) as u32).generate(5);
        group.bench_with_input(BenchmarkId::new("construct", n), &h, |b, h| {
            b.iter(|| StateGraph::conflict_state_graph(h, &State::zeroed()))
        });
        let sg = StateGraph::conflict_state_graph(&h, &State::zeroed());
        let prefixes: Vec<NodeSet> = (0..8)
            .map(|i| NodeSet::from_indices(n, 0..(n * i / 8)))
            .collect();
        // Shape check (Lemma 2 for the benchmark instance): each prefix
        // state matches direct re-execution.
        let states = h.states(&State::zeroed());
        for (i, p) in prefixes.iter().enumerate() {
            assert_eq!(sg.state_determined_by(p), states[n * i / 8]);
        }
        group.bench_with_input(
            BenchmarkId::new("prefix_state_query", n),
            &(&sg, &prefixes),
            |b, (sg, prefixes)| {
                let mut i = 0;
                b.iter(|| {
                    i = (i + 1) % prefixes.len();
                    sg.state_determined_by(&prefixes[i])
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("final_state", n), &sg, |b, sg| {
            b.iter(|| sg.final_state())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
