//! FIG1 — Scenario 1 at scale: read-write edges are important.
//!
//! The figure's claim: updating the state against a read-write conflict
//! edge makes the state unrecoverable. The scaled experiment measures
//! the *detector* — the recovery-invariant check — on chain workloads
//! where an operation was installed out of order (violating its rw
//! edges), versus conforming prefix installs. The invariant check is
//! what a recovery auditor runs continuously, so its verdicts and cost
//! are the measurable surface of the figure.
//!
//! Paper-shape expectation: violating states are *always* rejected,
//! conforming states always accepted, with detection cost roughly
//! linear in history length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redo_theory::conflict::ConflictGraph;
use redo_theory::graph::NodeSet;
use redo_theory::installation::InstallationGraph;
use redo_theory::invariant::recovery_invariant_holds;
use redo_theory::log::Log;
use redo_theory::state::State;
use redo_theory::state_graph::StateGraph;
use redo_workload::{Shape, WorkloadSpec};

struct Setup {
    cg: ConflictGraph,
    ig: InstallationGraph,
    sg: StateGraph,
    log: Log,
    conforming_state: State,
    conforming_redo: NodeSet,
    violating_state: State,
    violating_redo: NodeSet,
}

fn setup(n: usize) -> Setup {
    let h = WorkloadSpec {
        n_ops: n,
        n_vars: (n / 2).max(2) as u32,
        shape: Shape::Chain,
        blind_fraction: 0.0,
        max_reads: 1,
        max_writes: 1,
        ..Default::default()
    }
    .generate(1);
    let cg = ConflictGraph::generate(&h);
    let ig = InstallationGraph::from_conflict(&cg);
    let sg = StateGraph::from_conflict(&h, &cg, &State::zeroed());
    let log = Log::from_history(&h);
    // Conforming: first half installed (a conflict prefix).
    let installed = NodeSet::from_indices(n, 0..n / 2);
    let conforming_state = sg.state_determined_by(&installed);
    let conforming_redo = installed.complement();
    // Violating: install only a *late* chain operation without its
    // read-write predecessors — Scenario 1 writ large.
    let bad = NodeSet::from_indices(n, [n - 1]);
    let violating_state = sg.state_determined_by(&bad);
    let violating_redo = bad.complement();
    Setup {
        cg,
        ig,
        sg,
        log,
        conforming_state,
        conforming_redo,
        violating_state,
        violating_redo,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_rw_violation");
    for n in [16usize, 64, 256, 1024] {
        let s = setup(n);
        // Shape check: the verdicts the figure predicts.
        assert!(recovery_invariant_holds(
            &s.cg,
            &s.ig,
            &s.sg,
            &s.log,
            &s.conforming_redo,
            &s.conforming_state
        ));
        assert!(!recovery_invariant_holds(
            &s.cg,
            &s.ig,
            &s.sg,
            &s.log,
            &s.violating_redo,
            &s.violating_state
        ));
        group.bench_with_input(
            BenchmarkId::new("invariant_accepts_conforming", n),
            &s,
            |b, s| {
                b.iter(|| {
                    recovery_invariant_holds(
                        &s.cg,
                        &s.ig,
                        &s.sg,
                        &s.log,
                        &s.conforming_redo,
                        &s.conforming_state,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("invariant_rejects_violation", n),
            &s,
            |b, s| {
                b.iter(|| {
                    recovery_invariant_holds(
                        &s.cg,
                        &s.ig,
                        &s.sg,
                        &s.log,
                        &s.violating_redo,
                        &s.violating_state,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
