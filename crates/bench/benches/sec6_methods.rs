//! SEC6 — the four recovery methods under the crash harness.
//!
//! §6 claims each method maintains the recovery invariant while paying a
//! different mix of costs: logical freezes the disk between checkpoints,
//! physical logs values and replays everything, physiological and
//! generalized pay LSN tests but skip installed work. The experiment
//! measures end-to-end harness runs (execute + chaos flush + checkpoint
//! + crash + recover) and reports the replay/skip mix per method.
//!
//! Paper-shape expectation: physical never skips; the LSN methods skip
//! roughly in proportion to page-flush aggressiveness; all four recover
//! every crash exactly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redo_methods::generalized::Generalized;
use redo_methods::harness::{run, HarnessConfig};
use redo_methods::logical::Logical;
use redo_methods::physical::Physical;
use redo_methods::physiological::Physiological;
use redo_methods::RecoveryMethod;
use redo_workload::pages::{PageOp, PageWorkloadSpec};

fn cfg(audit: bool) -> HarnessConfig {
    HarnessConfig {
        checkpoint_every: Some(25),
        crash_every: Some(40),
        chaos: Some((0.8, 0.4)),
        seed: 11,
        audit,
        slots_per_page: 8,
        pool_capacity: None,
        fault: None,
        ..Default::default()
    }
}

fn workload_for(name: &str, n: usize) -> Vec<PageOp> {
    match name {
        "physical" => PageWorkloadSpec {
            n_ops: n,
            n_pages: 8,
            blind_fraction: 1.0,
            ..Default::default()
        }
        .generate(11),
        "physiological" => PageWorkloadSpec {
            n_ops: n,
            n_pages: 8,
            ..Default::default()
        }
        .generate(11),
        "generalized-multi" => PageWorkloadSpec {
            n_ops: n,
            n_pages: 8,
            cross_page_fraction: 0.3,
            multi_page_fraction: 0.3,
            blind_fraction: 0.1,
            ..Default::default()
        }
        .generate(11),
        _ => PageWorkloadSpec {
            n_ops: n,
            n_pages: 8,
            cross_page_fraction: 0.4,
            blind_fraction: 0.1,
            ..Default::default()
        }
        .generate(11),
    }
}

/// Wrapper so the multi-page workload gets its own bench id without a
/// second method type.
#[derive(Clone, Copy, Debug, Default)]
struct GeneralizedMulti;

impl RecoveryMethod for GeneralizedMulti {
    type Payload = <Generalized as RecoveryMethod>::Payload;
    fn name(&self) -> &'static str {
        "generalized-multi"
    }
    fn execute(
        &self,
        db: &mut redo_sim::db::Db<Self::Payload>,
        op: &PageOp,
    ) -> redo_sim::SimResult<redo_theory::log::Lsn> {
        Generalized.execute(db, op)
    }
    fn checkpoint(&self, db: &mut redo_sim::db::Db<Self::Payload>) -> redo_sim::SimResult<()> {
        Generalized.checkpoint(db)
    }
    fn recover(
        &self,
        db: &mut redo_sim::db::Db<Self::Payload>,
    ) -> redo_sim::SimResult<crate_stats::RecoveryStats> {
        Generalized.recover(db)
    }
}

use redo_methods as crate_stats;

fn bench_method<M: RecoveryMethod>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    method: &M,
    n: usize,
) {
    let ops = workload_for(method.name(), n);
    // Shape check + report once per (method, n).
    let report = run(method, &ops, &cfg(false)).expect("harness clean");
    println!(
        "sec6 shape-check [{} n={n}]: replayed {}, skipped {}, crashes {}",
        method.name(),
        report.total_replayed,
        report.total_skipped,
        report.crashes
    );
    group.bench_with_input(BenchmarkId::new(method.name(), n), &ops, |b, ops| {
        b.iter(|| run(method, ops, &cfg(false)).expect("harness clean"))
    });
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec6_methods");
    for n in [200usize, 800] {
        bench_method(&mut group, &Logical, n);
        bench_method(&mut group, &Physical, n);
        bench_method(&mut group, &Physiological, n);
        bench_method(&mut group, &Generalized, n);
        bench_method(&mut group, &GeneralizedMulti, n);
    }
    // The audited variant (theory projection at every crash) at the
    // small size only: quantifies the cost of continuous conformance
    // checking.
    let ops = workload_for("physiological", 200);
    group.bench_function("physiological_with_invariant_audit/200", |b| {
        b.iter(|| run(&Physiological, &ops, &cfg(true)).expect("harness clean"))
    });
    // The fsync-bound axis at the small size only: the same end-to-end
    // harness run (execute + chaos flush + checkpoint + crash + recover)
    // with the disk and log on real files, so every group commit and
    // page install pays an actual fsync. The gap to the in-memory
    // number is the durability tax.
    let file_cfg = HarnessConfig {
        backend: redo_sim::backend::BackendKind::File,
        ..cfg(false)
    };
    group.bench_function("physiological_file_backend/200", |b| {
        b.iter(|| run(&Physiological, &ops, &file_cfg).expect("harness clean"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
