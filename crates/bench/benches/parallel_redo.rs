//! PARALLEL_REDO — Theorem 3 as measured speedup.
//!
//! The theorem licenses replaying the uninstalled set in *any*
//! conflict-consistent order, which includes level-parallel execution
//! of the restricted conflict DAG. Two experiments:
//!
//! **Abstract replay** compares sequential `replay_uninstalled` against
//! the level scheduler (`replay_schedule` on a pre-planned
//! [`RedoSchedule`], plus planning benchmarked separately) at 1/2/4/8
//! worker threads over three history shapes with very different DAG
//! depths: `wide` (blind writes, near-antichain — maximal parallelism),
//! `rmw` (read-modify-write chains, moderate width), and `chain`
//! (depth = n, width ≈ 1 — the adversarial case where parallelism can
//! win nothing). Abstract operations are nanosecond-scale expression
//! evaluations, so this measures *scheduling overhead*, not speedup:
//! expect serial to win and the gap to quantify the per-level barrier
//! cost.
//!
//! **Partitioned recovery** is where the theorem pays: page-partitioned
//! redo for the physiological method (§6.3), where each worker rebuilds
//! whole page images from its own log partition — one thread spawn per
//! worker, work proportional to the log tail. Serial `recover` vs
//! `recover_physiological_parallel` at 1/2/4/8 threads on a chaotically
//! flushed crashed database.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_methods::parallel::recover_physiological_parallel;
use redo_methods::physiological::Physiological;
use redo_methods::RecoveryMethod;
use redo_sim::db::{Db, Geometry};
use redo_theory::conflict::ConflictGraph;
use redo_theory::graph::NodeSet;
use redo_theory::history::History;
use redo_theory::installation::InstallationGraph;
use redo_theory::replay::replay_uninstalled;
use redo_theory::schedule::{replay_parallel, replay_schedule, RedoSchedule};
use redo_theory::state::State;
use redo_theory::state_graph::StateGraph;
use redo_workload::pages::PageWorkloadSpec;
use redo_workload::{Shape, WorkloadSpec};

struct Setup {
    h: History,
    cg: ConflictGraph,
    sg: StateGraph,
    installed: NodeSet,
    start: State,
}

fn setup(shape: Shape, n: usize, n_vars: u32) -> Setup {
    let spec = WorkloadSpec {
        n_ops: n,
        n_vars,
        shape,
        ..WorkloadSpec::default()
    };
    let h = spec.generate(17);
    let cg = ConflictGraph::generate(&h);
    let sg = StateGraph::conflict_state_graph(&h, &State::zeroed());
    // The first quarter of the history (closed downward in the
    // installation graph) is already installed, leaving a large
    // uninstalled tail for every shape.
    let ig = InstallationGraph::from_conflict(&cg);
    let seeds = NodeSet::from_indices(h.len(), 0..n / 4);
    let installed = ig.dag().prefix_closure(&seeds);
    let start = sg.state_determined_by(&installed);
    Setup {
        h,
        cg,
        sg,
        installed,
        start,
    }
}

fn bench_abstract(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    let cases = [
        ("wide", Shape::Blind, 4_000usize, 1_024u32),
        ("rmw", Shape::ReadModifyWrite, 4_000, 64),
        ("chain", Shape::Chain, 4_000, 8),
    ];
    for (label, shape, n, n_vars) in cases {
        let s = setup(shape, n, n_vars);
        let schedule = RedoSchedule::plan(&s.cg, &s.installed);
        // Shape checks before timing: the plan is legal and serial and
        // parallel replay agree on the final state at every width.
        schedule
            .validate(&s.cg, &s.installed)
            .expect("planned schedule must be legal");
        let serial = replay_uninstalled(&s.h, &s.sg, &s.installed, &s.start).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let parallel =
                replay_parallel(&s.h, &s.cg, &s.sg, &s.installed, &s.start, threads).unwrap();
            assert_eq!(serial, parallel, "serial and parallel replay must agree");
        }
        println!(
            "parallel_redo shape-check [{label}]: {} uninstalled ops, depth {}, width {}",
            schedule.len(),
            schedule.depth(),
            schedule.width()
        );

        group.bench_with_input(BenchmarkId::new(format!("{label}_plan"), n), &s, |b, s| {
            b.iter(|| RedoSchedule::plan(&s.cg, &s.installed))
        });
        group.bench_with_input(
            BenchmarkId::new(format!("{label}_serial"), n),
            &s,
            |b, s| b.iter(|| replay_uninstalled(&s.h, &s.sg, &s.installed, &s.start).unwrap()),
        );
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_parallel_t{threads}"), n),
                &(&s, &schedule),
                |b, (s, schedule)| {
                    b.iter(|| {
                        replay_schedule(
                            &s.h,
                            &s.cg,
                            &s.sg,
                            &s.installed,
                            schedule,
                            &s.start,
                            threads,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
}

fn crashed_physiological_db(
    n_ops: usize,
    n_pages: u32,
) -> Db<<Physiological as RecoveryMethod>::Payload> {
    let ops = PageWorkloadSpec {
        n_ops,
        n_pages,
        ..Default::default()
    }
    .generate(23);
    let mut db = Db::new(Geometry::default());
    let mut rng = StdRng::seed_from_u64(7);
    for op in &ops {
        Physiological.execute(&mut db, op).unwrap();
        // Flush the log eagerly but pages rarely, so recovery finds a
        // long tail of genuinely uninstalled operations to replay.
        db.chaos_flush(&mut rng, 0.9, 0.01).unwrap();
    }
    db.log.flush_all();
    db.crash();
    db
}

fn bench_partitioned(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    let n_ops = 3_000;
    let n_pages = 64;
    let crashed = crashed_physiological_db(n_ops, n_pages);
    // Shape check: parallel recovery at every width reproduces the
    // serial stats and post-recovery state.
    let mut serial_db = crashed.clone();
    let serial_stats = Physiological.recover(&mut serial_db).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let mut db = crashed.clone();
        let stats = recover_physiological_parallel(&mut db, threads).unwrap();
        assert_eq!(stats, serial_stats, "threads={threads}");
        assert_eq!(
            db.volatile_theory_state(),
            serial_db.volatile_theory_state()
        );
    }
    println!(
        "parallel_redo shape-check [physiological]: scanned {}, replayed {}, skipped {}",
        serial_stats.scanned,
        serial_stats.replayed.len(),
        serial_stats.skipped.len()
    );

    group.bench_with_input(
        BenchmarkId::new("physiological_serial", n_ops),
        &crashed,
        |b, crashed| {
            b.iter_batched(
                || (*crashed).clone(),
                |mut db| Physiological.recover(&mut db).unwrap(),
                BatchSize::LargeInput,
            )
        },
    );
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("physiological_parallel_t{threads}"), n_ops),
            &crashed,
            |b, crashed| {
                b.iter_batched(
                    || (*crashed).clone(),
                    |mut db| recover_physiological_parallel(&mut db, threads).unwrap(),
                    BatchSize::LargeInput,
                )
            },
        );
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_redo");
    bench_abstract(&mut group);
    bench_partitioned(&mut group);
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
