//! STEADY_STATE — the adaptive checkpoint/flush control loop vs the
//! open-loop fixed-period daemon, under sustained Zipf multi-tenant
//! traffic with one deliberately cold page (written once at the start
//! and never again — the recLSN anchor that defeats open-loop
//! checkpointing).
//!
//! Two configurations drive the identical operation stream through the
//! concurrent substrate:
//!
//! * `fixed` — the open-loop daemon: `checkpoint_tick` on a fixed
//!   cadence, no targeted flushing. The cold page pins every
//!   checkpoint's redo-start at its recLSN, so the restart suffix (the
//!   stable bytes a crash would force recovery to scan) grows
//!   **monotonically** with the run — restart latency scales with
//!   lifetime, not churn.
//! * `controller` — the closed loop: `control_tick` against a
//!   [`RestartBudget`]. Each tick estimates the restart cost, flushes
//!   coldest-first until the truncation horizon clears the budget,
//!   publishes (mostly incremental delta) checkpoints, and applies
//!   per-shard archive pressure. The suffix stays **under twice the
//!   budget** for the whole run.
//!
//! Shape checks before timing assert exactly that story, plus state
//! identity: both crashed images recover to the same issue-order state,
//! and the controller image's restart scan decodes far fewer bytes.
//! Foreground latency percentiles (p50 / p95 / p99 / max per
//! operation, checkpoint stalls included) are printed for both
//! configurations. The timed benchmarks measure crash recovery on each
//! image.
//!
//! Set `STEADY_STATE_SMOKE=1` to run the short CI smoke shape-check
//! (the asserts still run; the run is just shorter).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_methods::concurrent::SharedDb;
use redo_methods::control::{Controller, RestartBudget};
use redo_methods::generalized::Generalized;
use redo_methods::RecoveryMethod;
use redo_sim::db::Geometry;
use redo_theory::state::State;
use redo_workload::pages::{Cell, PageId, PageOp, PageOpKind, SlotId};
use redo_workload::Zipf;

/// Tenants of the multi-tenant stream: each owns a disjoint page range
/// with its own skew — hot tenants churn a few pages, colder tenants
/// spread wide, so per-shard live-byte pressure is uneven.
const TENANTS: [(u32, f64); 4] = [(0, 1.1), (16, 0.9), (32, 0.6), (48, 0.3)];
const PAGES_PER_TENANT: usize = 16;
/// The page written exactly once, first — the cold recLSN anchor.
const COLD_PAGE: PageId = PageId(200);

/// The shared multi-tenant operation stream: one cold write, then
/// round-robin Zipf traffic across the tenants.
fn workload(n_ops: u32, seed: u64) -> Vec<PageOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipfs: Vec<(u32, Zipf)> = TENANTS
        .iter()
        .map(|&(base, s)| (base, Zipf::new(PAGES_PER_TENANT, s)))
        .collect();
    let mut ops = Vec::with_capacity(n_ops as usize + 1);
    let cold = Cell {
        page: COLD_PAGE,
        slot: SlotId(0),
    };
    ops.push(PageOp {
        id: 0,
        kind: PageOpKind::Blind,
        reads: vec![],
        writes: vec![cold],
        f_seed: 77,
    });
    for i in 0..n_ops {
        let (base, zipf) = &zipfs[i as usize % TENANTS.len()];
        let cell = Cell {
            page: PageId(base + zipf.sample(&mut rng) as u32),
            slot: SlotId(0),
        };
        ops.push(PageOp {
            id: i + 1,
            kind: PageOpKind::Physiological,
            reads: vec![cell],
            writes: vec![cell],
            f_seed: 9,
        });
    }
    ops
}

struct RunOutcome {
    image: redo_sim::db::Db<redo_methods::oprecord::PageOpPayload>,
    /// Restart-suffix estimate sampled after every cadence tick.
    suffix_samples: Vec<u64>,
    /// Per-operation foreground latency (checkpoint stalls included).
    latencies: Vec<Duration>,
    checkpoints_taken: u64,
    deltas_published: u64,
    truncated_bytes: u64,
}

/// Drives the workload through one configuration and crashes it.
fn drive(ops: &[PageOp], cadence: usize, controller: Option<&Controller>) -> RunOutcome {
    let shared = SharedDb::new(Geometry { slots_per_page: 8 });
    let mut suffix_samples = Vec::new();
    let mut latencies = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let t = Instant::now();
        shared.execute(op).expect("execute");
        if (i + 1).is_multiple_of(cadence) {
            shared.commit_tick();
            match controller {
                Some(c) => {
                    shared.control_tick(c).expect("control tick");
                }
                None => {
                    shared.checkpoint_tick().expect("fixed checkpoint");
                }
            }
            suffix_samples.push(shared.restart_estimate().suffix_bytes);
        }
        latencies.push(t.elapsed());
    }
    shared.commit_tick();
    let stats = shared.daemon_stats();
    shared.shutdown();
    RunOutcome {
        image: shared.crash(),
        suffix_samples,
        latencies,
        checkpoints_taken: stats.checkpoints_taken,
        deltas_published: stats.deltas_published,
        truncated_bytes: stats.truncated_bytes,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn print_latencies(label: &str, latencies: &[Duration]) {
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    println!(
        "steady_state latency [{label}]: p50 {:?}, p95 {:?}, p99 {:?}, max {:?} over {} ops",
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.95),
        percentile(&sorted, 0.99),
        sorted.last().copied().unwrap_or_default(),
        sorted.len(),
    );
}

fn recovered_state(
    image: &redo_sim::db::Db<redo_methods::oprecord::PageOpPayload>,
) -> (State, u64) {
    let mut db = image.clone();
    let stats = Generalized.recover(&mut db).expect("image recovers");
    (db.volatile_theory_state(), stats.bytes_scanned)
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("STEADY_STATE_SMOKE").is_ok();
    let n_ops: u32 = if smoke { 2_000 } else { 20_000 };
    let cadence = 50usize;
    let budget = RestartBudget {
        max_suffix_bytes: 16 * 1024,
        max_dirty_pages: 32,
        ..Default::default()
    };
    let controller = Controller::new(budget.clone());
    let ops = workload(n_ops, 23);

    let adaptive = drive(&ops, cadence, Some(&controller));
    let fixed = drive(&ops, cadence, None);

    // Shape check 1 — the open loop's pathology: with the cold page
    // pinning redo-start, the fixed daemon's restart suffix grows
    // monotonically for the entire run.
    assert!(
        fixed.suffix_samples.windows(2).all(|w| w[1] >= w[0]),
        "fixed daemon suffix must grow monotonically: {:?}",
        fixed.suffix_samples
    );
    assert!(
        fixed.suffix_samples.last().copied().unwrap_or(0) > 2 * budget.max_suffix_bytes,
        "the run is long enough that the open loop blows the budget"
    );

    // Shape check 2 — the closed loop's bound: after a short warmup
    // every post-tick estimate stays under twice the budget.
    let warmup = 4usize.min(adaptive.suffix_samples.len());
    for (k, &s) in adaptive.suffix_samples.iter().enumerate().skip(warmup) {
        assert!(
            s < 2 * budget.max_suffix_bytes,
            "controller suffix blew the budget at tick {k}: {s} bytes (budget {})",
            budget.max_suffix_bytes
        );
    }
    assert!(
        adaptive.checkpoints_taken > 0,
        "controller fired checkpoints"
    );
    assert!(
        adaptive.deltas_published > 0,
        "controller published incremental deltas"
    );
    assert!(
        adaptive.truncated_bytes > 0,
        "controller advanced the horizon"
    );

    // Shape check 3 — identical semantics, cheaper restart: both
    // crashed images recover the same issue-order state, and the
    // controller image's scan decodes fewer stable bytes.
    let (adaptive_state, adaptive_scanned) = recovered_state(&adaptive.image);
    let (fixed_state, fixed_scanned) = recovered_state(&fixed.image);
    assert_eq!(
        adaptive_state, fixed_state,
        "the controller changed the recovered state"
    );
    assert!(
        adaptive_scanned < fixed_scanned,
        "controller restart must scan less: {adaptive_scanned} vs {fixed_scanned} bytes"
    );

    println!(
        "steady_state shape-check [n={n_ops}]: controller suffix {:?} -> {:?} bytes \
         ({} checkpoints, {} deltas, {} bytes truncated); fixed suffix {:?} -> {:?} bytes; \
         restart scans {adaptive_scanned} vs {fixed_scanned} bytes",
        adaptive.suffix_samples.first(),
        adaptive.suffix_samples.last(),
        adaptive.checkpoints_taken,
        adaptive.deltas_published,
        adaptive.truncated_bytes,
        fixed.suffix_samples.first(),
        fixed.suffix_samples.last(),
    );
    print_latencies("controller", &adaptive.latencies);
    print_latencies("fixed", &fixed.latencies);

    let mut group = c.benchmark_group("steady_state");
    for (label, outcome) in [("recover_controller", &adaptive), ("recover_fixed", &fixed)] {
        group.bench_with_input(
            BenchmarkId::new(label, n_ops),
            &outcome.image,
            |b, image| {
                b.iter_batched(
                    || (*image).clone(),
                    |mut db| Generalized.recover(&mut db).unwrap(),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
