//! FIG2 — Scenario 2 at scale: write-read edges are unimportant.
//!
//! The figure's claim: the state-update order may violate write-read
//! conflict edges, so the installation graph (conflict graph minus
//! pure-wr edges) admits strictly more legal install orders. The scaled
//! experiment measures (a) how many conflict edges write-read-heavy
//! workloads shed, and (b) the cost of deriving the installation graph —
//! plus a shape check that the prefix count strictly grows whenever any
//! edge is shed.
//!
//! Paper-shape expectation: wr-heavy workloads shed a large fraction of
//! their edges; the prefix count of the installation graph is ≥ the
//! conflict graph's, strictly greater when any pure-wr edge existed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redo_theory::conflict::ConflictGraph;
use redo_theory::history::History;
use redo_theory::installation::InstallationGraph;
use redo_workload::{Shape, WorkloadSpec};

fn workload(n: usize, shape: Shape, blind: f64) -> History {
    WorkloadSpec {
        n_ops: n,
        n_vars: 16,
        shape,
        blind_fraction: blind,
        max_reads: 2,
        max_writes: 1,
        ..Default::default()
    }
    .generate(2)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_wr_flexibility");

    // Shape check + report: edge shedding per workload family.
    for (name, shape, blind) in [
        ("wr_heavy", Shape::WriteReadHeavy, 0.9),
        ("random", Shape::Random, 0.3),
        ("blind", Shape::Blind, 1.0),
    ] {
        let h = workload(512, shape, blind);
        let cg = ConflictGraph::generate(&h);
        let ig = InstallationGraph::from_conflict(&cg);
        let shed = ig.removed_edges().len();
        let total = cg.dag().edge_count();
        println!(
            "fig2 shape-check [{name}]: {shed}/{total} conflict edges are pure write-read and shed"
        );
        if name == "wr_heavy" {
            assert!(
                shed * 4 > total,
                "wr-heavy should shed a large fraction: {shed}/{total}"
            );
        }
        if name == "blind" {
            assert_eq!(shed, 0, "blind workloads have no write-read edges at all");
        }
    }
    // Prefix-count growth on a small instance (counting is exponential).
    let h = workload(14, Shape::WriteReadHeavy, 0.9);
    let cg = ConflictGraph::generate(&h);
    let ig = InstallationGraph::from_conflict(&cg);
    let pc = cg.dag().count_prefixes(2_000_000).expect("small");
    let pi = ig.count_prefixes(2_000_000).expect("small");
    println!("fig2 shape-check: conflict prefixes {pc} <= installation prefixes {pi}");
    assert!(pi >= pc);

    for n in [128usize, 512, 2048] {
        let h = workload(n, Shape::WriteReadHeavy, 0.9);
        let cg = ConflictGraph::generate(&h);
        group.bench_with_input(
            BenchmarkId::new("derive_installation_graph", n),
            &cg,
            |b, cg| b.iter(|| InstallationGraph::from_conflict(cg)),
        );
        group.bench_with_input(
            BenchmarkId::new("generate_conflict_graph", n),
            &h,
            |b, h| b.iter(|| ConflictGraph::generate(h)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
