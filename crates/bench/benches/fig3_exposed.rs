//! FIG3 — Scenario 3 at scale: only exposed variables matter.
//!
//! The figure's claim: a variable whose next uninstalled access is a
//! blind write is *unexposed* — its stable value is irrelevant to
//! recovery. The scaled experiment sweeps the blind-write fraction and
//! measures (a) the fraction of variables left unexposed at a mid-run
//! install point (more blind writes ⇒ more unexposed ⇒ fewer values the
//! cache must write atomically) and (b) the cost of the exposure
//! computation itself, fast path vs literal graph definition.
//!
//! Paper-shape expectation: unexposed count grows with the blind
//! fraction; the accessor-chain fast path beats the graph-minimality
//! path by orders of magnitude at scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redo_theory::conflict::ConflictGraph;
use redo_theory::exposed::{exposed_vars, is_exposed_by_graph, unexposed_vars};
use redo_theory::graph::NodeSet;
use redo_workload::{Shape, WorkloadSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_exposed");

    // Shape check: blind fraction drives unexposure. The mixed shape
    // makes the first-uninstalled-accessor coin explicit: RMW accessors
    // expose, blind accessors hide.
    let mut last = 0usize;
    for blind in [0.0, 0.5, 1.0] {
        let h = WorkloadSpec {
            n_ops: 400,
            n_vars: 64,
            blind_fraction: blind,
            shape: Shape::MixedRmwBlind,
            max_reads: 1,
            max_writes: 1,
            ..Default::default()
        }
        .generate(3);
        let cg = ConflictGraph::generate(&h);
        let installed = NodeSet::from_indices(h.len(), 0..h.len() / 2);
        let unexposed = unexposed_vars(&cg, &installed).len();
        println!("fig3 shape-check: blind={blind:.1} -> {unexposed} unexposed variables");
        assert!(
            unexposed >= last,
            "unexposure should not shrink as blindness grows"
        );
        last = unexposed;
    }

    for n in [256usize, 1024, 4096] {
        let h = WorkloadSpec {
            n_ops: n,
            n_vars: (n / 8).max(4) as u32,
            blind_fraction: 0.5,
            shape: Shape::Random,
            ..Default::default()
        }
        .generate(4);
        let cg = ConflictGraph::generate(&h);
        let installed = NodeSet::from_indices(n, 0..n / 2);
        group.bench_with_input(
            BenchmarkId::new("exposed_vars_fast_path", n),
            &(&cg, &installed),
            |b, (cg, installed)| b.iter(|| exposed_vars(cg, installed)),
        );
        // The literal definition is far slower; bench it on the small
        // size only so the comparison exists without dominating runtime.
        if n == 256 {
            group.bench_with_input(
                BenchmarkId::new("exposed_vars_graph_definition", n),
                &(&cg, &installed),
                |b, (cg, installed)| {
                    b.iter(|| {
                        cg.vars()
                            .filter(|&x| is_exposed_by_graph(cg, installed, x))
                            .count()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
