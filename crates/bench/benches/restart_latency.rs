//! RESTART_LATENCY — the checkpoint daemon's bounded-restart SLA.
//!
//! Recovery time for the generalized method over growing live runs
//! (1k / 10k / 100k operations), in two configurations per size:
//!
//! * `no_daemon` — no checkpoint ever published: recovery decodes the
//!   entire stable log. Restart latency scales with the *lifetime* of
//!   the database.
//! * `daemon` — online fuzzy checkpoints every 500 operations
//!   ([`GeneralizedOnline::checkpoint_online`]): each publication moves
//!   the master pointer and truncates the log prefix below its
//!   redo-start, so the retained log — and with it the restart scan —
//!   tracks the *churn window* (how far the dirtiest page lags), not
//!   the run length. Restart latency stays roughly flat as the live
//!   run grows 10×.
//!
//! * `ondemand_first_read` — **time to first served read**: the
//!   instant-restart axis. On the daemon image, [`OnDemand::open`]
//!   places recovery gates from the analysis alone (no scan, no
//!   replay), and the first read pays for exactly its page's residual
//!   component. Where the two offline configurations measure
//!   time-to-*open*, this measures what a client actually waits:
//!   open + one lazy replay.
//!
//! Shape checks before timing assert the telemetry tells that story:
//! the daemon image's recovery starts from a published checkpoint and
//! decodes **under 20%** of the records the run ever logged (for the
//! 100k run it is well under 1%), while recovering the *identical*
//! state the full-scan image recovers; the on-demand drain also lands
//! on that state, and at the 100k image its time to first served read
//! is **at least 10× lower** than the full offline redo's completion.
//!
//! Set `RESTART_LATENCY_SMOKE=1` to run only the smallest size (CI's
//! smoke iteration).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_methods::ondemand::OnDemand;
use redo_methods::online::GeneralizedOnline;
use redo_methods::oprecord::PageOpPayload;
use redo_methods::RecoveryMethod;
use redo_sim::db::{Db, Geometry};
use redo_workload::pages::{Cell, PageId, PageWorkloadSpec, SlotId};

/// A crashed database after an `n_ops` live run with group-committed
/// log flushes, background page cleaning, and (optionally) the online
/// checkpoint discipline every 500 operations. Also returns the total
/// number of records the run ever appended durably — truncated prefix
/// included — as the denominator for the bounded-scan check.
fn crashed_db(n_ops: usize, daemon: bool) -> (Db<PageOpPayload>, usize) {
    let ops = PageWorkloadSpec {
        n_ops,
        n_pages: 64,
        cross_page_fraction: 0.2,
        multi_page_fraction: 0.1,
        blind_fraction: 0.1,
        ..Default::default()
    }
    .generate(23);
    let mut db = Db::new(Geometry::default());
    let mut rng = StdRng::seed_from_u64(7);
    for (i, op) in ops.iter().enumerate() {
        GeneralizedOnline.execute(&mut db, op).unwrap();
        db.chaos_flush(&mut rng, 0.9, 0.05).unwrap();
        if daemon && (i + 1) % 500 == 0 {
            GeneralizedOnline::checkpoint_online(&mut db)
                .unwrap()
                .expect("unfaulted publication lands");
        }
    }
    db.log.flush_all();
    db.crash();
    let total = db.log.truncated_records() as usize + db.log.stable_count();
    (db, total)
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("RESTART_LATENCY_SMOKE").is_ok();
    let sizes: &[usize] = if smoke {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut group = c.benchmark_group("restart_latency");
    for &n in sizes {
        // (The daemon run's total is slightly larger: it includes the
        // checkpoint records themselves.)
        let (full, full_total) = crashed_db(n, false);
        let (daemon, daemon_total) = crashed_db(n, true);

        // Shape checks: the daemon bounds the restart scan and changes
        // nothing about the recovered state.
        let mut probe = full.clone();
        let full_stats = GeneralizedOnline.recover(&mut probe).unwrap();
        let full_state = probe.volatile_theory_state();
        let mut probe = daemon.clone();
        let daemon_stats = GeneralizedOnline.recover(&mut probe).unwrap();
        assert!(
            daemon_stats.checkpoint_lsn.is_some(),
            "daemon recovery must start from a published checkpoint"
        );
        assert!(
            daemon_stats.truncated_bytes > 0,
            "the daemon must have reclaimed log prefix"
        );
        assert!(
            daemon_stats.records_decoded * 5 <= daemon_total,
            "restart scan must stay under 20% of the log ever written: \
             decoded {} of {} records",
            daemon_stats.records_decoded,
            daemon_total
        );
        assert_eq!(
            probe.volatile_theory_state(),
            full_state,
            "the daemon changed the recovered state"
        );
        // The lazy path must drain to the same state as both offline
        // scans.
        let mut probe = daemon.clone();
        OnDemand.recover(&mut probe).unwrap();
        assert_eq!(
            probe.volatile_theory_state(),
            full_state,
            "the on-demand drain changed the recovered state"
        );
        // Fix the first-read probe: the lowest gated page of the
        // daemon image (falling back to page 0 if nothing is gated).
        let probe_cell = {
            let mut scout = daemon.clone();
            let restart = OnDemand::open(&mut scout).unwrap();
            let page = (0..64).map(PageId).find(|&p| restart.is_gated(p));
            Cell {
                page: page.unwrap_or(PageId(0)),
                slot: SlotId(0),
            }
        };
        println!(
            "restart_latency shape-check [n={n}]: full scan decodes {} of {} records; \
             daemon decodes {} (checkpoint at {:?}, {} stable bytes reclaimed)",
            full_stats.records_decoded,
            full_total,
            daemon_stats.records_decoded,
            daemon_stats.checkpoint_lsn,
            daemon_stats.truncated_bytes,
        );
        if n == 100_000 {
            // The acceptance ratio: time to first served read through
            // the lazy path vs the full offline redo's completion, on
            // the same 100k-operation run. Minimum of three runs each
            // to shave scheduler noise.
            let offline = (0..3)
                .map(|_| {
                    let mut db = full.clone();
                    let t = std::time::Instant::now();
                    GeneralizedOnline.recover(&mut db).unwrap();
                    t.elapsed()
                })
                .min()
                .unwrap();
            let first_read = (0..3)
                .map(|_| {
                    let mut db = daemon.clone();
                    let t = std::time::Instant::now();
                    let mut restart = OnDemand::open(&mut db).unwrap();
                    restart.read_cell(&mut db, probe_cell).unwrap();
                    t.elapsed()
                })
                .min()
                .unwrap();
            println!(
                "restart_latency shape-check [n={n}]: full offline redo {offline:?}, \
                 on-demand first served read {first_read:?} ({:.0}x)",
                offline.as_secs_f64() / first_read.as_secs_f64().max(f64::EPSILON),
            );
            assert!(
                offline >= first_read * 10,
                "time to first served read must beat full offline redo 10x: \
                 {first_read:?} vs {offline:?}"
            );
        }

        for (label, image) in [("no_daemon", &full), ("daemon", &daemon)] {
            group.bench_with_input(BenchmarkId::new(label, n), image, |b, image| {
                b.iter_batched(
                    || (*image).clone(),
                    |mut db| GeneralizedOnline.recover(&mut db).unwrap(),
                    BatchSize::LargeInput,
                )
            });
        }
        group.bench_with_input(
            BenchmarkId::new("ondemand_first_read", n),
            &daemon,
            |b, image| {
                b.iter_batched(
                    || (*image).clone(),
                    |mut db| {
                        let mut restart = OnDemand::open(&mut db).unwrap();
                        restart.read_cell(&mut db, probe_cell).unwrap()
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
