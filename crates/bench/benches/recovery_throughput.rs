//! RECOVERY_THROUGHPUT — what the streaming scan and seek index buy.
//!
//! Recovery time for the §6.3 physiological method over growing logs
//! (1k / 10k / 100k operations), in three configurations per size:
//!
//! * `full` — no checkpoint ever taken: recovery decodes the entire
//!   stable log and replays everything. The baseline that scales with
//!   *total* log size.
//! * `ckpt_seek` — a checkpoint at 90% of the run: the master record
//!   bounds replay, and the sparse LSN seek index jumps the scan to the
//!   post-checkpoint suffix, so *decode* work too scales with the
//!   suffix, not the whole log.
//! * `ckpt_noseek` — the same crashed image with the seek index
//!   disabled: the master record still bounds replay, but the scan must
//!   walk (and skip) every pre-checkpoint frame header from offset 0.
//!   The gap to `ckpt_seek` is the seek index's contribution alone.
//! * `ckpt_seek_shards{2,4,8}` — the checkpointed run logged through a
//!   sharded log ([`redo_sim::wal::ShardedLog`]): the serial scan now
//!   merges per-shard cursors, each seeked through its own shard's
//!   index. The gap to `ckpt_seek` is the sharding overhead a *serial*
//!   restart pays (the per-shard decode win needs the parallel restart
//!   — see the `parallel_restart` bench).
//! * `media_intact` / `media_restore` — the same run driven by the
//!   media-capable method (online fuzzy checkpoints feeding the archive
//!   tier), recovered as-is vs. after one page is destroyed out-of-band.
//!   The restore must rebuild the lost page by replaying
//!   `archive ∥ live` from genesis, so its cost tracks *total* history
//!   rather than the checkpoint suffix — the gap to `media_intact` is
//!   the price of a media rebuild.
//!
//! Shape checks before timing assert the telemetry tells the same
//! story: the checkpointed scan decodes at most a quarter of what the
//! full scan decodes (it is ~10% by construction), enters the log
//! through a seek-index hit, and every configuration of the
//! checkpointed image — seek, no-seek, and each shard count — recovers
//! the identical state.
//!
//! Set `RECOVERY_THROUGHPUT_SMOKE=1` to run only the smallest size
//! (CI's smoke iteration).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_methods::media::Media;
use redo_methods::physiological::Physiological;
use redo_methods::RecoveryMethod;
use redo_sim::backend::BackendKind;
use redo_sim::db::{Db, Geometry};
use redo_workload::pages::PageWorkloadSpec;

type PhysioDb = Db<<Physiological as RecoveryMethod>::Payload>;
type MediaDb = Db<<Media as RecoveryMethod>::Payload>;

/// A crashed database after `n_ops` operations with an eagerly flushed
/// log, rare page flushes (so replay has real work), and optionally a
/// checkpoint at 90% of the run.
fn crashed_db(
    n_ops: usize,
    checkpoint_at_90: bool,
    kind: BackendKind,
    log_shards: usize,
) -> PhysioDb {
    let ops = PageWorkloadSpec {
        n_ops,
        n_pages: 64,
        ..Default::default()
    }
    .generate(23);
    let mut db = Db::on_sharded(kind, Geometry::default(), None, log_shards);
    let mut rng = StdRng::seed_from_u64(7);
    let ckpt_at = n_ops * 9 / 10;
    for (i, op) in ops.iter().enumerate() {
        Physiological.execute(&mut db, op).unwrap();
        db.chaos_flush(&mut rng, 0.9, 0.01).unwrap();
        if checkpoint_at_90 && i + 1 == ckpt_at {
            Physiological.checkpoint(&mut db).unwrap();
        }
    }
    db.log.flush_all();
    db.crash();
    db
}

/// A crashed database driven by the media-capable method: online fuzzy
/// checkpoints every 10% of the run keep moving the truncated log
/// prefix into the archive tier, so a media rebuild has real
/// `archive ∥ live` history to replay from genesis.
fn crashed_media_db(n_ops: usize, log_shards: usize) -> MediaDb {
    let ops = PageWorkloadSpec {
        n_ops,
        n_pages: 64,
        ..Default::default()
    }
    .generate(23);
    let mut db = Db::on_sharded(BackendKind::Mem, Geometry::default(), None, log_shards);
    let mut rng = StdRng::seed_from_u64(7);
    let every = (n_ops / 10).max(1);
    for (i, op) in ops.iter().enumerate() {
        Media.execute(&mut db, op).unwrap();
        db.chaos_flush(&mut rng, 0.9, 0.01).unwrap();
        if (i + 1) % every == 0 {
            Media.checkpoint(&mut db).unwrap();
        }
    }
    db.log.flush_all();
    db.crash();
    db
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("RECOVERY_THROUGHPUT_SMOKE").is_ok();
    let sizes: &[usize] = if smoke {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut group = c.benchmark_group("recovery_throughput");
    let shard_counts: &[usize] = &[2, 4, 8];
    for &n in sizes {
        let full = crashed_db(n, false, BackendKind::Mem, 1);
        let ckpt = crashed_db(n, true, BackendKind::Mem, 1);
        let mut ckpt_noseek = ckpt.clone();
        ckpt_noseek.log.disable_seek_index();

        // Shape checks: the telemetry must show the checkpoint bounding
        // decode work and the seek index actually firing, and all three
        // configurations must agree on the recovered state.
        let mut probe = full.clone();
        let full_stats = Physiological.recover(&mut probe).unwrap();
        let mut probe = ckpt.clone();
        let seek_stats = Physiological.recover(&mut probe).unwrap();
        let seeked_state = probe.volatile_theory_state();
        let mut probe = ckpt_noseek.clone();
        let noseek_stats = Physiological.recover(&mut probe).unwrap();
        assert_eq!(seek_stats, noseek_stats, "seek index changed semantics");
        assert_eq!(
            probe.volatile_theory_state(),
            seeked_state,
            "seek index changed the recovered state"
        );
        assert!(
            seek_stats.records_decoded * 4 <= full_stats.records_decoded,
            "checkpointed decode must track the suffix: {} vs {}",
            seek_stats.records_decoded,
            full_stats.records_decoded
        );
        assert!(
            seek_stats.seek_hits >= 1,
            "checkpointed recovery must enter via the seek index"
        );
        println!(
            "recovery_throughput shape-check [n={n}]: full decodes {} records / {} bytes; \
             ckpt+seek decodes {} records / {} bytes ({} seek hit(s)); \
             ckpt without index scans {} bytes",
            full_stats.records_decoded,
            full_stats.bytes_scanned,
            seek_stats.records_decoded,
            seek_stats.bytes_scanned,
            seek_stats.seek_hits,
            noseek_stats.bytes_scanned,
        );

        for (label, image) in [
            ("full", &full),
            ("ckpt_seek", &ckpt),
            ("ckpt_noseek", &ckpt_noseek),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), image, |b, image| {
                b.iter_batched(
                    || (*image).clone(),
                    |mut db| Physiological.recover(&mut db).unwrap(),
                    BatchSize::LargeInput,
                )
            });
        }

        // The sharded-log axis: the same checkpointed run logged across
        // N per-partition logs, recovered by the serial merged-cursor
        // scan. Each shard's cursor must still enter through its own
        // seek index, and the state must match the single log's.
        for &s in shard_counts {
            let sharded = crashed_db(n, true, BackendKind::Mem, s);
            let mut probe = sharded.clone();
            let sharded_stats = Physiological.recover(&mut probe).unwrap();
            assert_eq!(
                probe.volatile_theory_state(),
                seeked_state,
                "{s} log shards changed the recovered state"
            );
            assert!(
                sharded_stats.seek_hits >= 1,
                "sharded checkpointed recovery must enter via the shard seek indexes"
            );
            println!(
                "recovery_throughput shape-check [n={n}]: {s} log shards decode \
                 {} records / {} bytes ({} seek hit(s))",
                sharded_stats.records_decoded, sharded_stats.bytes_scanned, sharded_stats.seek_hits,
            );
            group.bench_with_input(
                BenchmarkId::new(format!("ckpt_seek_shards{s}"), n),
                &sharded,
                |b, image| {
                    b.iter_batched(
                        || (*image).clone(),
                        |mut db| Physiological.recover(&mut db).unwrap(),
                        BatchSize::LargeInput,
                    )
                },
            );
        }

        // The media-restore axis: one page destroyed out-of-band after
        // the crash. Recovery must first rebuild it by replaying
        // `archive ∥ live` from genesis; the intact image of the same
        // run is the baseline the restore's extra cost is measured
        // against.
        {
            let intact = crashed_media_db(n, 2);
            let mut probe = intact.clone();
            Media.recover(&mut probe).unwrap();
            let reference = probe.volatile_theory_state();
            let victim = intact.disk.pages()[0].0;
            let mut damaged = intact.clone();
            damaged.disk.destroy_page(victim);
            damaged.crash();
            let mut probe = damaged.clone();
            Media.recover(&mut probe).unwrap();
            assert!(
                probe.disk.lost_pages().is_empty(),
                "media restore left pages lost"
            );
            assert_eq!(
                probe.volatile_theory_state(),
                reference,
                "media restore diverged from the intact recovery"
            );
            println!(
                "recovery_throughput shape-check [n={n}]: media restore rebuilt page \
                 {victim:?} from {} archived bytes plus {} live stable records",
                intact.log.archived_bytes(),
                intact.log.stable_count(),
            );
            for (label, image) in [("media_intact", &intact), ("media_restore", &damaged)] {
                group.bench_with_input(BenchmarkId::new(label, n), image, |b, image| {
                    b.iter_batched(
                        || (*image).clone(),
                        |mut db| Media.recover(&mut db).unwrap(),
                        BatchSize::LargeInput,
                    )
                });
            }
        }

        // The fsync-bound axis, smallest size only: the same checkpointed
        // crash image living on real files. Recovery's repair pass and
        // every page it installs now pay real fsyncs; each timed iteration
        // recovers a fresh on-disk copy (the clone in the untimed setup
        // copies the backing directory).
        if n == sizes[0] {
            let file_ckpt = crashed_db(n, true, BackendKind::File, 1);
            let mut probe = file_ckpt.clone();
            let file_stats = Physiological.recover(&mut probe).unwrap();
            assert_eq!(
                probe.volatile_theory_state(),
                seeked_state,
                "file backend changed the recovered state"
            );
            println!(
                "recovery_throughput shape-check [n={n}]: file backend decodes {} records / {} bytes",
                file_stats.records_decoded, file_stats.bytes_scanned,
            );
            group.bench_with_input(
                BenchmarkId::new("file_ckpt_seek", n),
                &file_ckpt,
                |b, image| {
                    b.iter_batched(
                        || (*image).clone(),
                        |mut db| Physiological.recover(&mut db).unwrap(),
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
