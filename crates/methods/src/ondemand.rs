//! On-demand ("instant") restart: serve reads *during* recovery via
//! per-page redo.
//!
//! The offline methods hold the database closed until the full redo
//! scan finishes — restart latency is proportional to the retained log,
//! even when the first post-crash read touches a page no surviving
//! record writes. Instant-restart systems (Sauer & Härder) invert the
//! dependency: open immediately, and let the first access to each page
//! pay for exactly that page's replay.
//!
//! The access path is the stable log's **per-page record chain**
//! ([`redo_sim::wal::ShardedLog::page_chain`]): flush time already
//! indexes, for every page, the (LSN, byte offset) of each stable
//! record that writes it, and crash repair prunes the chains with the
//! tail. Analysis is [`Generalized::analyze_dpt`] unchanged — master
//! record, redo-start LSN, fuzzy dirty-page table. A page is **gated**
//! when its chain holds a record at or above the redo-start that the
//! DPT cannot prove installed; everything else is servable the moment
//! the database opens.
//!
//! Serving a read on a gated page replays the page's chain — but not
//! alone. Generalized operations read pages they do not write, and a
//! multi-page write set installs atomically, so the unit of lazy
//! replay is the **transitive closure** of gated pages connected
//! through shared records (a connected component of the residual
//! conflict graph restricted to gated pages). The component's chains
//! merge in global LSN order and replay under the same whole-write-set
//! redo test, write-order constraints, and cycle pre-resolution as
//! [`Generalized::recover`]; per Theorem 3 the order *between*
//! components is free, so serving them on demand in any access order
//! lands on the sequential result. Gates open only after the whole
//! component replays — an error (or crash) mid-component leaves every
//! gate closed, and the next recovery starts from the repaired image
//! as if this one had never run.
//!
//! Media-lost pages ([`redo_sim::SimError::MediaLoss`]) ride the same
//! machinery: a lost page is gated unconditionally — its residual
//! chain is its *entire* history, starting at LSN 1 in the archive —
//! and serving its component first installs the precomputed
//! [`media::rebuild_images`] image, then replays normally.
//!
//! Recovery terminates even without reads: a sweeper drains the
//! remaining gates ([`OnDemandRestart::sweep_one`]), and
//! [`OnDemand::recover`] is exactly open-then-drain, which is how the
//! crash auditor proves the lazy path equivalent to the sequential
//! scan. The concurrent face of this module is
//! [`crate::concurrent::SharedDb::open_on_demand`].

use std::collections::{BTreeMap, BTreeSet};

use redo_sim::db::Db;
use redo_sim::SimResult;
use redo_theory::log::Lsn;
use redo_workload::pages::{Cell, PageId, PageOp};

use redo_sim::page::Page;
use redo_sim::SimError;

use crate::generalized::{register_constraints, would_cycle, Generalized, RestartAnalysis};
use crate::media;
use crate::online::GeneralizedOnline;
use crate::oprecord::PageOpPayload;
use crate::{RecoveryMethod, RecoveryStats};

/// Generalized-LSN recovery through the on-demand (instant restart)
/// path: online fuzzy checkpoints during normal operation, per-page
/// lazy redo after a crash.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnDemand;

/// An open-for-business database that is still recovering: the set of
/// pages whose redo is deferred, and the stats accumulated so far.
///
/// Obtained from [`OnDemand::open`]; drained by reads
/// ([`OnDemandRestart::read_cell`]) and the background sweeper
/// ([`OnDemandRestart::sweep_one`]); closed out by
/// [`OnDemandRestart::finish`].
#[derive(Clone, Debug)]
pub struct OnDemandRestart {
    analysis: RestartAnalysis,
    gates: BTreeSet<PageId>,
    stats: RecoveryStats,
    gates_at_open: usize,
    /// The residual records, decoded through the gated chains at open,
    /// keyed by LSN.
    records: BTreeMap<Lsn, PageOp>,
    /// Gated page → index into `members`/`record_sets`. Components are
    /// fixed at open — computed over the full residual conflict graph,
    /// reads included — so the replay unit cannot shrink as earlier
    /// gates open.
    component_of: BTreeMap<PageId, usize>,
    /// Component → its gated pages.
    members: Vec<BTreeSet<PageId>>,
    /// Component → its record LSNs, ascending.
    record_sets: Vec<Vec<Lsn>>,
    /// Media-rebuild images ([`media::rebuild_images`]) for pages lost
    /// to media failure, plus their transitive closure. A media-lost
    /// page is a gated page whose residual chain is its *entire*
    /// history, starting at LSN 1 in the archive — realized as one
    /// precomputed image installed when its component is served.
    media_images: BTreeMap<PageId, Page>,
}

impl OnDemand {
    /// Opens a crashed database immediately: repair, analysis, gate
    /// placement, and component discovery — no replay, and no
    /// sequential scan of the installed prefix (the residual records
    /// are decoded through the per-page chains alone). Every page whose
    /// chain holds a record the analysis cannot prove installed is
    /// gated; reads on ungated pages are servable at once.
    ///
    /// Components must close over *read* edges as well as write edges:
    /// an operation that reads page `q` and writes page `p` must replay
    /// before a later record writes `q`, or it would observe the future
    /// value (sequential replay, which the write-order constraints
    /// protect, observes the pre-write one). Chains only index writers,
    /// so readers of `q` are discovered from the records on *other*
    /// gated chains — which is why the component structure is computed
    /// here, over every residual record, rather than per access.
    ///
    /// # Errors
    ///
    /// Log corruption at the master record or at a chain offset.
    pub fn open(db: &mut Db<PageOpPayload>) -> SimResult<OnDemandRestart> {
        db.repair_after_crash();
        let analysis = Generalized::analyze_dpt(db)?;
        let mut stats = RecoveryStats {
            checkpoint_lsn: analysis.checkpoint_lsn,
            truncated_bytes: db.log.truncated_bytes(),
            ..RecoveryStats::default()
        };
        let pages: Vec<PageId> = db.log.chained_pages().collect();
        let mut gates = BTreeSet::new();
        for page in pages {
            let needs_redo = db.log.page_chain(page).iter().any(|&(lsn, _)| {
                lsn >= analysis.redo_start && !analysis.provably_installed(page, lsn)
            });
            if needs_redo {
                gates.insert(page);
            }
        }
        // Media-lost pages are gated unconditionally — a lost page is
        // the extreme of "needs redo": its residual chain is its whole
        // archived history, collapsed into the rebuild image. The
        // closure pages come along so replayed cross-page reads never
        // observe a rebuilt (final) image at the wrong moment.
        let media_images = media::rebuild_images(db)?;
        for &page in media_images.keys() {
            gates.insert(page);
        }
        // Decode the residual records chain-directed: every gated
        // page's uninstalled chain entries, each record once.
        let mut records: BTreeMap<Lsn, PageOp> = BTreeMap::new();
        for &page in &gates {
            let entries: Vec<(Lsn, u64)> = db
                .log
                .page_chain(page)
                .iter()
                .copied()
                .filter(|&(lsn, _)| {
                    lsn >= analysis.redo_start && !analysis.provably_installed(page, lsn)
                })
                .collect();
            for (lsn, off) in entries {
                if records.contains_key(&lsn) {
                    continue;
                }
                let rec = db.log.record_for(page, off)?;
                debug_assert_eq!(rec.lsn, lsn, "chain entry points at a foreign frame");
                stats.records_decoded += 1;
                stats.seek_hits += 1;
                if let PageOpPayload::Op(op) = rec.payload {
                    records.insert(lsn, op);
                }
            }
        }
        // Connected components of the residual conflict graph,
        // restricted to gated pages: a record links every gated page it
        // reads or writes.
        let mut touch: BTreeMap<PageId, Vec<Lsn>> = BTreeMap::new();
        for (&lsn, op) in &records {
            for p in op.read_pages().into_iter().chain(op.written_pages()) {
                if gates.contains(&p) {
                    touch.entry(p).or_default().push(lsn);
                }
            }
        }
        let mut component_of: BTreeMap<PageId, usize> = BTreeMap::new();
        let mut members: Vec<BTreeSet<PageId>> = Vec::new();
        let mut record_sets: Vec<Vec<Lsn>> = Vec::new();
        for &start in &gates {
            if component_of.contains_key(&start) {
                continue;
            }
            let id = members.len();
            let mut component: BTreeSet<PageId> = BTreeSet::new();
            let mut lsns: BTreeSet<Lsn> = BTreeSet::new();
            let mut frontier = vec![start];
            while let Some(p) = frontier.pop() {
                if !component.insert(p) {
                    continue;
                }
                component_of.insert(p, id);
                for &lsn in touch.get(&p).into_iter().flatten() {
                    if !lsns.insert(lsn) {
                        continue;
                    }
                    let op = &records[&lsn];
                    for q in op.read_pages().into_iter().chain(op.written_pages()) {
                        if gates.contains(&q) && !component.contains(&q) {
                            frontier.push(q);
                        }
                    }
                }
            }
            members.push(component);
            record_sets.push(lsns.into_iter().collect());
        }
        let gates_at_open = gates.len();
        Ok(OnDemandRestart {
            analysis,
            gates,
            stats,
            gates_at_open,
            records,
            component_of,
            members,
            record_sets,
            media_images,
        })
    }

    /// [`OnDemand::open`], then serve each probe cell mid-recovery,
    /// then drain the remaining gates. Returns the final stats plus the
    /// value each probe observed *while recovery was still in
    /// progress* — the crash auditor cross-validates those against the
    /// sequential probe's final state.
    ///
    /// # Errors
    ///
    /// Substrate errors, including log corruption.
    pub fn restart_with_probes(
        db: &mut Db<PageOpPayload>,
        probes: &[Cell],
    ) -> SimResult<(RecoveryStats, Vec<u64>)> {
        let mut restart = Self::open(db)?;
        let mut served = Vec::with_capacity(probes.len());
        for &cell in probes {
            served.push(restart.read_cell(db, cell)?);
        }
        let stats = restart.finish(db)?;
        Ok((stats, served))
    }
}

impl OnDemandRestart {
    /// Is this page still awaiting its lazy redo?
    #[must_use]
    pub fn is_gated(&self, page: PageId) -> bool {
        self.gates.contains(&page)
    }

    /// Pages still gated.
    #[must_use]
    pub fn gated_count(&self) -> usize {
        self.gates.len()
    }

    /// Pages that were gated when the database opened.
    #[must_use]
    pub fn gates_at_open(&self) -> usize {
        self.gates_at_open
    }

    /// The analysis the gates were placed from.
    #[must_use]
    pub fn analysis(&self) -> &RestartAnalysis {
        &self.analysis
    }

    /// Ensures `page` is fully recovered, lazily replaying its
    /// connected component of gated pages if it is still gated. A no-op
    /// for ungated pages.
    ///
    /// Gates open only after the whole component replays: if this
    /// returns an error (a tripped fault, corruption), every gate is
    /// still closed and a fresh recovery of the repaired image owes
    /// exactly the same work.
    ///
    /// # Errors
    ///
    /// Substrate errors, including log corruption at a chain offset.
    pub fn ensure_recovered(&mut self, db: &mut Db<PageOpPayload>, page: PageId) -> SimResult<()> {
        if !self.gates.contains(&page) {
            return Ok(());
        }
        // Phase 1: look up the page's component — fixed at open over
        // the full residual conflict graph (readers included), so the
        // replay unit is the same whichever access order the workload
        // drives. Per Theorem 3 the order *between* these components is
        // free; order within replays below in global LSN order.
        let id = self.component_of[&page];
        let component = self.members[id].clone();
        let records: Vec<(Lsn, PageOp)> = self.record_sets[id]
            .iter()
            .map(|lsn| (*lsn, self.records[lsn].clone()))
            .collect();
        // Phase 1.5: media rebuild. Install the archive-derived images
        // for the component's lost (and closure) pages before any redo
        // test fetches them — each install is an ordinary faultable
        // page write, idempotently skipped once the disk carries the
        // image. A suppressed or torn install leaves the page lost;
        // refuse to open the gates over it, exactly as a mid-replay
        // error would.
        for &p in &component {
            if let Some(image) = self.media_images.get(&p) {
                if db.disk.is_lost(p) || db.disk.page_lsn(p) < image.lsn() {
                    db.disk.write_page(p, image.clone());
                }
            }
        }
        for &p in &component {
            if db.disk.is_lost(p) {
                return Err(SimError::MediaLoss(p));
            }
        }
        // Phase 2: replay the merged chains in global LSN order under
        // the same redo test, constraints, and cycle pre-resolution as
        // the sequential scan.
        for (lsn, op) in records {
            self.stats.scanned += 1;
            let mut stale = false;
            let mut fresh = false;
            for p in op.written_pages() {
                let stable = db.log.stable_lsn();
                let cached = db
                    .pool
                    .fetch(&mut db.disk, p, db.geometry.slots_per_page, stable)?;
                if cached.lsn() < lsn {
                    stale = true;
                } else {
                    fresh = true;
                }
            }
            debug_assert!(
                !(stale && fresh),
                "atomic group violated: write set of op {} part-installed",
                op.id
            );
            if stale {
                if would_cycle(db, &op) {
                    let stable = db.log.stable_lsn();
                    db.pool.flush_all(&mut db.disk, stable)?;
                }
                db.apply_page_op(&op, lsn)?;
                register_constraints(db, &op, lsn);
                self.stats.replayed.push(op.id);
            } else {
                self.stats.skipped.push(op.id);
            }
        }
        // Phase 3: only now open the gates. Everything above is redo
        // work a crash may discard wholesale; opening early would let a
        // read observe a half-replayed page.
        for p in &component {
            self.gates.remove(p);
        }
        Ok(())
    }

    /// Serves one read mid-recovery: lazily recovers the cell's page
    /// (and its component), then reads through the buffer pool. The
    /// value returned is final — every surviving record writing the
    /// page has been replayed or proven installed by the time the read
    /// is served.
    ///
    /// # Errors
    ///
    /// Substrate errors, including log corruption.
    pub fn read_cell(&mut self, db: &mut Db<PageOpPayload>, cell: Cell) -> SimResult<u64> {
        self.ensure_recovered(db, cell.page)?;
        db.read_cell(cell)
    }

    /// One background sweeper step: recovers the lowest-numbered gated
    /// page's component. Returns `false` when no gates remain — the
    /// termination condition that makes on-demand recovery a *bounded*
    /// restart rather than an indefinitely deferred one.
    ///
    /// # Errors
    ///
    /// Substrate errors, including log corruption.
    pub fn sweep_one(&mut self, db: &mut Db<PageOpPayload>) -> SimResult<bool> {
        let Some(&page) = self.gates.iter().next() else {
            return Ok(false);
        };
        self.ensure_recovered(db, page)?;
        Ok(true)
    }

    /// Drains every remaining gate and closes out the restart,
    /// returning the accumulated stats.
    ///
    /// # Errors
    ///
    /// Substrate errors, including log corruption.
    pub fn finish(mut self, db: &mut Db<PageOpPayload>) -> SimResult<RecoveryStats> {
        while self.sweep_one(db)? {}
        self.stats.forces = db.log.forces();
        Ok(self.stats)
    }
}

impl RecoveryMethod for OnDemand {
    type Payload = PageOpPayload;

    fn name(&self) -> &'static str {
        "ondemand"
    }

    fn execute(&self, db: &mut Db<PageOpPayload>, op: &PageOp) -> SimResult<Lsn> {
        Generalized.execute(db, op)
    }

    fn checkpoint(&self, db: &mut Db<PageOpPayload>) -> SimResult<()> {
        GeneralizedOnline::checkpoint_online(db).map(|_| ())
    }

    fn recover(&self, db: &mut Db<PageOpPayload>) -> SimResult<RecoveryStats> {
        // Open-then-drain: the lazy path run to completion. The redo
        // set it realizes equals the sequential scan's (component order
        // is free by Theorem 3), which the crash auditor checks.
        let restart = OnDemand::open(db)?;
        restart.finish(db)
    }

    fn ondemand_restart(
        &self,
        db: &mut Db<PageOpPayload>,
        probes: &[Cell],
    ) -> Option<SimResult<(RecoveryStats, Vec<u64>)>> {
        Some(OnDemand::restart_with_probes(db, probes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use redo_sim::db::Geometry;
    use redo_sim::fault::{FaultKind, FaultPlan};
    use redo_workload::pages::PageWorkloadSpec;

    fn workload(n: usize, seed: u64) -> Vec<PageOp> {
        PageWorkloadSpec {
            n_ops: n,
            n_pages: 6,
            cross_page_fraction: 0.4,
            multi_page_fraction: 0.2,
            blind_fraction: 0.1,
            ..Default::default()
        }
        .generate(seed)
    }

    fn model(ops: &[PageOp]) -> BTreeMap<Cell, u64> {
        let mut cells = BTreeMap::new();
        for op in ops {
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
        }
        cells
    }

    fn crashed_db(ops: &[PageOp], seed: u64) -> Db<PageOpPayload> {
        crashed_db_with_pool(ops, seed, None)
    }

    fn crashed_db_with_pool(
        ops: &[PageOp],
        seed: u64,
        capacity: Option<usize>,
    ) -> Db<PageOpPayload> {
        let mut db = Db::on(
            redo_sim::backend::BackendKind::Mem,
            Geometry::default(),
            capacity,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        for (i, op) in ops.iter().enumerate() {
            OnDemand.execute(&mut db, op).unwrap();
            db.chaos_flush(&mut rng, 0.7, 0.4).unwrap();
            if (i + 1) % 9 == 0 {
                OnDemand.checkpoint(&mut db).unwrap();
            }
        }
        db.log.flush_all();
        db.crash();
        db
    }

    #[test]
    fn mid_recovery_reads_serve_final_values() {
        for seed in 0..4 {
            let ops = workload(36, seed);
            let mut db = crashed_db(&ops, seed ^ 0xbeef);
            let mut seq = db.clone();
            let seq_stats = Generalized.recover(&mut seq).unwrap();

            let mut restart = OnDemand::open(&mut db).unwrap();
            // Every cell read mid-recovery, in model order, must already
            // show its final recovered value.
            let expect = model(&ops);
            for (&cell, &v) in &expect {
                assert_eq!(
                    restart.read_cell(&mut db, cell).unwrap(),
                    v,
                    "cell {cell:?}"
                );
            }
            let stats = restart.finish(&mut db).unwrap();

            // Lazy and sequential recovery realize the same redo set
            // (replay order across components is free, so compare sets).
            let lazy: BTreeSet<u32> = stats.replayed.iter().copied().collect();
            let sequential: BTreeSet<u32> = seq_stats.replayed.iter().copied().collect();
            assert_eq!(lazy, sequential, "seed {seed}");
            assert_eq!(db.volatile_theory_state(), seq.volatile_theory_state());
        }
    }

    #[test]
    fn open_places_gates_and_sweeper_drains_them() {
        let ops = workload(30, 9);
        let mut db = crashed_db(&ops, 0x5eed);
        let mut restart = OnDemand::open(&mut db).unwrap();
        assert!(restart.gates_at_open() > 0, "chaos left dirty pages");
        assert_eq!(restart.gated_count(), restart.gates_at_open());
        let mut steps = 0;
        while restart.sweep_one(&mut db).unwrap() {
            steps += 1;
        }
        assert!(steps >= 1);
        assert_eq!(restart.gated_count(), 0, "sweeper terminates");
        for (c, v) in model(&ops) {
            assert_eq!(db.read_cell(c).unwrap(), v, "cell {c:?}");
        }
    }

    #[test]
    fn recover_equals_sequential_recovery() {
        for seed in 0..4 {
            let ops = workload(32, 40 + seed);
            let db = crashed_db(&ops, seed);
            let mut lazy = db.clone();
            let mut seq = db;
            let lazy_stats = OnDemand.recover(&mut lazy).unwrap();
            let seq_stats = Generalized.recover(&mut seq).unwrap();
            let l: BTreeSet<u32> = lazy_stats.replayed.iter().copied().collect();
            let s: BTreeSet<u32> = seq_stats.replayed.iter().copied().collect();
            assert_eq!(l, s);
            assert_eq!(lazy.volatile_theory_state(), seq.volatile_theory_state());
            assert_eq!(lazy_stats.checkpoint_lsn, seq_stats.checkpoint_lsn);
        }
    }

    #[test]
    fn probe_hook_serves_values_identical_to_drained_state() {
        let ops = workload(28, 77);
        let db = crashed_db(&ops, 0x77);
        let probes: Vec<Cell> = model(&ops).keys().copied().collect();
        let mut lazy = db.clone();
        let (stats, served) = OnDemand
            .ondemand_restart(&mut lazy, &probes)
            .expect("ondemand implements the hook")
            .unwrap();
        assert_eq!(served.len(), probes.len());
        for (cell, v) in probes.iter().zip(&served) {
            assert_eq!(lazy.read_cell(*cell).unwrap(), *v, "{cell:?}");
        }
        assert!(stats.seek_hits > 0, "chains are positioned reads");
    }

    #[test]
    fn crash_during_lazy_replay_regates_the_page_and_rerun_converges() {
        // Satellite: a crash *during* a lazy per-page replay must leave
        // the interrupted page's gate closed — durably, the next open
        // gates it again, so no half-recovered page is ever servable —
        // and a from-scratch recovery of the re-crashed image must land
        // on the sequential full-redo state.
        //
        // Six independent blind writes, one per page, never flushed:
        // after the crash every page is stale and gated. Recovery runs
        // under a four-frame pool (the pool is volatile, so swapping it
        // in post-crash is the clean way to bound *recovery's* memory
        // without execute-time evictions pre-installing pages): draining
        // the gates in id order must evict a dirty frame on the fifth
        // replay — an eviction is a faultable page write, and the armed
        // fault tears it mid-recovery (injected faults are silent: the
        // machine is dead the moment the injector trips).
        use redo_sim::fault::InjectedFault;
        use redo_workload::pages::{PageOpKind, SlotId};
        let ops: Vec<PageOp> = (0..6)
            .map(|p| PageOp {
                id: p,
                kind: PageOpKind::Blind,
                reads: vec![],
                writes: vec![Cell {
                    page: PageId(p),
                    slot: SlotId(0),
                }],
                f_seed: u64::from(p) + 1,
            })
            .collect();
        let mut db: Db<PageOpPayload> = Db::new(Geometry::default());
        for op in &ops {
            OnDemand.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        db.crash();
        let mut reference = db.clone();
        Generalized.recover(&mut reference).unwrap();

        let mut lazy = db;
        lazy.pool = redo_sim::cache::BufferPool::new(Some(4));
        let mut restart = OnDemand::open(&mut lazy).unwrap();
        assert_eq!(restart.gated_count(), 6, "every dirty page is gated");
        lazy.arm_faults(FaultPlan {
            at: 1,
            kind: FaultKind::TornWrite { sectors: 1 },
        });
        for p in (0..6).map(PageId) {
            restart.ensure_recovered(&mut lazy, p).unwrap();
            if lazy.fault_tripped() {
                break;
            }
        }
        assert!(
            lazy.fault_tripped(),
            "the fifth replay's eviction must hit the armed fault"
        );
        let torn = match lazy.fault_injector().injected() {
            Some(InjectedFault::TornWrite(id)) => id,
            other => panic!("expected a torn eviction, got {other:?}"),
        };
        // The restart object dies with the machine; everything volatile
        // — including every gate it had opened — is gone.
        drop(restart);
        lazy.crash();
        // Reopening repairs the torn page back to its pre-image and
        // must gate it again: its lazy replay never durably completed.
        let reopened = OnDemand::open(&mut lazy).unwrap();
        assert!(
            reopened.is_gated(torn),
            "the interrupted page must be gated again on reopen"
        );
        let stats = reopened.finish(&mut lazy).unwrap();
        assert!(stats.replayed.contains(&torn.0), "its redo work is re-done");
        assert_eq!(
            lazy.volatile_theory_state(),
            reference.volatile_theory_state(),
            "re-run recovery converges to the sequential full-redo state"
        );
        for (c, v) in model(&ops) {
            assert_eq!(lazy.read_cell(c).unwrap(), v, "cell {c:?}");
        }
    }

    #[test]
    fn media_lost_page_is_gated_and_served_from_its_rebuild_image() {
        for seed in 0..3 {
            let ops = workload(32, 60 + seed);
            let db = crashed_db(&ops, seed ^ 0xcafe);
            let mut undamaged = db.clone();
            Generalized.recover(&mut undamaged).unwrap();
            let victim = db
                .disk
                .pages()
                .first()
                .map(|&(id, _)| id)
                .expect("chaos installed pages");
            let mut damaged = db.clone();
            damaged.disk.destroy_page(victim);
            damaged.crash();
            let mut restart = OnDemand::open(&mut damaged).unwrap();
            assert!(
                restart.is_gated(victim),
                "a media-lost page must be gated at open"
            );
            // Serve the lost page mid-recovery: the read installs the
            // rebuild image and answers with the final value.
            let expect = model(&ops);
            for (&cell, &v) in expect.iter().filter(|(c, _)| c.page == victim) {
                assert_eq!(
                    restart.read_cell(&mut damaged, cell).unwrap(),
                    v,
                    "cell {cell:?}"
                );
            }
            assert!(!damaged.disk.is_lost(victim), "serving rebuilds the page");
            restart.finish(&mut damaged).unwrap();
            assert_eq!(
                damaged.volatile_theory_state(),
                undamaged.volatile_theory_state(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn ungated_read_does_no_replay() {
        // A freshly checkpointed, fully flushed database gates nothing:
        // the first read after a crash is served with zero redo work.
        let ops = workload(20, 5);
        let mut db = Db::new(Geometry::default());
        for op in &ops {
            OnDemand.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        db.pool
            .flush_all(&mut db.disk, db.log.stable_lsn())
            .unwrap();
        OnDemand.checkpoint(&mut db).unwrap();
        db.crash();
        let mut restart = OnDemand::open(&mut db).unwrap();
        assert_eq!(restart.gates_at_open(), 0);
        for (c, v) in model(&ops) {
            assert_eq!(restart.read_cell(&mut db, c).unwrap(), v);
        }
        let stats = restart.finish(&mut db).unwrap();
        assert_eq!(stats.scanned, 0, "nothing to replay");
        assert!(stats.replayed.is_empty());
    }
}
