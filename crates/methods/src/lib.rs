//! # redo-methods
//!
//! The concrete redo-recovery methods of the paper's §6, implemented over
//! the `redo-sim` substrate:
//!
//! * [`logical`] — §6.1, System R-style: the disk state is frozen
//!   between checkpoints, updated pages quiesce into a staging area, and
//!   writing the checkpoint record "swings a pointer" that atomically
//!   installs every operation logged since the previous checkpoint.
//!   Recovery replays *everything* after the checkpoint.
//! * [`physical`] — §6.2: log records carry the exact values written
//!   (blind after-images); pages may flush at any time under the WAL
//!   rule because the affected variables stay unexposed; recovery
//!   replays everything after the checkpoint, idempotently.
//! * [`physiological`] — §6.3: operations read and write exactly one
//!   page; every page carries the LSN of its last update; the redo test
//!   compares page LSN with record LSN, so installation happens
//!   page-at-a-time whenever the cache flushes.
//! * [`generalized`] — §6.4: operations may *read* pages they do not
//!   write (the B-tree-split shape of Figure 8); the cache manager must
//!   then respect installation-graph write ordering, which it does via
//!   the buffer pool's write-order [constraints](redo_sim::cache::Constraint).
//! * [`parallel`] — page-partitioned parallel redo for the physical and
//!   physiological methods: Theorem 3 makes LSN order matter only within
//!   a page, so the log tail splits by page id and the partitions replay
//!   on worker threads.
//! * [`online`] — the generalized method with *online* fuzzy
//!   checkpoints: no flushing at checkpoint time, a dirty-page-table
//!   snapshot published via the master pointer, and prefix truncation
//!   of the stable log below the checkpoint's redo-start. The
//!   [`concurrent`] substrate runs the same discipline as a background
//!   checkpoint daemon.
//! * [`media`] — media recovery over the archive tier: a destroyed page
//!   file is rebuilt by replaying `archive ∥ live` from genesis into a
//!   scratch image (with a transitive closure guarding generalized
//!   cross-page reads), then ordinary redo finishes the restart.
//!
//! Every method implements [`RecoveryMethod`]; the [`harness`] module
//! runs workloads against a method with randomized cache flushes,
//! checkpoints, and injected crashes, verifying after every crash that
//!
//! 1. recovery restores exactly the durable prefix of the workload, and
//! 2. the paper's **recovery invariant** held at the moment of the
//!    crash: the operations the redo test bypassed form a prefix of the
//!    installation graph explaining the stable state (checked by
//!    projecting the simulated disk into the theory, bit-for-bit).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod broken;
pub mod concurrent;
pub mod control;
pub mod fuzzy;
pub mod generalized;
pub mod harness;
pub mod logical;
pub mod media;
pub mod ondemand;
pub mod online;
pub mod oprecord;
pub mod parallel;
pub mod physical;
pub mod physiological;

use redo_sim::db::Db;
use redo_sim::wal::{LogPayload, ScanStats};
use redo_sim::SimResult;
use redo_theory::log::Lsn;
use redo_workload::pages::{Cell, PageOp};

/// How many records a recovery scan decodes per [`redo_sim::wal::ShardedScanner`]
/// batch before replaying them — the size of the streaming window.
pub const SCAN_BATCH: usize = 32;

/// What one recovery pass did.
///
/// Splits into two layers: the *semantic* outcome (`scanned`,
/// `replayed`, `skipped` — which operations the redo test chose) and
/// I/O-path *telemetry* (`bytes_scanned`, `records_decoded`,
/// `seek_hits`, `forces`, `pages_prefetched`). Equality compares only
/// the semantic layer: equivalent recoveries — serial vs. parallel,
/// seeked vs. full scan — must agree on what they replayed, while
/// legitimately taking different I/O paths to get there.
#[derive(Clone, Debug, Default, Eq)]
pub struct RecoveryStats {
    /// Log records examined during the scan.
    pub scanned: usize,
    /// Operations replayed (the realized `redo_set`), by workload op id,
    /// in replay order.
    pub replayed: Vec<u32>,
    /// Operations bypassed as already installed.
    pub skipped: Vec<u32>,
    /// Stable-log bytes the recovery scan decoded.
    pub bytes_scanned: u64,
    /// Log records the scan decoded (post-seek; elided prefix records
    /// are neither decoded nor counted).
    pub records_decoded: usize,
    /// Scans that jumped via the LSN seek index.
    pub seek_hits: usize,
    /// Checkpoint records the scan recognized (and, on partitioned
    /// paths, kept out of the page routers).
    pub checkpoint_records: usize,
    /// Coalesced stable log appends (group-commit forces) the database
    /// had performed by the end of recovery.
    pub forces: u64,
    /// Pages batch-prefetched into the buffer pool ahead of replay.
    pub pages_prefetched: usize,
    /// The published checkpoint recovery started from, if any.
    pub checkpoint_lsn: Option<Lsn>,
    /// Stable-log bytes already reclaimed by checkpoint prefix
    /// truncation when recovery ran (work the scan never saw).
    pub truncated_bytes: u64,
}

impl PartialEq for RecoveryStats {
    fn eq(&self, other: &Self) -> bool {
        self.scanned == other.scanned
            && self.replayed == other.replayed
            && self.skipped == other.skipped
    }
}

impl RecoveryStats {
    /// Number of replayed operations.
    #[must_use]
    pub fn replay_count(&self) -> usize {
        self.replayed.len()
    }

    /// Folds one finished scan's telemetry plus the log's force count
    /// into the stats.
    pub fn note_scan(&mut self, scan: ScanStats, forces: u64) {
        self.bytes_scanned += scan.bytes_scanned;
        self.records_decoded += scan.records_decoded;
        self.seek_hits += scan.seek_hits;
        self.checkpoint_records += scan.checkpoint_records;
        self.forces = forces;
    }
}

/// A §6 recovery method: how to log an operation during normal
/// operation, how to checkpoint, and how to recover after a crash.
///
/// Methods keep **no volatile state of their own** — everything recovery
/// needs must live on the disk or in the stable log, because `recover`
/// runs against a freshly crashed [`Db`].
pub trait RecoveryMethod {
    /// What this method writes to the log.
    type Payload: LogPayload;

    /// Human-readable name ("physical", "physiological", ...).
    fn name(&self) -> &'static str;

    /// May the harness flush arbitrary dirty pages between operations?
    /// True for the LSN-based and physical methods; false for logical
    /// recovery, whose disk state may only advance via the checkpoint
    /// pointer swing.
    fn allows_page_chaos(&self) -> bool {
        true
    }

    /// Executes one operation during normal operation: writes the log
    /// record(s), applies the operation to the cache, and registers any
    /// write-order constraints. Returns the operation's LSN.
    ///
    /// # Errors
    ///
    /// Substrate errors (pool exhaustion, protocol violations).
    fn execute(&self, db: &mut Db<Self::Payload>, op: &PageOp) -> SimResult<Lsn>;

    /// Takes a checkpoint, advancing the point from which recovery will
    /// scan the log.
    ///
    /// # Errors
    ///
    /// Substrate errors.
    fn checkpoint(&self, db: &mut Db<Self::Payload>) -> SimResult<()>;

    /// Recovers a crashed database: scans the stable log from the master
    /// record, applies the redo test to each record, and replays the
    /// chosen operations. On return the database is open for business
    /// (its volatile view equals the durable prefix's final state).
    ///
    /// # Errors
    ///
    /// Substrate errors, including log corruption.
    fn recover(&self, db: &mut Db<Self::Payload>) -> SimResult<RecoveryStats>;

    /// Recovers the crashed database through the page-partitioned
    /// *parallel* restart path with `threads` workers, if this method's
    /// logging discipline admits one. Returns `None` for disciplines
    /// that cannot partition by page — generalized-LSN operations may
    /// read pages they do not write, so their conflicts (and Theorem 3's
    /// replay-order freedom) do not decompose per page. The crash
    /// auditor uses this hook to re-run every probe recovery through
    /// the parallel path and demand the identical state.
    fn parallel_restart(
        &self,
        _db: &mut Db<Self::Payload>,
        _threads: usize,
    ) -> Option<SimResult<RecoveryStats>> {
        None
    }

    /// Recovers the crashed database through the *on-demand* (instant
    /// restart) path, if this method implements one: open immediately,
    /// serve each probe cell by lazily replaying only its page's
    /// residual log chain, then drain the remaining gates. Returns the
    /// final stats plus the value each probe observed **while recovery
    /// was still running** — the crash auditor cross-validates those
    /// mid-recovery reads against a sequential full-redo probe's final
    /// state (the Recovery Invariant's instant-restart corollary: a
    /// served page's content never changes after it is served).
    fn ondemand_restart(
        &self,
        _db: &mut Db<Self::Payload>,
        _probes: &[Cell],
    ) -> Option<SimResult<(RecoveryStats, Vec<u64>)>> {
        None
    }
}
