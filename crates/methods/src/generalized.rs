//! Generalized LSN-based recovery (§6.4).
//!
//! Physiological operations read only the page they write. Generalized
//! operations relax that: they may *read other pages* while still writing
//! a single page atomically. §6.4's motivating example is the efficient
//! B-tree split — "read the old full page x, write a new page y with half
//! the contents" — which avoids physically logging the moved keys.
//!
//! The price is a *careful write order*: once such an operation `O`
//! (read `x`, write `y`, LSN `L`) exists, a later overwrite of `x` must
//! not reach disk before `y` does. Otherwise a crash could leave `y`
//! missing while the only copy of what `O` read has been destroyed —
//! `O` must be replayed but is no longer applicable. In write-graph
//! terms this is the read-write installation edge from `O` to `x`'s next
//! writer (Figure 8); operationally it is a buffer-pool
//! [constraint](redo_sim::cache::Constraint): "flushing `x` past LSN `L`
//! requires `y` durable at ≥ `L`".
//!
//! The redo test is the page-LSN test on the (single) written page, as in
//! physiological recovery; when an operation replays, its reads go
//! through the recovery cache, which at that point reflects exactly the
//! updates preceding it — the constraint guarantees the disk never got
//! ahead.

use std::collections::{BTreeMap, BTreeSet};

use redo_sim::cache::Constraint;
use redo_sim::db::Db;
use redo_sim::wal::ShardedScanner;
use redo_sim::{SimError, SimResult};
use redo_theory::log::Lsn;
use redo_workload::pages::{PageId, PageOp};

use crate::oprecord::PageOpPayload;
use crate::{RecoveryMethod, RecoveryStats, SCAN_BATCH};

/// The generalized LSN-based recovery method.
#[derive(Clone, Copy, Debug, Default)]
pub struct Generalized;

fn check_shape(op: &PageOp) -> SimResult<()> {
    // Single-page write sets install atomically via the page write;
    // multi-page write sets (§5's "update sets of variables atomically")
    // are admitted too — execute() binds them into an atomic flush
    // group, so the whole write set still installs as one unit.
    if op.written_pages().is_empty() {
        return Err(SimError::MethodViolation(
            "generalized LSN operations must write at least one page",
        ));
    }
    Ok(())
}

pub(crate) fn register_constraints(db: &mut Db<PageOpPayload>, op: &PageOp, lsn: Lsn) {
    let written = op.written_pages();
    for read_page in op.read_pages() {
        if !written.contains(&read_page) {
            // Every write page must be durable before a later overwrite
            // of the read page reaches disk.
            for &write_page in &written {
                db.pool.add_constraint(Constraint {
                    blocked: read_page,
                    blocked_above: lsn,
                    requires: write_page,
                    required_lsn: lsn,
                });
            }
        }
    }
    // Multi-page write sets must install atomically: bind them into an
    // atomic flush group (a no-op for single-page writes).
    db.pool.add_atomic_group(written, lsn);
}

/// Would this operation's constraints (and atomic group) close a cycle
/// in the flush-order graph?
///
/// Edges run `requires → blocked` ("must flush before"); the new
/// operation adds `w → r` for each cross-page read `r` outside its write
/// set. Atomic groups act like write-graph collapses: their members
/// flush together, so cycle detection runs on the *quotient* graph with
/// each active group's members identified (a constraint into a group is
/// a constraint into every member). A cycle corresponds to a collapse
/// §5 would reject as cyclic: the single-copy cache could never flush
/// legally again.
pub(crate) fn would_cycle(db: &Db<PageOpPayload>, op: &PageOp) -> bool {
    let written = op.written_pages();
    // Union-find over pages: identify members of active groups and of
    // the new op's write set.
    let mut parent: std::collections::BTreeMap<PageId, PageId> = std::collections::BTreeMap::new();
    fn find(parent: &mut std::collections::BTreeMap<PageId, PageId>, x: PageId) -> PageId {
        let p = *parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = find(parent, p);
        parent.insert(x, root);
        root
    }
    let union = |parent: &mut std::collections::BTreeMap<PageId, PageId>, a: PageId, b: PageId| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent.insert(ra, rb);
        }
    };
    for g in db.pool.atomic_groups() {
        let active = g.pages.iter().any(|&p| db.disk.page_lsn(p) < g.lsn);
        if active {
            let mut it = g.pages.iter();
            if let Some(&first) = it.next() {
                for &m in it {
                    union(&mut parent, first, m);
                }
            }
        }
    }
    for pair in written.windows(2) {
        union(&mut parent, pair[0], pair[1]);
    }
    // Quotient edges: active constraints plus the op's new edges.
    let mut edges: Vec<(PageId, PageId)> = Vec::new();
    for c in db.pool.constraints() {
        if db.disk.page_lsn(c.requires) < c.required_lsn {
            edges.push((find(&mut parent, c.requires), find(&mut parent, c.blocked)));
        }
    }
    let w_rep = find(&mut parent, written[0]);
    for &r in &op.read_pages() {
        if !written.contains(&r) {
            edges.push((w_rep, find(&mut parent, r)));
        }
    }
    // Any cycle in the quotient (including self-loops from edges whose
    // endpoints were identified) means the op must install eagerly.
    has_cycle(&edges)
}

fn has_cycle(edges: &[(redo_workload::pages::PageId, redo_workload::pages::PageId)]) -> bool {
    use redo_workload::pages::PageId;
    let mut nodes: std::collections::BTreeSet<PageId> = std::collections::BTreeSet::new();
    for &(a, b) in edges {
        if a == b {
            return true;
        }
        nodes.insert(a);
        nodes.insert(b);
    }
    // Kahn's algorithm on the quotient graph.
    let mut indeg: std::collections::BTreeMap<PageId, usize> =
        nodes.iter().map(|&n| (n, 0)).collect();
    for &(_, b) in edges {
        *indeg.get_mut(&b).expect("inserted") += 1;
    }
    let mut ready: Vec<PageId> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    let mut seen = 0usize;
    while let Some(n) = ready.pop() {
        seen += 1;
        for &(a, b) in edges {
            if a == n {
                let d = indeg.get_mut(&b).expect("inserted");
                *d -= 1;
                if *d == 0 {
                    ready.push(b);
                }
            }
        }
    }
    seen != nodes.len()
}

/// What restart analysis computed from the record the disk master
/// points at: where the redo scan starts, which checkpoint (if any) is
/// in force, and — for fuzzy checkpoints — the logged dirty-page table.
///
/// The DPT is what lets a *partitioned* restart scheduler
/// ([`crate::parallel`]) prove records installed without fetching
/// their pages: a record below the checkpoint whose page was clean at
/// the snapshot (or dirty but below its recLSN) is durably installed,
/// so the router never ships it to a partition. Sequential recovery
/// reaches the same verdict through the per-page redo test; the table
/// only moves the decision from fetch time to scan time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RestartAnalysis {
    /// The LSN the redo scan must start from.
    pub redo_start: Lsn,
    /// The published checkpoint the master named, if any.
    pub checkpoint_lsn: Option<Lsn>,
    /// The fuzzy checkpoint's dirty-page table (page → recLSN), if the
    /// master named a fuzzy checkpoint. `None` for heavyweight
    /// checkpoints and for the no-checkpoint fallback.
    pub dirty: Option<BTreeMap<PageId, Lsn>>,
}

impl RestartAnalysis {
    /// The fallback when no checkpoint is in force: a full scan from
    /// the log's first retained record.
    #[must_use]
    pub fn full_scan() -> Self {
        RestartAnalysis {
            redo_start: Lsn(1),
            checkpoint_lsn: None,
            dirty: None,
        }
    }

    /// Is the record `(page, lsn)` provably installed by this analysis
    /// alone — no page fetch, no LSN comparison against the image?
    ///
    /// True exactly when a fuzzy checkpoint is in force, the record
    /// precedes it, and the page was clean at the snapshot or dirty
    /// with a recLSN above the record. In both cases every effect of
    /// the record had reached disk before the checkpoint published
    /// (that is what recLSN *means*), and redo tests are monotone: a
    /// page's durable LSN never regresses, so the verdict survives
    /// chaos flushes and mid-recovery crashes after the snapshot.
    #[must_use]
    pub fn provably_installed(&self, page: PageId, lsn: Lsn) -> bool {
        match (self.checkpoint_lsn, &self.dirty) {
            (Some(ck), Some(dirty)) if lsn < ck => match dirty.get(&page) {
                Some(&rec_lsn) => lsn < rec_lsn,
                None => true,
            },
            _ => false,
        }
    }
}

impl Generalized {
    /// The analysis step: decide where the redo scan starts from the
    /// record the disk master points at. A heavyweight
    /// [`PageOpPayload::Checkpoint`] installed everything below it, so
    /// the scan starts just after; a
    /// [`PageOpPayload::FuzzyCheckpoint`] carries its own precomputed
    /// redo-start LSN. No master (or a master pointing at anything
    /// else) falls back to a full scan from the log's first retained
    /// record — always safe, since the per-record redo tests decide
    /// installation on their own.
    ///
    /// # Errors
    ///
    /// Log corruption at the master record.
    pub fn analyze(db: &Db<PageOpPayload>) -> SimResult<(Lsn, Option<Lsn>)> {
        Self::analyze_dpt(db).map(|a| (a.redo_start, a.checkpoint_lsn))
    }

    /// [`Generalized::analyze`], additionally handing back the fuzzy
    /// checkpoint's dirty-page table so a partitioned restart scheduler
    /// can route records straight off the scan
    /// ([`RestartAnalysis::provably_installed`]).
    ///
    /// # Errors
    ///
    /// Log corruption at the master record.
    pub fn analyze_dpt(db: &Db<PageOpPayload>) -> SimResult<RestartAnalysis> {
        let master = db.disk.master();
        if master > Lsn::ZERO {
            let mut cursor = db.log.cursor_from(master);
            if let Some(rec) = cursor.next() {
                let rec = rec?;
                if rec.lsn == master {
                    match rec.payload {
                        PageOpPayload::Checkpoint => {
                            return Ok(RestartAnalysis {
                                redo_start: master.next(),
                                checkpoint_lsn: Some(master),
                                dirty: None,
                            })
                        }
                        PageOpPayload::FuzzyCheckpoint { dirty, redo_start } => {
                            return Ok(RestartAnalysis {
                                redo_start,
                                checkpoint_lsn: Some(master),
                                dirty: Some(dirty.into_iter().collect()),
                            })
                        }
                        PageOpPayload::DeltaCheckpoint {
                            prev,
                            base,
                            redo_start,
                            added,
                            removed,
                        } => {
                            return Ok(fold_delta_chain(
                                db, master, prev, base, redo_start, added, removed,
                            ))
                        }
                        PageOpPayload::Op(_) => {}
                    }
                }
            }
        }
        Ok(RestartAnalysis::full_scan())
    }
}

/// Longest delta chain analysis will walk before declaring it broken —
/// a guard against corrupt `prev` links forming a long (or cyclic-
/// looking) walk, far above any chain a sane controller publishes.
const MAX_DELTA_CHAIN: usize = 64;

/// Reconstructs the dirty-page table from a delta-checkpoint chain: walk
/// `prev` links (each strictly decreasing) back to the full
/// [`PageOpPayload::FuzzyCheckpoint`] at `base`, then fold the deltas
/// oldest→newest over its snapshot — each delta removes its `removed`
/// pages, then inserts its `added` (page, recLSN) pairs. Any break in
/// the chain — a link the log no longer holds, a record of the wrong
/// kind, a foreign `base`, a non-decreasing link, a chain past
/// [`MAX_DELTA_CHAIN`] — falls back to reading `base` as a full
/// snapshot, and failing that to a full scan. The fallbacks only ever
/// *widen* the scan: records below the newest published redo start are
/// durably installed (that is what publication proved), redo tests are
/// monotone, and a base snapshot's `provably_installed` verdicts were
/// true at its own publication — so a stale analysis replays more, never
/// wrongly skips.
fn fold_delta_chain(
    db: &Db<PageOpPayload>,
    master: Lsn,
    prev: Lsn,
    base: Lsn,
    redo_start: Lsn,
    added: Vec<(PageId, Lsn)>,
    removed: Vec<PageId>,
) -> RestartAnalysis {
    let mut deltas = vec![(added, removed)];
    let mut link = prev;
    let mut at = master;
    let base_dirty = loop {
        if deltas.len() > MAX_DELTA_CHAIN || link == Lsn::ZERO || link >= at {
            break None;
        }
        match db.log.record_at_lsn(link) {
            Ok(Some(rec)) => match rec.payload {
                PageOpPayload::FuzzyCheckpoint { dirty, .. } if rec.lsn == base => {
                    break Some(dirty);
                }
                PageOpPayload::DeltaCheckpoint {
                    prev,
                    base: b,
                    added,
                    removed,
                    ..
                } if b == base => {
                    deltas.push((added, removed));
                    at = link;
                    link = prev;
                }
                // A full snapshot that is not `base`, a heavyweight
                // marker, an operation record, a delta from a different
                // chain: the link is torn.
                _ => break None,
            },
            // The link is gone (compacted past) or the frame is damaged.
            Ok(None) | Err(_) => break None,
        }
    };
    match base_dirty {
        Some(dirty) => {
            let mut dpt: BTreeMap<PageId, Lsn> = dirty.into_iter().collect();
            for (added, removed) in deltas.into_iter().rev() {
                for page in removed {
                    dpt.remove(&page);
                }
                for (page, rec) in added {
                    dpt.insert(page, rec);
                }
            }
            RestartAnalysis {
                redo_start,
                checkpoint_lsn: Some(master),
                dirty: Some(dpt),
            }
        }
        None => fall_back_to_base(db, base),
    }
}

/// The torn-delta fallback: read `base` directly as a full snapshot. Its
/// redo start and DPT are stale relative to the master delta but were
/// true at `base`'s own publication — safe, just a wider scan.
fn fall_back_to_base(db: &Db<PageOpPayload>, base: Lsn) -> RestartAnalysis {
    if let Ok(Some(rec)) = db.log.record_at_lsn(base) {
        if let PageOpPayload::FuzzyCheckpoint { dirty, redo_start } = rec.payload {
            return RestartAnalysis {
                redo_start,
                checkpoint_lsn: Some(base),
                dirty: Some(dirty.into_iter().collect()),
            };
        }
    }
    RestartAnalysis::full_scan()
}

impl RecoveryMethod for Generalized {
    type Payload = PageOpPayload;

    fn name(&self) -> &'static str {
        "generalized-lsn"
    }

    fn execute(&self, db: &mut Db<PageOpPayload>, op: &PageOp) -> SimResult<Lsn> {
        check_shape(op)?;
        if would_cycle(db, op) {
            // Pre-resolution: the op's constraints/group would close a
            // cycle in the flush-order quotient graph, after which the
            // single-copy cache could never flush legally. Discharge the
            // standing constraints first — the pre-op graph is acyclic,
            // so a full constraint-ordered flush always succeeds — and
            // only then admit the op. (A finer cache manager would flush
            // just the entangled pages; correctness only needs *some*
            // discharge.)
            db.log.flush_all();
            let stable = db.log.stable_lsn();
            db.pool.flush_all(&mut db.disk, stable)?;
        }
        let lsn = db.log.append(PageOpPayload::Op(op.clone()))?;
        db.apply_page_op(op, lsn)?;
        register_constraints(db, op, lsn);
        Ok(lsn)
    }

    fn checkpoint(&self, db: &mut Db<PageOpPayload>) -> SimResult<()> {
        db.log.flush_all();
        let stable = db.log.stable_lsn();
        // flush_all retries around write-order constraints, flushing
        // prerequisite pages first; write-graph acyclicity guarantees
        // termination.
        db.pool.flush_all(&mut db.disk, stable)?;
        let ck = db.log.append(PageOpPayload::Checkpoint)?;
        db.log.flush_all();
        db.disk.set_master(ck)?;
        Ok(())
    }

    fn recover(&self, db: &mut Db<PageOpPayload>) -> SimResult<RecoveryStats> {
        // Recovery's first act: repair crash damage the media can
        // detect (torn pages, a torn log-tail fragment).
        db.repair_after_crash();
        let (redo_start, checkpoint_lsn) = Generalized::analyze(db)?;
        let mut stats = RecoveryStats {
            checkpoint_lsn,
            truncated_bytes: db.log.truncated_bytes(),
            ..RecoveryStats::default()
        };
        // Streaming scan from the analysis' redo-start LSN; each batch
        // prefetches the read+write footprint of its operations (replay
        // reads go through the recovery cache too).
        let mut scanner = ShardedScanner::seek(&db.log, redo_start);
        loop {
            let batch = scanner.next_batch(&db.log, SCAN_BATCH)?;
            if batch.is_empty() {
                break;
            }
            let pages: BTreeSet<PageId> = batch
                .iter()
                .filter_map(|rec| match &rec.payload {
                    PageOpPayload::Op(op) => {
                        Some(op.read_pages().into_iter().chain(op.written_pages()))
                    }
                    PageOpPayload::Checkpoint
                    | PageOpPayload::FuzzyCheckpoint { .. }
                    | PageOpPayload::DeltaCheckpoint { .. } => None,
                })
                .flatten()
                .collect();
            let pages: Vec<PageId> = pages.into_iter().collect();
            stats.pages_prefetched += db.pool.prefetch(
                &mut db.disk,
                &pages,
                db.geometry.slots_per_page,
                db.log.stable_lsn(),
            );
            for rec in batch {
                stats.scanned += 1;
                let PageOpPayload::Op(op) = rec.payload else {
                    continue;
                };
                // The redo test examines the whole write set; the atomic
                // flush group guarantees all pages agree (all installed or
                // none), so any stale page means the operation is
                // uninstalled.
                let mut stale = false;
                let mut fresh = false;
                for page in op.written_pages() {
                    let stable = db.log.stable_lsn();
                    let cached =
                        db.pool
                            .fetch(&mut db.disk, page, db.geometry.slots_per_page, stable)?;
                    if cached.lsn() < rec.lsn {
                        stale = true;
                    } else {
                        fresh = true;
                    }
                }
                debug_assert!(
                    !(stale && fresh),
                    "atomic group violated: write set of op {} part-installed",
                    op.id
                );
                if stale {
                    // The replayed operation re-imposes its write ordering
                    // on post-recovery cache management, with the same
                    // pre-resolution of would-be cycles as normal execution.
                    if would_cycle(db, &op) {
                        let stable = db.log.stable_lsn();
                        db.pool.flush_all(&mut db.disk, stable)?;
                    }
                    db.apply_page_op(&op, rec.lsn)?;
                    register_constraints(db, &op, rec.lsn);
                    stats.replayed.push(op.id);
                } else {
                    stats.skipped.push(op.id);
                }
            }
        }
        stats.note_scan(scanner.stats(), db.log.forces());
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use redo_sim::db::Geometry;
    use redo_workload::pages::{Cell, PageId, PageOpKind, PageWorkloadSpec, SlotId};

    fn cross_workload(n: usize, seed: u64) -> Vec<PageOp> {
        PageWorkloadSpec {
            n_ops: n,
            n_pages: 4,
            cross_page_fraction: 0.6,
            blind_fraction: 0.1,
            ..Default::default()
        }
        .generate(seed)
    }

    fn model(ops: &[PageOp]) -> std::collections::BTreeMap<Cell, u64> {
        let mut cells = std::collections::BTreeMap::new();
        for op in ops {
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
        }
        cells
    }

    fn assert_matches_model(db: &mut Db<PageOpPayload>, ops: &[PageOp]) {
        for (c, v) in model(ops) {
            assert_eq!(db.read_cell(c).unwrap(), v, "cell {c:?}");
        }
    }

    #[test]
    fn multi_page_writes_form_atomic_groups() {
        let op = PageOp {
            id: 0,
            kind: PageOpKind::MultiPage,
            reads: vec![],
            writes: vec![
                Cell {
                    page: PageId(0),
                    slot: SlotId(0),
                },
                Cell {
                    page: PageId(1),
                    slot: SlotId(0),
                },
            ],
            f_seed: 1,
        };
        let mut db = Db::new(Geometry::default());
        Generalized.execute(&mut db, &op).unwrap();
        assert_eq!(db.pool.atomic_groups().len(), 1);
        // A lone flush of either page carries the other along.
        db.log.flush_all();
        let stable = db.log.stable_lsn();
        db.pool.flush_page(&mut db.disk, PageId(0), stable).unwrap();
        assert_eq!(db.disk.page_lsn(PageId(0)), db.disk.page_lsn(PageId(1)));
    }

    #[test]
    fn efg_style_entanglement_recovers_atomically() {
        // §5's E, F example at page granularity: E reads page 1 writes
        // pages {0,1}? Simpler: one multi-page op writing {0,1} whose
        // partial install would be unexplainable; the atomic group makes
        // partial installs impossible and recovery exact.
        let x = Cell {
            page: PageId(0),
            slot: SlotId(0),
        };
        let y = Cell {
            page: PageId(1),
            slot: SlotId(0),
        };
        let seed = PageOp {
            id: 0,
            kind: PageOpKind::Blind,
            reads: vec![],
            writes: vec![x],
            f_seed: 1,
        };
        let entangled = PageOp {
            id: 1,
            kind: PageOpKind::MultiPage,
            reads: vec![x],
            writes: vec![x, y],
            f_seed: 2,
        };
        let later = PageOp {
            id: 2,
            kind: PageOpKind::Physiological,
            reads: vec![y],
            writes: vec![y],
            f_seed: 3,
        };
        let ops = [seed, entangled, later];
        let mut db = Db::new(Geometry::default());
        for op in &ops {
            Generalized.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        // Attempt to flush page 0 alone: the group drags page 1 along.
        let stable = db.log.stable_lsn();
        db.pool.flush_page(&mut db.disk, PageId(0), stable).unwrap();
        let l0 = db.disk.page_lsn(PageId(0));
        let l1 = db.disk.page_lsn(PageId(1));
        assert!(l0 >= redo_theory::log::Lsn(2) && l1 >= redo_theory::log::Lsn(2));
        db.crash();
        Generalized.recover(&mut db).unwrap();
        assert_matches_model(&mut db, &ops);
    }

    #[test]
    fn empty_write_set_rejected() {
        // Operation::builder would reject this at theory level; the
        // method also guards it.
        let op = PageOp {
            id: 0,
            kind: PageOpKind::MultiPage,
            reads: vec![],
            writes: vec![],
            f_seed: 1,
        };
        let mut db = Db::new(Geometry::default());
        assert!(matches!(
            Generalized.execute(&mut db, &op),
            Err(SimError::MethodViolation(_))
        ));
    }

    #[test]
    fn chaotic_multi_page_workloads_recover() {
        for seed in 0..4 {
            let ops = PageWorkloadSpec {
                n_ops: 30,
                n_pages: 4,
                cross_page_fraction: 0.3,
                multi_page_fraction: 0.4,
                blind_fraction: 0.1,
                ..Default::default()
            }
            .generate(seed);
            let mut db = Db::new(Geometry::default());
            let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
            for op in &ops {
                Generalized.execute(&mut db, op).unwrap();
                db.chaos_flush(&mut rng, 0.6, 0.3).unwrap();
            }
            db.log.flush_all();
            db.crash();
            Generalized.recover(&mut db).unwrap();
            assert_matches_model(&mut db, &ops);
        }
    }

    #[test]
    fn cross_page_reads_register_constraints() {
        let mut db = Db::new(Geometry::default());
        let op = PageOp {
            id: 0,
            kind: PageOpKind::Generalized,
            reads: vec![Cell {
                page: PageId(1),
                slot: SlotId(0),
            }],
            writes: vec![Cell {
                page: PageId(0),
                slot: SlotId(0),
            }],
            f_seed: 7,
        };
        let lsn = Generalized.execute(&mut db, &op).unwrap();
        let cs = db.pool.constraints();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].blocked, PageId(1));
        assert_eq!(cs[0].requires, PageId(0));
        assert_eq!(cs[0].required_lsn, lsn);
    }

    #[test]
    fn figure8_write_order_enforced() {
        // P: read x (page 0), write y (page 1). Q: overwrite x.
        // The cache must refuse to flush x before y is durable.
        let mut db = Db::new(Geometry::default());
        let x = Cell {
            page: PageId(0),
            slot: SlotId(0),
        };
        let y = Cell {
            page: PageId(1),
            slot: SlotId(0),
        };
        let seed_x = PageOp {
            id: 0,
            kind: PageOpKind::Blind,
            reads: vec![],
            writes: vec![x],
            f_seed: 1,
        };
        let p = PageOp {
            id: 1,
            kind: PageOpKind::Generalized,
            reads: vec![x],
            writes: vec![y],
            f_seed: 2,
        };
        let q = PageOp {
            id: 2,
            kind: PageOpKind::Physiological,
            reads: vec![x],
            writes: vec![x],
            f_seed: 3,
        };
        Generalized.execute(&mut db, &seed_x).unwrap();
        Generalized.execute(&mut db, &p).unwrap();
        let q_lsn = Generalized.execute(&mut db, &q).unwrap();
        db.log.flush_all();
        let stable = db.log.stable_lsn();
        // Flushing x (now at q_lsn > p_lsn) before y must be refused.
        let err = db
            .pool
            .flush_page(&mut db.disk, PageId(0), stable)
            .unwrap_err();
        assert!(
            matches!(err, SimError::WriteOrderViolation { .. }),
            "{err:?} at {q_lsn:?}"
        );
        // Flush y, then x: legal.
        db.pool.flush_page(&mut db.disk, PageId(1), stable).unwrap();
        db.pool.flush_page(&mut db.disk, PageId(0), stable).unwrap();
    }

    #[test]
    fn figure8_crash_between_y_and_x_recovers() {
        // The dangerous window: y durable, x's overwrite not. Recovery
        // must replay Q (x stale) and skip P (y durable).
        let mut db = Db::new(Geometry::default());
        let x = Cell {
            page: PageId(0),
            slot: SlotId(0),
        };
        let y = Cell {
            page: PageId(1),
            slot: SlotId(0),
        };
        let seed_x = PageOp {
            id: 0,
            kind: PageOpKind::Blind,
            reads: vec![],
            writes: vec![x],
            f_seed: 1,
        };
        let p = PageOp {
            id: 1,
            kind: PageOpKind::Generalized,
            reads: vec![x],
            writes: vec![y],
            f_seed: 2,
        };
        let q = PageOp {
            id: 2,
            kind: PageOpKind::Physiological,
            reads: vec![x],
            writes: vec![x],
            f_seed: 3,
        };
        let ops = [seed_x, p, q];
        // Seed x and make it durable first (so Q's replay reads P's x).
        Generalized.execute(&mut db, &ops[0]).unwrap();
        db.log.flush_all();
        db.pool
            .flush_page(&mut db.disk, PageId(0), db.log.stable_lsn())
            .unwrap();
        Generalized.execute(&mut db, &ops[1]).unwrap();
        Generalized.execute(&mut db, &ops[2]).unwrap();
        db.log.flush_all();
        // Flush y only; x's overwrite stays volatile.
        db.pool
            .flush_page(&mut db.disk, PageId(1), db.log.stable_lsn())
            .unwrap();
        db.crash();
        let stats = Generalized.recover(&mut db).unwrap();
        assert!(stats.replayed.contains(&2), "Q must replay");
        assert!(stats.skipped.contains(&1), "P already installed via y");
        assert_matches_model(&mut db, &ops);
    }

    #[test]
    fn random_chaos_runs_recover_exactly() {
        for seed in 0..5 {
            let mut db = Db::new(Geometry::default());
            let ops = cross_workload(25, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
            for op in &ops {
                Generalized.execute(&mut db, op).unwrap();
                db.chaos_flush(&mut rng, 0.6, 0.3).unwrap();
            }
            db.log.flush_all();
            db.crash();
            Generalized.recover(&mut db).unwrap();
            assert_matches_model(&mut db, &ops);
        }
    }

    #[test]
    fn checkpoint_flushes_in_constraint_order() {
        let mut db = Db::new(Geometry::default());
        let ops = cross_workload(20, 42);
        for op in &ops {
            Generalized.execute(&mut db, op).unwrap();
        }
        Generalized.checkpoint(&mut db).unwrap();
        assert!(db.pool.dirty_pages().is_empty());
        db.crash();
        let stats = Generalized.recover(&mut db).unwrap();
        assert_eq!(stats.scanned, 0, "checkpoint installed everything");
        assert_matches_model(&mut db, &ops);
    }
}
