//! Concurrent normal operation over the substrate.
//!
//! The paper's model is sequential, but its central insight — a log need
//! only order *conflicting* operations (Lemma 1) — is what makes
//! concurrent execution recoverable at all: operations on disjoint pages
//! may interleave freely, and any log order consistent with the
//! conflicts replays to the same state. [`SharedDb`] realizes this:
//!
//! * worker threads execute [`PageOp`]s under **per-page latches**
//!   (acquired in sorted order — no deadlocks), so each operation's
//!   read-then-write is atomic with respect to conflicting operations
//!   while non-conflicting operations proceed in parallel;
//! * a **group-commit thread** periodically forces the log;
//! * a **background flusher** cleans dirty pages under the WAL rule and
//!   the write-order constraints, exactly like the sequential cache
//!   manager;
//! * a **checkpoint daemon** periodically takes a fuzzy checkpoint —
//!   snapshot the dirty-page table (with per-page recLSNs), append a
//!   [`PageOpPayload::FuzzyCheckpoint`] record through the group-commit
//!   path, publish it with the master pointer swing, and truncate the
//!   log prefix the checkpoint proved redundant — so restart latency
//!   stays bounded no matter how long the live run was.
//!
//! Crashing tears the volatile components down and reassembles a
//! sequential [`Db`] for the §6 recovery method to repair; the test
//! suite then verifies the recovered state equals the replay of the
//! stable log — whatever interleaving the threads actually produced.
//!
//! The store itself is a [`ShardedStore`]: the buffer pool and the
//! latch map are both split into power-of-two page-id shards, so
//! operations on pages in different shards never contend on a shared
//! pool lock — only on the single disk, and only while actually doing
//! I/O. Lock ordering (strict, global): page latches → recovery gate →
//! store shards in ascending index order → disk → log → in-flight set
//! (the per-shard gate *sets* are leaves: taken briefly, never held
//! across another acquisition). The checkpoint daemon is why the
//! shards precede the log: a consistent fuzzy snapshot must read the
//! dirty-page table (all shards, ascending — [`ShardedStore::snapshot`])
//! and append the checkpoint record with no apply slipping in between,
//! which means holding all of them and the log at once. Every other
//! path takes a subset of the locks in that order; the flusher and
//! committer never take latches; so the system is deadlock-free by
//! construction. The one apparent exception is lazy replay
//! ([`SharedDb::open_on_demand`]): it reads per-page chains under the
//! log lock *before* taking any shard lease, but it releases the log
//! lock first — no path ever holds the log while acquiring a shard, so
//! the order stands.
//!
//! ## Instant restart
//!
//! [`SharedDb::open_on_demand`] reopens a crashed [`Db`] immediately:
//! analysis places a recovery gate on every page whose stable chain
//! holds a record the fuzzy dirty-page table cannot prove installed
//! (the [`crate::ondemand`] criterion), and the shard map refuses to
//! serve those pages until their lazy redo runs. The first
//! [`SharedDb::read_cell`] or [`SharedDb::execute`] touching a gated
//! page replays that page's connected component of residual records —
//! merged chains in global LSN order, whole-write-set redo test,
//! write-order constraints — and only then opens the gates; a
//! [`SharedDb::recovery_tick`] in the background loop sweeps leftover
//! gates so recovery terminates even if nothing ever reads them.
//!
//! ## Why the in-flight floor is needed
//!
//! [`SharedDb::execute`] assigns an operation's LSN under the log lock
//! but applies its writes under a later shard lease, so there is a
//! window where a record exists in the log while its dirt is in no
//! dirty-page table. A checkpoint snapshotting during that window
//! would compute a redo-start above the un-applied record and recovery
//! would skip it. The cure: each append registers its LSN in an
//! in-flight set (same log-lock critical section) and removes it only
//! once applied (while the applying lease is still held — the
//! snapshot locks *all* shards, so it cannot slip between the apply
//! and the withdrawal); the daemon's redo-start is the min over
//! recLSNs *and* the in-flight floor. Any operation below the
//! checkpoint is then either applied (visible in the table, or flushed
//! and installed) or still in flight (visible in the floor) — never
//! invisible.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redo_sim::cache::Constraint;
use redo_sim::db::{Db, Geometry};
use redo_sim::disk::Disk;
use redo_sim::shard::ShardedStore;
use redo_sim::wal::ShardedLog;
use redo_sim::{SimError, SimResult};
use redo_theory::log::Lsn;
use redo_workload::pages::{Cell, PageId, PageOp};

use crate::control::{ControlPlan, Controller, RestartBudget, RestartEstimate};
use crate::generalized::{Generalized, RestartAnalysis};
use crate::oprecord::PageOpPayload;
use crate::RecoveryStats;

/// How many shards the store and the latch map split into. Power of
/// two; pages land in shard `page_id & (STORE_SHARDS - 1)`.
const STORE_SHARDS: usize = 8;

type LatchShard = Mutex<BTreeMap<PageId, Arc<Mutex<()>>>>;

struct Inner {
    geometry: Geometry,
    log: Mutex<ShardedLog<PageOpPayload>>,
    store: ShardedStore,
    latches: Box<[LatchShard]>,
    /// LSNs appended to the log whose writes are not yet applied to the
    /// buffer pool — the checkpoint daemon's redo-start floor.
    inflight: Mutex<BTreeSet<Lsn>>,
    daemon: Mutex<DaemonStats>,
    /// The daemon's volatile view of the published checkpoint chain —
    /// what the quiescent skip compares against and what an incremental
    /// checkpoint diffs its delta from. Deliberately *not* re-derived
    /// from the log: it is updated only on successful publication, lost
    /// on crash (the first post-crash checkpoint is then full, which is
    /// always sound), and untouched by abandoned attempts. A leaf lock:
    /// taken briefly, never while acquiring another.
    chain: Mutex<Option<ChainState>>,
    /// On-demand restart bookkeeping; gate *membership* lives in the
    /// shard map ([`ShardedStore::is_gated`]) so the servable fast path
    /// never touches this mutex. Holding it serializes lazy replay —
    /// two reads racing to the same component replay it once.
    recovery: Mutex<OnlineRecovery>,
    stop: AtomicBool,
}

/// The shared database's view of an in-progress (or finished)
/// on-demand restart.
#[derive(Default)]
struct OnlineRecovery {
    /// `Some` while gates may remain; taken when the last gate opens.
    active: Option<RecoveryState>,
    /// The closed-out stats once the restart drained.
    finished: Option<RecoveryStats>,
}

/// What lazy replay needs: the analysis the gates were placed from and
/// the stats accumulated so far.
struct RecoveryState {
    analysis: RestartAnalysis,
    stats: RecoveryStats,
}

/// The daemon-side record of the checkpoint chain now in force: where
/// its head and base sit, how deep the delta chain is, and the exact
/// table/redo-start the head published.
struct ChainState {
    /// LSN of the newest published checkpoint record (the master).
    head: Lsn,
    /// LSN of the full snapshot the chain grows from.
    base: Lsn,
    /// Delta links from `head` back to `base` (0 when `head == base`).
    depth: u64,
    /// The full dirty-page table as published at `head`.
    dpt: BTreeMap<PageId, Lsn>,
    /// The redo-start published at `head`.
    redo_start: Lsn,
}

/// Telemetry from the online checkpoint daemon.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Fuzzy checkpoints successfully published (master swung).
    pub checkpoints_taken: u64,
    /// Checkpoint attempts abandoned before publication (record not
    /// durable, or the pointer swing did not land) — recovery falls
    /// back to the previous checkpoint.
    pub checkpoints_abandoned: u64,
    /// Stable-log bytes reclaimed by prefix truncation (archived, when
    /// the log carries an archive tier), summed over log shards.
    pub truncated_bytes: u64,
    /// The summed [`DaemonStats::truncated_bytes`] broken out per log
    /// shard — the truncation-skew view the benches report.
    pub truncated_bytes_by_shard: Vec<u64>,
    /// Group-commit forces per log shard (each participant of a
    /// cross-shard flush group lands its own batch) — flush-skew
    /// telemetry.
    pub forces_by_shard: Vec<u64>,
    /// The most recently published checkpoint record.
    pub last_checkpoint: Option<Lsn>,
    /// Ticks that skipped publication because the system was quiescent
    /// (nothing logged, table unchanged, redo-start unmoved) — the
    /// republication bug the skip fixes used to burn a log force and a
    /// master swing on every one of these.
    pub checkpoints_skipped: u64,
    /// How many of [`DaemonStats::checkpoints_taken`] were incremental
    /// [`PageOpPayload::DeltaCheckpoint`] records rather than full
    /// snapshots.
    pub deltas_published: u64,
    /// The redo-start of the most recently published checkpoint — the
    /// truncation horizon, and the baseline the controller's suffix
    /// estimate measures from.
    pub last_redo_start: Option<Lsn>,
}

/// A thread-shareable database executing page operations with
/// physiological/generalized logging.
#[derive(Clone)]
pub struct SharedDb {
    inner: Arc<Inner>,
}

impl SharedDb {
    /// A fresh shared database.
    #[must_use]
    pub fn new(geometry: Geometry) -> SharedDb {
        SharedDb {
            inner: Arc::new(Inner {
                geometry,
                log: Mutex::new(ShardedLog::new(1)),
                store: ShardedStore::new(STORE_SHARDS),
                latches: (0..STORE_SHARDS)
                    .map(|_| Mutex::new(BTreeMap::new()))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
                inflight: Mutex::new(BTreeSet::new()),
                daemon: Mutex::new(DaemonStats::default()),
                chain: Mutex::new(None),
                recovery: Mutex::new(OnlineRecovery::default()),
                stop: AtomicBool::new(false),
            }),
        }
    }

    /// Reopens a crashed sequential [`Db`] for business *immediately*:
    /// repair, analysis, and gate placement only — no log scan, no
    /// replay. Every page whose stable chain holds a record at or above
    /// the redo-start that the checkpoint's dirty-page table cannot
    /// prove installed is gated in the shard map; the first access to a
    /// gated page (or the background sweeper) pays for exactly that
    /// page's replay. Ungated pages are servable the moment this
    /// returns.
    ///
    /// # Errors
    ///
    /// Log corruption at the master record.
    pub fn open_on_demand(mut crashed: Db<PageOpPayload>) -> SimResult<SharedDb> {
        crashed.repair_after_crash();
        let analysis = Generalized::analyze_dpt(&crashed)?;
        let stats = RecoveryStats {
            checkpoint_lsn: analysis.checkpoint_lsn,
            truncated_bytes: crashed.log.truncated_bytes(),
            ..RecoveryStats::default()
        };
        let pages: Vec<PageId> = crashed.log.chained_pages().collect();
        let mut gates: Vec<PageId> = Vec::new();
        for page in pages {
            let needs_redo = crashed.log.page_chain(page).iter().any(|&(lsn, _)| {
                lsn >= analysis.redo_start && !analysis.provably_installed(page, lsn)
            });
            if needs_redo {
                gates.push(page);
            }
        }
        // The crash survivors move in whole: the repaired disk becomes
        // the shard map's disk, the repaired log (chains already pruned
        // to the stable tail) becomes the shared log. The sequential
        // shell keeps empty stand-ins and is dropped.
        let geometry = crashed.geometry;
        let disk = std::mem::replace(&mut crashed.disk, Disk::new());
        let log = std::mem::replace(&mut crashed.log, ShardedLog::new(1));
        let shared = SharedDb {
            inner: Arc::new(Inner {
                geometry,
                log: Mutex::new(log),
                store: ShardedStore::with_disk(STORE_SHARDS, disk),
                latches: (0..STORE_SHARDS)
                    .map(|_| Mutex::new(BTreeMap::new()))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
                inflight: Mutex::new(BTreeSet::new()),
                daemon: Mutex::new(DaemonStats::default()),
                chain: Mutex::new(None),
                recovery: Mutex::new(OnlineRecovery {
                    active: Some(RecoveryState { analysis, stats }),
                    finished: None,
                }),
                stop: AtomicBool::new(false),
            }),
        };
        shared.inner.store.gate_pages(gates.iter().copied());
        // A restart with nothing owed closes out right away.
        if gates.is_empty() {
            shared
                .recovery_tick()
                .expect("empty restart cannot hit substrate errors");
        }
        Ok(shared)
    }

    fn latch_shard(&self, page: PageId) -> &LatchShard {
        &self.inner.latches[page.0 as usize & (STORE_SHARDS - 1)]
    }

    fn latch_for(&self, page: PageId) -> Arc<Mutex<()>> {
        self.latch_shard(page)
            .lock()
            .entry(page)
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone()
    }

    /// Ensures every page in `pages` has had its deferred redo, lazily
    /// replaying still-gated components. The fast path — all pages
    /// ungated — costs one leaf-lock peek per page and never touches
    /// the recovery mutex. Callers hold the pages' latches (or run on
    /// the sweeper, which takes none — gate state, not the latch, is
    /// what makes a page servable).
    fn ensure_recovered(&self, pages: &[PageId]) -> SimResult<()> {
        if pages.iter().all(|&p| !self.inner.store.is_gated(p)) {
            return Ok(());
        }
        let mut rec = self.inner.recovery.lock();
        let Some(state) = rec.active.as_mut() else {
            // Another thread drained the restart while we waited.
            return Ok(());
        };
        for &p in pages {
            self.replay_component(state, p)?;
        }
        Ok(())
    }

    /// Lazily replays the connected component of gated pages reachable
    /// from `page` (no-op if `page` is no longer gated). Caller holds
    /// the recovery mutex; gates open only after the whole component
    /// replays, so an error leaves every gate closed and a re-run owes
    /// exactly the same work.
    fn replay_component(&self, state: &mut RecoveryState, page: PageId) -> SimResult<()> {
        if !self.inner.store.is_gated(page) {
            return Ok(());
        }
        // Phase 1: chase chains under the log lock — released before
        // any shard lease, preserving the shards-before-log order.
        let mut component: BTreeSet<PageId> = BTreeSet::new();
        let mut records: BTreeMap<Lsn, PageOp> = BTreeMap::new();
        {
            let log = self.inner.log.lock();
            let mut frontier = vec![page];
            while let Some(p) = frontier.pop() {
                if !component.insert(p) {
                    continue;
                }
                let entries: Vec<(Lsn, u64)> = log
                    .page_chain(p)
                    .iter()
                    .copied()
                    .filter(|&(lsn, _)| {
                        lsn >= state.analysis.redo_start
                            && !state.analysis.provably_installed(p, lsn)
                    })
                    .collect();
                for (lsn, off) in entries {
                    if records.contains_key(&lsn) {
                        continue;
                    }
                    let rec = log.record_for(p, off)?;
                    debug_assert_eq!(rec.lsn, lsn, "chain entry points at a foreign frame");
                    state.stats.records_decoded += 1;
                    state.stats.seek_hits += 1;
                    let PageOpPayload::Op(op) = rec.payload else {
                        continue;
                    };
                    for q in op.read_pages().into_iter().chain(op.written_pages()) {
                        if self.inner.store.is_gated(q) && !component.contains(&q) {
                            frontier.push(q);
                        }
                    }
                    records.insert(lsn, op);
                }
            }
        }
        // Phase 2: replay the merged chains in global LSN order under
        // short shard leases, with the same whole-write-set redo test
        // and write-order constraints as the sequential scan. No cycle
        // pre-resolution is needed here: the shards are unbounded (no
        // eviction can force a flush), and the background flusher
        // simply skips any flush a constraint forbids.
        let spp = self.inner.geometry.slots_per_page;
        for (lsn, op) in records {
            state.stats.scanned += 1;
            let mut pages: Vec<PageId> = op
                .read_pages()
                .into_iter()
                .chain(op.written_pages())
                .collect();
            pages.sort_unstable();
            pages.dedup();
            let mut lease = self.inner.store.lock_pages(&pages);
            let mut stale = false;
            let mut fresh = false;
            for p in op.written_pages() {
                lease.fetch(p, spp, Lsn::ZERO)?;
                if lease.page(p).expect("just fetched").lsn() < lsn {
                    stale = true;
                } else {
                    fresh = true;
                }
            }
            debug_assert!(
                !(stale && fresh),
                "atomic group violated: write set of op {} part-installed",
                op.id
            );
            if stale {
                let mut read_values = Vec::with_capacity(op.reads.len());
                for &cell in &op.reads {
                    lease.fetch(cell.page, spp, Lsn::ZERO)?;
                    read_values.push(lease.page(cell.page).expect("just fetched").get(cell.slot));
                }
                for &cell in &op.writes {
                    let v = op.output(cell, &read_values);
                    lease.update(cell.page, lsn, |p| p.set(cell.slot, v))?;
                }
                let written = op.written_pages();
                for r in op.read_pages() {
                    if !written.contains(&r) {
                        for &w in &written {
                            lease.add_constraint(Constraint {
                                blocked: r,
                                blocked_above: lsn,
                                requires: w,
                                required_lsn: lsn,
                            });
                        }
                    }
                }
                lease.add_atomic_group(&written, lsn);
                state.stats.replayed.push(op.id);
            } else {
                state.stats.skipped.push(op.id);
            }
        }
        // Phase 3: only now open the gates — a read must never observe
        // a half-replayed component.
        self.inner.store.ungate_pages(component);
        Ok(())
    }

    /// Serves one read, lazily recovering the cell's page first if it
    /// is still gated. The value returned is final: every surviving
    /// record writing the page has been replayed or proven installed
    /// by the time the read is served.
    ///
    /// # Errors
    ///
    /// Substrate errors, including log corruption at a chain offset.
    pub fn read_cell(&self, cell: Cell) -> SimResult<u64> {
        let latch = self.latch_for(cell.page);
        let _guard = latch.lock();
        self.ensure_recovered(&[cell.page])?;
        let mut lease = self.inner.store.lock_pages(&[cell.page]);
        lease.fetch(cell.page, self.inner.geometry.slots_per_page, Lsn::ZERO)?;
        Ok(lease.page(cell.page).expect("just fetched").get(cell.slot))
    }

    /// One background-sweeper step: replays the lowest-numbered gated
    /// page's component, and closes out the restart when no gates
    /// remain (publishing the final [`RecoveryStats`]). Returns whether
    /// recovery is still in progress — `false` once drained (or if no
    /// on-demand restart is active at all). The termination guarantee:
    /// each step either opens at least one gate or finishes.
    ///
    /// # Errors
    ///
    /// Substrate errors, including log corruption at a chain offset.
    pub fn recovery_tick(&self) -> SimResult<bool> {
        let mut rec = self.inner.recovery.lock();
        let Some(state) = rec.active.as_mut() else {
            return Ok(false);
        };
        if let Some(&page) = self.inner.store.gated_pages().first() {
            self.replay_component(state, page)?;
        }
        if self.inner.store.gated_count() == 0 {
            let mut state = rec.active.take().expect("checked active above");
            state.stats.forces = self.inner.log.lock().forces();
            rec.finished = Some(state.stats);
            return Ok(false);
        }
        Ok(true)
    }

    /// Is an on-demand restart still holding gates?
    #[must_use]
    pub fn recovering(&self) -> bool {
        self.inner.recovery.lock().active.is_some()
    }

    /// The drained restart's stats, once [`SharedDb::recovery_tick`]
    /// (or the reads themselves) opened the last gate.
    #[must_use]
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.inner.recovery.lock().finished.clone()
    }

    /// Pages still gated behind their deferred redo.
    #[must_use]
    pub fn gated_count(&self) -> usize {
        self.inner.store.gated_count()
    }

    /// Executes one operation: latches its page set (sorted), reads its
    /// cells, appends the log record, applies the writes, and registers
    /// any write-order constraints. Returns the operation's LSN.
    ///
    /// # Errors
    ///
    /// Substrate errors (pool exhaustion).
    pub fn execute(&self, op: &PageOp) -> SimResult<Lsn> {
        if op.written_pages().is_empty() {
            return Err(SimError::MethodViolation(
                "operations must write at least one page",
            ));
        }
        // Latch every page the operation touches, in id order.
        let mut pages: Vec<PageId> = op
            .read_pages()
            .into_iter()
            .chain(op.written_pages())
            .collect();
        pages.sort_unstable();
        pages.dedup();
        let latches: Vec<Arc<Mutex<()>>> = pages.iter().map(|&p| self.latch_for(p)).collect();
        let _guards: Vec<_> = latches.iter().map(|l| l.lock()).collect();

        // Any page still gated behind its post-crash redo must replay
        // before this operation reads or overwrites it — a write to an
        // unrecovered page would build on a stale image.
        self.ensure_recovered(&pages)?;

        // Read phase (under latches, a short lease on the touched
        // shards).
        let spp = self.inner.geometry.slots_per_page;
        let mut read_values = Vec::with_capacity(op.reads.len());
        {
            let mut lease = self.inner.store.lock_pages(&pages);
            for &cell in &op.reads {
                lease.fetch(cell.page, spp, Lsn::ZERO)?;
                read_values.push(lease.page(cell.page).expect("just fetched").get(cell.slot));
            }
        }
        // Log phase: the LSN is assigned and registered as in-flight in
        // one log-lock critical section, so no checkpoint snapshot can
        // see the record without also seeing it in the floor.
        let lsn = {
            let mut log = self.inner.log.lock();
            let lsn = log.append(PageOpPayload::Op(op.clone()))?;
            self.inner.inflight.lock().insert(lsn);
            lsn
        };
        // Apply phase (under the same latches: conflicting operations
        // cannot interleave between our read and our write). The
        // in-flight registration is withdrawn while the applying lease
        // is still held — on error paths too, or the floor would pin
        // every later checkpoint forever. A checkpoint snapshot locks
        // every shard, so it cannot land between the apply and the
        // withdrawal.
        {
            let mut lease = self.inner.store.lock_pages(&pages);
            let applied = (|| -> SimResult<()> {
                for page in op.written_pages() {
                    lease.fetch(page, spp, Lsn::ZERO)?;
                }
                for &cell in &op.writes {
                    let v = op.output(cell, &read_values);
                    lease.update(cell.page, lsn, |p| p.set(cell.slot, v))?;
                }
                let written = op.written_pages();
                for r in op.read_pages() {
                    if !written.contains(&r) {
                        for &w in &written {
                            lease.add_constraint(Constraint {
                                blocked: r,
                                blocked_above: lsn,
                                requires: w,
                                required_lsn: lsn,
                            });
                        }
                    }
                }
                lease.add_atomic_group(&written, lsn);
                Ok(())
            })();
            self.inner.inflight.lock().remove(&lsn);
            applied?;
        }
        Ok(lsn)
    }

    /// One group-commit tick: forces the whole log.
    pub fn commit_tick(&self) {
        self.inner.log.lock().flush_all();
    }

    /// One background-flusher tick: attempts to flush each dirty page
    /// with probability `p`, skipping any flush the WAL rule or a
    /// write-order constraint forbids.
    ///
    /// # Errors
    ///
    /// Only the two protocol refusals above are expected here and are
    /// silently skipped (the page simply stays dirty for a later tick).
    /// Anything else — a missing frame, pool corruption — is a real
    /// substrate failure and propagates; swallowing it would let the
    /// flusher spin forever against a broken pool.
    pub fn flusher_tick(&self, rng: &mut impl Rng, p: f64) -> SimResult<()> {
        let stable = self.inner.log.lock().stable_lsn();
        for id in self.inner.store.dirty_pages() {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                match self.inner.store.flush_page(id, stable) {
                    Ok(())
                    | Err(SimError::WalViolation { .. })
                    | Err(SimError::WriteOrderViolation { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// One *targeted* flusher tick: flush the dirty page with the
    /// minimum recLSN — the page pinning the truncation horizon. A
    /// uniformly random flusher ([`SharedDb::flusher_tick`]) under
    /// Zipf-skewed traffic keeps picking hot pages (which are instantly
    /// re-dirtied) and almost never the coldest one, so the horizon
    /// never moves and the stable suffix grows without bound; this tick
    /// is the controller's cure. The log is forced first so the WAL
    /// rule cannot veto the flush; pages whose write-order constraints
    /// still forbid flushing are skipped in recLSN order until one
    /// flush lands. Returns whether any page was flushed.
    ///
    /// # Errors
    ///
    /// Real substrate failures; the two protocol refusals are skipped
    /// exactly as in [`SharedDb::flusher_tick`].
    pub fn flusher_tick_coldest(&self) -> SimResult<bool> {
        let stable = {
            let mut log = self.inner.log.lock();
            log.flush_all();
            log.stable_lsn()
        };
        let mut table = self.inner.store.snapshot().dirty_page_table();
        table.sort_unstable_by_key(|&(_, rec)| rec);
        for (page, _) in table {
            match self.inner.store.flush_page(page, stable) {
                Ok(()) => return Ok(true),
                Err(SimError::WalViolation { .. }) | Err(SimError::WriteOrderViolation { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(false)
    }

    /// One checkpoint-daemon tick: take a fuzzy snapshot of the
    /// dirty-page table, append a [`PageOpPayload::FuzzyCheckpoint`]
    /// record, force the log, publish the checkpoint by swinging the
    /// master pointer, and truncate the log prefix below the
    /// checkpoint's redo-start.
    ///
    /// The snapshot and the append happen under the store **and** log
    /// locks together (see the module's lock-ordering note), so no
    /// apply can slip between them; the in-flight floor covers records
    /// appended but not yet applied. Returns the published checkpoint
    /// LSN, or `None` if the attempt was abandoned (record not durable,
    /// or the pointer swing did not land — e.g. suppressed by fault
    /// injection); an abandoned attempt leaves the previous checkpoint
    /// in force and truncates nothing.
    ///
    /// # Errors
    ///
    /// Substrate errors from the log force.
    pub fn checkpoint_tick(&self) -> SimResult<Option<Lsn>> {
        self.checkpoint_with(None)
    }

    /// [`SharedDb::checkpoint_tick`] in *incremental* mode: while a
    /// healthy chain shallower than `full_every` is in force, publish a
    /// [`PageOpPayload::DeltaCheckpoint`] carrying only the dirty-page
    /// -table delta against the chain head; every `full_every`-th
    /// publication (and whenever no chain exists — fresh system, or
    /// first checkpoint after a crash wiped the volatile chain state)
    /// republishes a full snapshot so analysis' walk stays bounded.
    /// The quiescent skip applies in both modes.
    ///
    /// # Errors
    ///
    /// Substrate errors from the log force.
    pub fn checkpoint_tick_incremental(&self, full_every: u64) -> SimResult<Option<Lsn>> {
        self.checkpoint_with(Some(full_every))
    }

    fn checkpoint_with(&self, full_every: Option<u64>) -> SimResult<Option<Lsn>> {
        // Snapshot + append, atomically w.r.t. appliers: the snapshot
        // holds every store shard (acquired in ascending order), so no
        // apply can slip between the table read and the append. The
        // recovery mutex is held across the same window (it precedes
        // the shards in the lock order) so lazy replay cannot move a
        // page from "gated" to "dirty in a shard" mid-snapshot.
        let (ck, redo_start, table, is_delta) = {
            let rec = self.inner.recovery.lock();
            let snapshot = self.inner.store.snapshot();
            let mut log = self.inner.log.lock();
            let mut dirty = snapshot.dirty_page_table();
            if let Some(state) = rec.active.as_ref() {
                // Pages still gated behind their deferred redo are
                // *logically* dirty: their residual records are not
                // installed, yet no pool shard holds them. Carry each
                // in the checkpoint's table at its first residual LSN,
                // so the redo-start floor keeps those records from
                // being truncated — and so a crash before their replay
                // cannot prove them installed.
                let mut table: BTreeMap<PageId, Lsn> = dirty.into_iter().collect();
                for page in self.inner.store.gated_pages() {
                    let residual = log
                        .page_chain(page)
                        .iter()
                        .map(|&(lsn, _)| lsn)
                        .filter(|&lsn| {
                            lsn >= state.analysis.redo_start
                                && !state.analysis.provably_installed(page, lsn)
                        })
                        .min();
                    if let Some(rec_lsn) = residual {
                        let entry = table.entry(page).or_insert(rec_lsn);
                        *entry = (*entry).min(rec_lsn);
                    }
                }
                dirty = table.into_iter().collect();
            }
            let table: BTreeMap<PageId, Lsn> = dirty.iter().copied().collect();
            let floor = self.inner.inflight.lock().first().copied();
            let ck_expected = Lsn(log.last_lsn().0 + 1);
            let candidate = [floor, dirty.iter().map(|&(_, rec)| rec).min()]
                .into_iter()
                .flatten()
                .min();
            // Quiescent skip: nothing was logged since the standing
            // checkpoint, the table is unchanged, and the redo-start
            // would not move. Republishing would force the log and swing
            // the master for a byte-identical analysis — pure overhead.
            // The clean-pool case needs care: with nothing dirty and
            // nothing in flight `candidate` is `None` and the would-be
            // redo-start is the *drifting* `ck_expected`, so compare it
            // through `unwrap_or` against the published one instead.
            let quiescent_head = {
                let chain = self.inner.chain.lock();
                chain.as_ref().and_then(|state| {
                    (log.last_lsn() == state.head
                        && table == state.dpt
                        && candidate.unwrap_or(state.redo_start) == state.redo_start)
                        .then_some(state.head)
                })
            };
            if let Some(head) = quiescent_head {
                self.inner.daemon.lock().checkpoints_skipped += 1;
                return Ok(Some(head));
            }
            // Nothing dirty, nothing in flight: everything logged so far
            // is installed, so recovery need only scan the checkpoint
            // record itself.
            let redo_start = candidate.unwrap_or(ck_expected);
            // Incremental mode with a live chain below its depth bound:
            // log only the delta against the head's published table.
            let delta = {
                let chain = self.inner.chain.lock();
                match (full_every, chain.as_ref()) {
                    (Some(fe), Some(state)) if state.depth + 1 < fe.max(1) => {
                        let added: Vec<(PageId, Lsn)> = table
                            .iter()
                            .filter(|&(page, rec)| state.dpt.get(page) != Some(rec))
                            .map(|(&page, &rec)| (page, rec))
                            .collect();
                        let removed: Vec<PageId> = state
                            .dpt
                            .keys()
                            .filter(|page| !table.contains_key(page))
                            .copied()
                            .collect();
                        Some(PageOpPayload::DeltaCheckpoint {
                            prev: state.head,
                            base: state.base,
                            redo_start,
                            added,
                            removed,
                        })
                    }
                    _ => None,
                }
            };
            let is_delta = delta.is_some();
            let payload = delta.unwrap_or(PageOpPayload::FuzzyCheckpoint { dirty, redo_start });
            let ck = log.append(payload)?;
            debug_assert_eq!(ck, ck_expected);
            (ck, redo_start, table, is_delta)
        };
        // Make the record durable through the group-commit path.
        self.commit_tick();
        // Publish + truncate. Both the force and the pointer swing can
        // be suppressed by fault injection, and each suppression is
        // silent — so verify both before truncating anything. No shard
        // locks here: publication touches only the disk and the log.
        let mut disk = self.inner.store.disk();
        let mut log = self.inner.log.lock();
        if log.stable_lsn() < ck {
            self.inner.daemon.lock().checkpoints_abandoned += 1;
            return Ok(None);
        }
        disk.swing_pointer(ck)?;
        if disk.master() != ck {
            self.inner.daemon.lock().checkpoints_abandoned += 1;
            return Ok(None);
        }
        let reclaimed = log.archive_prefix(redo_start)?;
        // Publication landed: the chain bookkeeping moves to the new
        // head. A delta extends the standing chain (same base, one
        // deeper); a full snapshot starts a fresh one. An abandoned
        // attempt never reaches here, so its orphaned record leaves the
        // chain untouched — exactly right, since the master still names
        // the old head and analysis will skip the orphan.
        {
            let mut chain = self.inner.chain.lock();
            *chain = Some(match (is_delta, chain.take()) {
                (true, Some(prev)) => ChainState {
                    head: ck,
                    base: prev.base,
                    depth: prev.depth + 1,
                    dpt: table,
                    redo_start,
                },
                _ => ChainState {
                    head: ck,
                    base: ck,
                    depth: 0,
                    dpt: table,
                    redo_start,
                },
            });
        }
        let mut daemon = self.inner.daemon.lock();
        daemon.checkpoints_taken += 1;
        if is_delta {
            daemon.deltas_published += 1;
        }
        daemon.truncated_bytes += reclaimed;
        daemon.truncated_bytes_by_shard = log.truncated_bytes_by_shard();
        daemon.forces_by_shard = log.forces_by_shard();
        daemon.last_checkpoint = Some(ck);
        daemon.last_redo_start = Some(redo_start);
        Ok(Some(ck))
    }

    /// Checkpoint-daemon telemetry so far.
    #[must_use]
    pub fn daemon_stats(&self) -> DaemonStats {
        self.inner.daemon.lock().clone()
    }

    /// A point-in-time [`RestartEstimate`] off the live telemetry: the
    /// stable suffix past the published truncation horizon (or past the
    /// log's first retained record when nothing has published yet), the
    /// current dirty-page count, and the per-shard live-byte skew.
    #[must_use]
    pub fn restart_estimate(&self) -> RestartEstimate {
        let dirty_pages = self.inner.store.dirty_pages().len();
        let log = self.inner.log.lock();
        let redo_start = self
            .inner
            .daemon
            .lock()
            .last_redo_start
            .unwrap_or_else(|| log.first_stable());
        RestartEstimate {
            suffix_bytes: log.suffix_bytes(redo_start),
            dirty_pages,
            redo_start,
            live_bytes_by_shard: log.live_bytes_by_shard(),
        }
    }

    /// One controller tick: estimate restart cost, ask the planner, and
    /// fire whichever actuators it named — the coldest-page flush first
    /// (so the checkpoint that may follow computes a deeper redo-start),
    /// then an incremental checkpoint, then targeted archive drains for
    /// any shard over its skew budget. Returns the executed plan.
    ///
    /// # Errors
    ///
    /// Substrate errors from the actuators.
    pub fn control_tick(&self, controller: &Controller) -> SimResult<ControlPlan> {
        let est = self.restart_estimate();
        let plan = controller.plan(&est);
        if plan.flush_coldest {
            // The horizon a checkpoint can truncate to is the minimum
            // dirty recLSN: clean coldest pages until a checkpoint taken
            // right now would bring the suffix under budget (or nothing
            // more can flush). Terminates — every successful flush
            // removes the current coldest page from the table.
            loop {
                let table = self.inner.store.snapshot().dirty_page_table();
                let Some(horizon) = table.iter().map(|&(_, rec)| rec).min() else {
                    break;
                };
                let projected = self.inner.log.lock().suffix_bytes(horizon);
                if projected <= controller.budget.max_suffix_bytes
                    || !self.flusher_tick_coldest()?
                {
                    break;
                }
            }
        }
        if plan.checkpoint {
            self.checkpoint_tick_incremental(controller.budget.full_every)?;
        }
        if !plan.archive_shards.is_empty() {
            // `est.redo_start` is a *published* horizon (or the first
            // retained record, making the drain a no-op), so a per-shard
            // drain below it archives only bytes every future recovery
            // has provably stopped needing — even if a checkpoint just
            // advanced the horizon further, using the older estimate is
            // merely conservative.
            let mut log = self.inner.log.lock();
            let mut reclaimed = 0u64;
            for &s in &plan.archive_shards {
                reclaimed += log.archive_shard_prefix(s, est.redo_start)?;
            }
            if reclaimed > 0 {
                let by_shard = log.truncated_bytes_by_shard();
                let mut daemon = self.inner.daemon.lock();
                daemon.truncated_bytes += reclaimed;
                daemon.truncated_bytes_by_shard = by_shard;
            }
        }
        Ok(plan)
    }

    /// Drops latches no thread currently holds or awaits. [`latch_for`]
    /// inserts an entry per page id touched and never removes it, so a
    /// workload skewed over a large page universe would grow the maps
    /// without bound; the background loop calls this each tick. A strong
    /// count of 1 means the map holds the only reference, and because
    /// `latch_for` clones under the same latch-shard mutex we hold
    /// while sweeping that shard, no thread can acquire a reference
    /// concurrently with its check.
    ///
    /// [`latch_for`]: SharedDb::execute
    pub fn latch_gc_tick(&self) {
        for shard in self.inner.latches.iter() {
            shard.lock().retain(|_, latch| Arc::strong_count(latch) > 1);
        }
    }

    /// Number of per-page latches currently across the latch shards.
    #[must_use]
    pub fn latch_count(&self) -> usize {
        self.inner.latches.iter().map(|s| s.lock().len()).sum()
    }

    /// Signals background threads to stop.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
    }

    /// Has shutdown been requested?
    #[must_use]
    pub fn stopping(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Spawns the background group-commit + flusher + latch-GC +
    /// checkpoint-daemon loop on the current handle; returns when
    /// [`SharedDb::shutdown`] is called. Intended to run on its own
    /// thread. `checkpoint_every` is the daemon's period in ticks
    /// (`None` disables online checkpointing).
    ///
    /// # Panics
    ///
    /// Panics if a tick hits an unexpected substrate error — a broken
    /// pool or log is not something the background thread can recover
    /// from, and limping on would mask the corruption.
    pub fn background_loop(&self, seed: u64, flush_prob: f64, checkpoint_every: Option<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tick: u64 = 0;
        while !self.stopping() {
            tick += 1;
            self.recovery_tick()
                .expect("recovery tick hit an unexpected substrate error");
            self.commit_tick();
            self.flusher_tick(&mut rng, flush_prob)
                .expect("flusher tick hit an unexpected substrate error");
            self.latch_gc_tick();
            if let Some(every) = checkpoint_every {
                if tick.is_multiple_of(every.max(1)) {
                    self.checkpoint_tick()
                        .expect("checkpoint tick hit an unexpected substrate error");
                }
            }
            std::thread::yield_now();
        }
    }

    /// The adaptive counterpart of [`SharedDb::background_loop`]: the
    /// same group-commit / random-flusher / latch-GC cadence, but the
    /// fixed-period checkpoint daemon is replaced by a
    /// [`SharedDb::control_tick`] steering toward `budget` — checkpoints
    /// fire when estimated restart cost crosses the budget (and are
    /// skipped when the system is quiescent), the coldest page is
    /// flushed when the suffix builds, and skewed shards drain to the
    /// archive tier.
    ///
    /// # Panics
    ///
    /// Panics if a tick hits an unexpected substrate error, exactly as
    /// [`SharedDb::background_loop`] does.
    pub fn background_loop_adaptive(&self, seed: u64, flush_prob: f64, budget: RestartBudget) {
        let controller = Controller::new(budget);
        let mut rng = StdRng::seed_from_u64(seed);
        while !self.stopping() {
            self.recovery_tick()
                .expect("recovery tick hit an unexpected substrate error");
            self.commit_tick();
            self.flusher_tick(&mut rng, flush_prob)
                .expect("flusher tick hit an unexpected substrate error");
            self.latch_gc_tick();
            self.control_tick(&controller)
                .expect("control tick hit an unexpected substrate error");
            std::thread::yield_now();
        }
    }

    /// CRASH: tears down the shared database (volatile state vanishes)
    /// and reassembles the surviving parts as a sequential [`Db`] ready
    /// for a §6 recovery method.
    ///
    /// # Panics
    ///
    /// Panics if other clones of this handle still exist (all workers
    /// must have stopped — a crashed machine has no running threads).
    #[must_use]
    pub fn crash(self) -> Db<PageOpPayload> {
        let inner = Arc::try_unwrap(self.inner)
            .unwrap_or_else(|_| panic!("crash requires exclusive ownership"));
        let mut disk = inner.store.into_disk();
        let mut log = inner.log.into_inner();
        log.crash();
        disk.crash();
        let mut db = Db::new(inner.geometry);
        db.disk = disk;
        db.log = log;
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalized::Generalized;
    use crate::RecoveryMethod;
    use redo_workload::pages::{Cell, PageWorkloadSpec};

    /// Replays the stable log's records in log order against a plain
    /// cell map — the serialization the log itself defines.
    fn model_from_stable_log(db: &Db<PageOpPayload>) -> BTreeMap<Cell, u64> {
        let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
        for rec in db.log.decode_stable().expect("log intact") {
            let PageOpPayload::Op(op) = rec.payload else {
                continue;
            };
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
        }
        cells
    }

    fn run_concurrent(n_threads: usize, ops_per_thread: usize, seed: u64) {
        use std::sync::atomic::AtomicUsize;
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let finished = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // Workers on disjoint op-id ranges (ids must be unique; page
            // sets overlap freely).
            for t in 0..n_threads {
                let db = shared.clone();
                let finished = &finished;
                s.spawn(move || {
                    let ops = PageWorkloadSpec {
                        n_ops: ops_per_thread,
                        n_pages: 6,
                        cross_page_fraction: 0.3,
                        multi_page_fraction: 0.2,
                        blind_fraction: 0.2,
                        ..Default::default()
                    }
                    .generate(seed ^ ((t as u64) << 32));
                    for mut op in ops {
                        op.id = op.id * n_threads as u32 + t as u32;
                        db.execute(&op).expect("execute");
                    }
                    finished.fetch_add(1, Ordering::SeqCst);
                });
            }
            // The main thread plays cache cleaner + group committer
            // while the workers run.
            let mut rng = StdRng::seed_from_u64(seed);
            while finished.load(Ordering::SeqCst) < n_threads {
                shared.commit_tick();
                shared.flusher_tick(&mut rng, 0.3).expect("flusher tick");
                std::thread::yield_now();
            }
        });
        shared.shutdown();
        // Reacquire exclusive ownership and crash.
        shared.commit_tick(); // final group commit before the "crash"
        let mut db = shared.crash();
        let stats = Generalized.recover(&mut db).expect("recover");
        // The recovered state must equal the stable log's serialization.
        let model = model_from_stable_log(&db);
        for (cell, v) in model {
            assert_eq!(
                db.read_cell(cell).expect("read"),
                v,
                "cell {cell:?} diverged from the log's serialization"
            );
        }
        let _ = stats;
    }

    #[test]
    fn single_threaded_concurrent_api_matches_log() {
        run_concurrent(1, 40, 1);
    }

    #[test]
    fn four_threads_interleave_recoverably() {
        for seed in 0..3 {
            run_concurrent(4, 30, seed);
        }
    }

    #[test]
    fn eight_threads_heavy_contention() {
        run_concurrent(8, 25, 9);
    }

    #[test]
    fn background_loop_runs_until_shutdown() {
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let bg = shared.clone();
        let handle = std::thread::spawn(move || bg.background_loop(1, 0.5, None));
        let ops = PageWorkloadSpec {
            n_ops: 30,
            n_pages: 4,
            ..Default::default()
        }
        .generate(3);
        for op in &ops {
            shared.execute(op).expect("execute");
        }
        shared.shutdown();
        handle.join().expect("background loop exits");
        shared.commit_tick();
        let mut db = shared.crash();
        Generalized.recover(&mut db).expect("recover");
        let model = model_from_stable_log(&db);
        for (cell, v) in model {
            assert_eq!(db.read_cell(cell).expect("read"), v);
        }
    }

    #[test]
    fn crash_mid_stream_recovers_durable_prefix() {
        // No final commit: whatever the group-commit thread managed to
        // force is what survives; recovery must match exactly that.
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        std::thread::scope(|s| {
            for t in 0..4usize {
                let db = shared.clone();
                s.spawn(move || {
                    let ops = PageWorkloadSpec {
                        n_ops: 25,
                        n_pages: 5,
                        cross_page_fraction: 0.3,
                        ..Default::default()
                    }
                    .generate(77 ^ (t as u64) << 32);
                    for mut op in ops {
                        op.id = op.id * 4 + t as u32;
                        db.execute(&op).expect("execute");
                        if op.id % 7 == 0 {
                            db.commit_tick();
                        }
                    }
                });
            }
        });
        shared.shutdown();
        let mut db = shared.crash(); // volatile tail intentionally lost
        Generalized.recover(&mut db).expect("recover");
        let model = model_from_stable_log(&db);
        for (cell, v) in model {
            assert_eq!(db.read_cell(cell).expect("read"), v);
        }
    }

    #[test]
    fn latches_serialize_conflicting_increments() {
        // All threads read-modify-write the SAME cell; the final value
        // must reflect a chain (each op reads its predecessor's output),
        // which only holds if read-then-write is atomic per op.
        use redo_workload::pages::{PageOpKind, SlotId};
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let cell = Cell {
            page: PageId(0),
            slot: SlotId(0),
        };
        let per_thread = 20u32;
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let db = shared.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        let op = PageOp {
                            id: t * per_thread + i,
                            kind: PageOpKind::Physiological,
                            reads: vec![cell],
                            writes: vec![cell],
                            f_seed: 42,
                        };
                        db.execute(&op).expect("execute");
                    }
                });
            }
        });
        shared.shutdown();
        shared.commit_tick();
        let mut db = shared.crash();
        Generalized.recover(&mut db).expect("recover");
        // Replaying the log serially must land on the same value: if any
        // op's read had been torn, the hash chain would diverge.
        let model = model_from_stable_log(&db);
        assert_eq!(db.read_cell(cell).expect("read"), model[&cell]);
        assert_eq!(db.log.decode_stable().unwrap().len(), 80);
    }

    #[test]
    fn checkpoint_daemon_truncates_and_recovery_stays_exact() {
        // Single-threaded driver: execution order is the log order, so
        // the ops list itself is ground truth — the stable log cannot be
        // (its prefix gets truncated, which is the point of the test).
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let ops = PageWorkloadSpec {
            n_ops: 60,
            n_pages: 6,
            cross_page_fraction: 0.3,
            multi_page_fraction: 0.2,
            blind_fraction: 0.2,
            ..Default::default()
        }
        .generate(11);
        let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(5);
        for (i, op) in ops.iter().enumerate() {
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
            shared.execute(op).expect("execute");
            if (i + 1) % 10 == 0 {
                shared.commit_tick();
                // Two passes so one-level write-order chains drain.
                shared.flusher_tick(&mut rng, 1.0).expect("flusher tick");
                shared.flusher_tick(&mut rng, 1.0).expect("flusher tick");
                let ck = shared.checkpoint_tick().expect("checkpoint tick");
                assert!(ck.is_some(), "no faults injected: every attempt publishes");
            }
        }
        let daemon = shared.daemon_stats();
        assert_eq!(daemon.checkpoints_taken, 6);
        assert_eq!(daemon.checkpoints_abandoned, 0);
        assert!(
            daemon.truncated_bytes > 0,
            "checkpoints reclaimed log prefix"
        );
        shared.commit_tick();
        let mut db = shared.crash();
        assert!(
            db.log.first_stable() > Lsn(1),
            "the stable log's prefix was elided"
        );
        let stats = Generalized.recover(&mut db).expect("recover");
        assert_eq!(stats.checkpoint_lsn, daemon.last_checkpoint);
        assert!(stats.truncated_bytes > 0);
        assert!(
            stats.records_decoded < 25,
            "restart scan must be bounded by the checkpoint, decoded {}",
            stats.records_decoded
        );
        for (cell, v) in cells {
            assert_eq!(
                db.read_cell(cell).expect("read"),
                v,
                "cell {cell:?} diverged from the issue order"
            );
        }
    }

    #[test]
    fn background_daemon_with_workers_recovers_exactly() {
        // Workers on disjoint page universes: each thread's issue order
        // is ground truth for its own pages, and the daemon checkpoints
        // (and truncates) concurrently underneath all of them.
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let bg = shared.clone();
        let handle = std::thread::spawn(move || bg.background_loop(2, 0.4, Some(3)));
        let n_threads = 4usize;
        let pages_per_thread = 3u32;
        let mut models: Vec<BTreeMap<Cell, u64>> = Vec::new();
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..n_threads)
                .map(|t| {
                    let db = shared.clone();
                    s.spawn(move || {
                        let mut ops = PageWorkloadSpec {
                            n_ops: 40,
                            n_pages: pages_per_thread,
                            cross_page_fraction: 0.3,
                            multi_page_fraction: 0.2,
                            ..Default::default()
                        }
                        .generate(31 ^ ((t as u64) << 32));
                        let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
                        for op in &mut ops {
                            op.id = op.id * n_threads as u32 + t as u32;
                            for c in op.reads.iter_mut().chain(op.writes.iter_mut()) {
                                c.page = PageId(c.page.0 + t as u32 * pages_per_thread);
                            }
                            let reads: Vec<u64> = op
                                .reads
                                .iter()
                                .map(|c| cells.get(c).copied().unwrap_or(0))
                                .collect();
                            for &w in &op.writes {
                                cells.insert(w, op.output(w, &reads));
                            }
                            db.execute(op).expect("execute");
                        }
                        cells
                    })
                })
                .collect();
            for w in workers {
                models.push(w.join().expect("worker"));
            }
        });
        // The scheduler may run every worker to completion before the
        // background thread gets a single tick; give the daemon until it
        // publishes one checkpoint before stopping it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while shared.daemon_stats().checkpoints_taken == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        shared.shutdown();
        handle.join().expect("background loop exits");
        shared.commit_tick();
        let daemon = shared.daemon_stats();
        assert!(daemon.checkpoints_taken > 0, "the daemon ran");
        let mut db = shared.crash();
        Generalized.recover(&mut db).expect("recover");
        for cells in models {
            for (cell, v) in cells {
                assert_eq!(
                    db.read_cell(cell).expect("read"),
                    v,
                    "cell {cell:?} diverged from its thread's issue order"
                );
            }
        }
    }

    /// Single-threaded driver with periodic flushes and fuzzy
    /// checkpoints, crashed with everything committed: the issue-order
    /// model is ground truth for every cell.
    fn run_with_checkpoints(seed: u64) -> (Db<PageOpPayload>, BTreeMap<Cell, u64>) {
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let ops = PageWorkloadSpec {
            n_ops: 60,
            n_pages: 6,
            cross_page_fraction: 0.3,
            multi_page_fraction: 0.2,
            blind_fraction: 0.2,
            ..Default::default()
        }
        .generate(seed);
        let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        for (i, op) in ops.iter().enumerate() {
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
            shared.execute(op).expect("execute");
            if (i + 1) % 10 == 0 {
                shared.commit_tick();
                shared.flusher_tick(&mut rng, 0.4).expect("flusher tick");
            }
            if (i + 1) % 25 == 0 {
                shared.checkpoint_tick().expect("checkpoint tick");
            }
        }
        shared.commit_tick();
        shared.shutdown();
        (shared.crash(), cells)
    }

    #[test]
    fn open_on_demand_serves_reads_while_gates_remain() {
        for seed in [21u64, 22, 23] {
            let (db, cells) = run_with_checkpoints(seed);
            let mut reference = db.clone();
            let seq = Generalized
                .recover(&mut reference)
                .expect("sequential recovery");
            let shared = SharedDb::open_on_demand(db).expect("open on demand");
            assert!(
                shared.recovering(),
                "seed {seed}: restart closed before any read"
            );
            assert!(
                shared.gated_count() > 0,
                "seed {seed}: nothing deferred — the workload is too tame to test anything"
            );
            // Every read below is served while recovery is (at least
            // initially) still in progress, and must already be final.
            for (&cell, &v) in &cells {
                assert_eq!(
                    shared.read_cell(cell).expect("read"),
                    v,
                    "seed {seed}: mid-recovery read of {cell:?} diverged from the issue order"
                );
            }
            while shared.recovery_tick().expect("recovery tick") {}
            let stats = shared.recovery_stats().expect("restart closed out");
            let lazy: BTreeSet<u32> = stats.replayed.iter().copied().collect();
            let sequential: BTreeSet<u32> = seq.replayed.iter().copied().collect();
            assert_eq!(
                lazy, sequential,
                "seed {seed}: lazy redo set diverged from the sequential scan"
            );
            for (cell, v) in cells {
                assert_eq!(shared.read_cell(cell).expect("read"), v);
            }
        }
    }

    #[test]
    fn background_sweeper_drains_gates_without_reads() {
        let (db, cells) = run_with_checkpoints(31);
        let mut reference = db.clone();
        Generalized
            .recover(&mut reference)
            .expect("sequential recovery");
        let shared = SharedDb::open_on_demand(db).expect("open on demand");
        assert!(shared.gated_count() > 0, "nothing deferred");
        // The checkpoint daemon runs *during* recovery: gated pages
        // must ride in its dirty-page tables, or truncation would eat
        // their residual records.
        let bg = shared.clone();
        let handle = std::thread::spawn(move || bg.background_loop(7, 0.2, Some(3)));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while shared.recovering() && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        shared.shutdown();
        handle.join().expect("background loop exits");
        assert!(!shared.recovering(), "the sweeper drained the gates");
        let stats = shared.recovery_stats().expect("stats published");
        assert!(stats.scanned > 0, "the sweeper actually replayed something");
        for (cell, v) in cells {
            assert_eq!(
                shared.read_cell(cell).expect("read"),
                v,
                "cell {cell:?} diverged after the background sweep"
            );
        }
    }

    #[test]
    fn execute_on_gated_page_reads_recovered_state() {
        use redo_workload::pages::PageOpKind;
        let (db, cells) = run_with_checkpoints(41);
        let mut reference = db.clone();
        Generalized
            .recover(&mut reference)
            .expect("sequential recovery");
        let shared = SharedDb::open_on_demand(db).expect("open on demand");
        let gated_cell = cells
            .keys()
            .copied()
            .find(|c| shared.inner.store.is_gated(c.page))
            .expect("some model cell sits on a gated page");
        let before = cells[&gated_cell];
        // A read-modify-write on the gated page must read the
        // *recovered* value, not the stale crash image.
        let op = PageOp {
            id: 9_999,
            kind: PageOpKind::Physiological,
            reads: vec![gated_cell],
            writes: vec![gated_cell],
            f_seed: 5,
        };
        shared.execute(&op).expect("execute mid-recovery");
        let expected = op.output(gated_cell, &[before]);
        assert_eq!(
            shared.read_cell(gated_cell).expect("read"),
            expected,
            "execute built on a stale image"
        );
        while shared.recovery_tick().expect("recovery tick") {}
        // Draining the rest must not disturb the already-served page.
        assert_eq!(shared.read_cell(gated_cell).expect("read"), expected);
    }

    #[test]
    fn mid_recovery_checkpoint_keeps_residual_records_recoverable() {
        // Crash *again* mid-recovery, right after a checkpoint that ran
        // while gates were still closed. If the daemon's table omitted
        // the gated pages, the second recovery would prove their
        // residual records installed and lose them.
        let (db, cells) = run_with_checkpoints(51);
        let shared = SharedDb::open_on_demand(db).expect("open on demand");
        assert!(shared.gated_count() > 0, "nothing deferred");
        shared.checkpoint_tick().expect("mid-recovery checkpoint");
        shared.shutdown();
        let mut db = shared.crash();
        Generalized.recover(&mut db).expect("second recovery");
        for (cell, v) in cells {
            assert_eq!(
                db.read_cell(cell).expect("read"),
                v,
                "cell {cell:?} lost to a mid-recovery checkpoint"
            );
        }
    }

    #[test]
    fn quiescent_daemon_skips_republication() {
        // Regression: the daemon used to re-publish an identical
        // checkpoint record on every tick of a quiescent system — a log
        // force and a master swing per tick for a byte-identical
        // analysis. Now the tick must recognize quiescence and reuse
        // the standing checkpoint without appending anything.
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let ops = PageWorkloadSpec {
            n_ops: 20,
            n_pages: 4,
            cross_page_fraction: 0.3,
            ..Default::default()
        }
        .generate(13);
        for op in &ops {
            shared.execute(op).expect("execute");
        }
        shared.commit_tick();
        let ck = shared
            .checkpoint_tick()
            .expect("checkpoint tick")
            .expect("published");
        let last = shared.inner.log.lock().last_lsn();
        for _ in 0..3 {
            let again = shared.checkpoint_tick().expect("checkpoint tick");
            assert_eq!(again, Some(ck), "quiescent tick must reuse the head");
        }
        assert_eq!(
            shared.inner.log.lock().last_lsn(),
            last,
            "a quiescent tick must append nothing"
        );
        let daemon = shared.daemon_stats();
        assert_eq!(daemon.checkpoints_taken, 1);
        assert_eq!(daemon.checkpoints_skipped, 3);
        // New work re-arms publication.
        let mut op = ops[0].clone();
        op.id = 999;
        shared.execute(&op).expect("execute");
        let next = shared
            .checkpoint_tick()
            .expect("checkpoint tick")
            .expect("published");
        assert!(next > ck);
        assert_eq!(shared.daemon_stats().checkpoints_taken, 2);
    }

    #[test]
    fn coldest_flush_unpins_the_truncation_horizon() {
        use redo_workload::pages::{PageOpKind, SlotId};
        // One cold write at LSN 1, then hot traffic elsewhere: the cold
        // page's recLSN pins the redo-start at 1, so checkpoints cannot
        // truncate anything — until the coldest-page flush clears it.
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let cold = Cell {
            page: PageId(0),
            slot: SlotId(0),
        };
        let op0 = PageOp {
            id: 0,
            kind: PageOpKind::Blind,
            reads: vec![],
            writes: vec![cold],
            f_seed: 1,
        };
        shared.execute(&op0).expect("execute");
        for i in 1..=30u32 {
            let cell = Cell {
                page: PageId(1 + i % 3),
                slot: SlotId(0),
            };
            let op = PageOp {
                id: i,
                kind: PageOpKind::Physiological,
                reads: vec![cell],
                writes: vec![cell],
                f_seed: 2,
            };
            shared.execute(&op).expect("execute");
        }
        shared.commit_tick();
        shared
            .checkpoint_tick()
            .expect("checkpoint tick")
            .expect("published");
        assert_eq!(
            shared.daemon_stats().truncated_bytes,
            0,
            "the cold page pins the horizon at LSN 1: nothing can truncate"
        );
        assert!(
            shared.flusher_tick_coldest().expect("coldest flush"),
            "the minimum-recLSN page must flush"
        );
        // The pool changed (the cold page is clean), so the next tick
        // publishes — and can finally truncate past the cold record.
        shared
            .checkpoint_tick()
            .expect("checkpoint tick")
            .expect("published");
        assert!(
            shared.daemon_stats().truncated_bytes > 0,
            "horizon unpinned: the prefix below the hot recLSNs truncates"
        );
        shared.shutdown();
        let db = shared.crash();
        assert!(
            db.log.first_stable() > Lsn(1),
            "the stable log no longer retains the cold record"
        );
    }

    #[test]
    fn adaptive_controller_bounds_suffix_and_recovers_exactly() {
        use redo_workload::pages::{PageOpKind, SlotId};
        use redo_workload::Zipf;
        // Zipf-skewed single-threaded traffic with the control loop
        // ticking every few ops: the estimated restart suffix must stay
        // near the budget, some checkpoints must be deltas, and a crash
        // must recover the issue-order state exactly through the
        // delta-chain analysis.
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let budget = RestartBudget {
            max_suffix_bytes: 2048,
            max_dirty_pages: 8,
            ..Default::default()
        };
        let controller = Controller::new(budget.clone());
        let zipf = Zipf::new(40, 0.9);
        let mut rng = StdRng::seed_from_u64(4);
        let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
        for i in 0..300u32 {
            let cell = Cell {
                page: PageId(zipf.sample(&mut rng) as u32),
                slot: SlotId(0),
            };
            let op = PageOp {
                id: i,
                kind: PageOpKind::Physiological,
                reads: vec![cell],
                writes: vec![cell],
                f_seed: 9,
            };
            let reads = vec![cells.get(&cell).copied().unwrap_or(0)];
            cells.insert(cell, op.output(cell, &reads));
            shared.execute(&op).expect("execute");
            if (i + 1) % 5 == 0 {
                shared.commit_tick();
                shared.control_tick(&controller).expect("control tick");
            }
        }
        shared.commit_tick();
        let est = shared.restart_estimate();
        assert!(
            est.suffix_bytes < 2 * budget.max_suffix_bytes,
            "controller failed to bound the restart suffix: {} bytes",
            est.suffix_bytes
        );
        let daemon = shared.daemon_stats();
        assert!(daemon.checkpoints_taken > 0, "the budget fired checkpoints");
        assert!(
            daemon.deltas_published > 0,
            "some checkpoints must be incremental deltas"
        );
        assert!(daemon.truncated_bytes > 0, "the horizon advanced");
        shared.shutdown();
        let mut db = shared.crash();
        let stats = Generalized.recover(&mut db).expect("recover");
        assert_eq!(stats.checkpoint_lsn, daemon.last_checkpoint);
        for (cell, v) in cells {
            assert_eq!(
                db.read_cell(cell).expect("read"),
                v,
                "cell {cell:?} diverged from the issue order"
            );
        }
    }

    #[test]
    fn latch_map_stays_bounded_under_zipf_skew() {
        use redo_workload::pages::{PageOpKind, SlotId};
        use redo_workload::Zipf;
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let zipf = Zipf::new(10_000, 1.1);
        let mut rng = StdRng::seed_from_u64(8);
        let mut grew = 0usize;
        for i in 0..600u32 {
            let cell = Cell {
                page: PageId(zipf.sample(&mut rng) as u32),
                slot: SlotId(0),
            };
            let op = PageOp {
                id: i,
                kind: PageOpKind::Physiological,
                reads: vec![cell],
                writes: vec![cell],
                f_seed: 7,
            };
            shared.execute(&op).expect("execute");
            if (i + 1) % 50 == 0 {
                grew = grew.max(shared.latch_count());
                shared.latch_gc_tick();
                // No thread holds a latch between operations, so GC can
                // reclaim the whole map; under real concurrency it keeps
                // exactly the latches workers are standing on.
                assert_eq!(shared.latch_count(), 0);
            }
        }
        assert!(
            grew > 20,
            "the workload must actually exercise map growth (saw {grew})"
        );
    }
}
