//! Concurrent normal operation over the substrate.
//!
//! The paper's model is sequential, but its central insight — a log need
//! only order *conflicting* operations (Lemma 1) — is what makes
//! concurrent execution recoverable at all: operations on disjoint pages
//! may interleave freely, and any log order consistent with the
//! conflicts replays to the same state. [`SharedDb`] realizes this:
//!
//! * worker threads execute [`PageOp`]s under **per-page latches**
//!   (acquired in sorted order — no deadlocks), so each operation's
//!   read-then-write is atomic with respect to conflicting operations
//!   while non-conflicting operations proceed in parallel;
//! * a **group-commit thread** periodically forces the log;
//! * a **background flusher** cleans dirty pages under the WAL rule and
//!   the write-order constraints, exactly like the sequential cache
//!   manager;
//! * a **checkpoint daemon** periodically takes a fuzzy checkpoint —
//!   snapshot the dirty-page table (with per-page recLSNs), append a
//!   [`PageOpPayload::FuzzyCheckpoint`] record through the group-commit
//!   path, publish it with the master pointer swing, and truncate the
//!   log prefix the checkpoint proved redundant — so restart latency
//!   stays bounded no matter how long the live run was.
//!
//! Crashing tears the volatile components down and reassembles a
//! sequential [`Db`] for the §6 recovery method to repair; the test
//! suite then verifies the recovered state equals the replay of the
//! stable log — whatever interleaving the threads actually produced.
//!
//! The store itself is a [`ShardedStore`]: the buffer pool and the
//! latch map are both split into power-of-two page-id shards, so
//! operations on pages in different shards never contend on a shared
//! pool lock — only on the single disk, and only while actually doing
//! I/O. Lock ordering (strict, global): page latches → store shards in
//! ascending index order → disk → log → in-flight set. The checkpoint
//! daemon is why the shards precede the log: a consistent fuzzy
//! snapshot must read the dirty-page table (all shards, ascending —
//! [`ShardedStore::snapshot`]) and append the checkpoint record with
//! no apply slipping in between, which means holding all of them and
//! the log at once. Every other path takes a subset of the locks in
//! that order; the flusher and committer never take latches; so the
//! system is deadlock-free by construction.
//!
//! ## Why the in-flight floor is needed
//!
//! [`SharedDb::execute`] assigns an operation's LSN under the log lock
//! but applies its writes under a later shard lease, so there is a
//! window where a record exists in the log while its dirt is in no
//! dirty-page table. A checkpoint snapshotting during that window
//! would compute a redo-start above the un-applied record and recovery
//! would skip it. The cure: each append registers its LSN in an
//! in-flight set (same log-lock critical section) and removes it only
//! once applied (while the applying lease is still held — the
//! snapshot locks *all* shards, so it cannot slip between the apply
//! and the withdrawal); the daemon's redo-start is the min over
//! recLSNs *and* the in-flight floor. Any operation below the
//! checkpoint is then either applied (visible in the table, or flushed
//! and installed) or still in flight (visible in the floor) — never
//! invisible.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redo_sim::cache::Constraint;
use redo_sim::db::{Db, Geometry};
use redo_sim::shard::ShardedStore;
use redo_sim::wal::LogManager;
use redo_sim::{SimError, SimResult};
use redo_theory::log::Lsn;
use redo_workload::pages::{PageId, PageOp};

use crate::oprecord::PageOpPayload;

/// How many shards the store and the latch map split into. Power of
/// two; pages land in shard `page_id & (STORE_SHARDS - 1)`.
const STORE_SHARDS: usize = 8;

type LatchShard = Mutex<BTreeMap<PageId, Arc<Mutex<()>>>>;

struct Inner {
    geometry: Geometry,
    log: Mutex<LogManager<PageOpPayload>>,
    store: ShardedStore,
    latches: Box<[LatchShard]>,
    /// LSNs appended to the log whose writes are not yet applied to the
    /// buffer pool — the checkpoint daemon's redo-start floor.
    inflight: Mutex<BTreeSet<Lsn>>,
    daemon: Mutex<DaemonStats>,
    stop: AtomicBool,
}

/// Telemetry from the online checkpoint daemon.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Fuzzy checkpoints successfully published (master swung).
    pub checkpoints_taken: u64,
    /// Checkpoint attempts abandoned before publication (record not
    /// durable, or the pointer swing did not land) — recovery falls
    /// back to the previous checkpoint.
    pub checkpoints_abandoned: u64,
    /// Stable-log bytes reclaimed by prefix truncation.
    pub truncated_bytes: u64,
    /// The most recently published checkpoint record.
    pub last_checkpoint: Option<Lsn>,
}

/// A thread-shareable database executing page operations with
/// physiological/generalized logging.
#[derive(Clone)]
pub struct SharedDb {
    inner: Arc<Inner>,
}

impl SharedDb {
    /// A fresh shared database.
    #[must_use]
    pub fn new(geometry: Geometry) -> SharedDb {
        SharedDb {
            inner: Arc::new(Inner {
                geometry,
                log: Mutex::new(LogManager::new()),
                store: ShardedStore::new(STORE_SHARDS),
                latches: (0..STORE_SHARDS)
                    .map(|_| Mutex::new(BTreeMap::new()))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
                inflight: Mutex::new(BTreeSet::new()),
                daemon: Mutex::new(DaemonStats::default()),
                stop: AtomicBool::new(false),
            }),
        }
    }

    fn latch_shard(&self, page: PageId) -> &LatchShard {
        &self.inner.latches[page.0 as usize & (STORE_SHARDS - 1)]
    }

    fn latch_for(&self, page: PageId) -> Arc<Mutex<()>> {
        self.latch_shard(page)
            .lock()
            .entry(page)
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone()
    }

    /// Executes one operation: latches its page set (sorted), reads its
    /// cells, appends the log record, applies the writes, and registers
    /// any write-order constraints. Returns the operation's LSN.
    ///
    /// # Errors
    ///
    /// Substrate errors (pool exhaustion).
    pub fn execute(&self, op: &PageOp) -> SimResult<Lsn> {
        if op.written_pages().is_empty() {
            return Err(SimError::MethodViolation(
                "operations must write at least one page",
            ));
        }
        // Latch every page the operation touches, in id order.
        let mut pages: Vec<PageId> = op
            .read_pages()
            .into_iter()
            .chain(op.written_pages())
            .collect();
        pages.sort_unstable();
        pages.dedup();
        let latches: Vec<Arc<Mutex<()>>> = pages.iter().map(|&p| self.latch_for(p)).collect();
        let _guards: Vec<_> = latches.iter().map(|l| l.lock()).collect();

        // Read phase (under latches, a short lease on the touched
        // shards).
        let spp = self.inner.geometry.slots_per_page;
        let mut read_values = Vec::with_capacity(op.reads.len());
        {
            let mut lease = self.inner.store.lock_pages(&pages);
            for &cell in &op.reads {
                lease.fetch(cell.page, spp, Lsn::ZERO)?;
                read_values.push(lease.page(cell.page).expect("just fetched").get(cell.slot));
            }
        }
        // Log phase: the LSN is assigned and registered as in-flight in
        // one log-lock critical section, so no checkpoint snapshot can
        // see the record without also seeing it in the floor.
        let lsn = {
            let mut log = self.inner.log.lock();
            let lsn = log.append(PageOpPayload::Op(op.clone()))?;
            self.inner.inflight.lock().insert(lsn);
            lsn
        };
        // Apply phase (under the same latches: conflicting operations
        // cannot interleave between our read and our write). The
        // in-flight registration is withdrawn while the applying lease
        // is still held — on error paths too, or the floor would pin
        // every later checkpoint forever. A checkpoint snapshot locks
        // every shard, so it cannot land between the apply and the
        // withdrawal.
        {
            let mut lease = self.inner.store.lock_pages(&pages);
            let applied = (|| -> SimResult<()> {
                for page in op.written_pages() {
                    lease.fetch(page, spp, Lsn::ZERO)?;
                }
                for &cell in &op.writes {
                    let v = op.output(cell, &read_values);
                    lease.update(cell.page, lsn, |p| p.set(cell.slot, v))?;
                }
                let written = op.written_pages();
                for r in op.read_pages() {
                    if !written.contains(&r) {
                        for &w in &written {
                            lease.add_constraint(Constraint {
                                blocked: r,
                                blocked_above: lsn,
                                requires: w,
                                required_lsn: lsn,
                            });
                        }
                    }
                }
                lease.add_atomic_group(&written, lsn);
                Ok(())
            })();
            self.inner.inflight.lock().remove(&lsn);
            applied?;
        }
        Ok(lsn)
    }

    /// One group-commit tick: forces the whole log.
    pub fn commit_tick(&self) {
        self.inner.log.lock().flush_all();
    }

    /// One background-flusher tick: attempts to flush each dirty page
    /// with probability `p`, skipping any flush the WAL rule or a
    /// write-order constraint forbids.
    ///
    /// # Errors
    ///
    /// Only the two protocol refusals above are expected here and are
    /// silently skipped (the page simply stays dirty for a later tick).
    /// Anything else — a missing frame, pool corruption — is a real
    /// substrate failure and propagates; swallowing it would let the
    /// flusher spin forever against a broken pool.
    pub fn flusher_tick(&self, rng: &mut impl Rng, p: f64) -> SimResult<()> {
        let stable = self.inner.log.lock().stable_lsn();
        for id in self.inner.store.dirty_pages() {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                match self.inner.store.flush_page(id, stable) {
                    Ok(())
                    | Err(SimError::WalViolation { .. })
                    | Err(SimError::WriteOrderViolation { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// One checkpoint-daemon tick: take a fuzzy snapshot of the
    /// dirty-page table, append a [`PageOpPayload::FuzzyCheckpoint`]
    /// record, force the log, publish the checkpoint by swinging the
    /// master pointer, and truncate the log prefix below the
    /// checkpoint's redo-start.
    ///
    /// The snapshot and the append happen under the store **and** log
    /// locks together (see the module's lock-ordering note), so no
    /// apply can slip between them; the in-flight floor covers records
    /// appended but not yet applied. Returns the published checkpoint
    /// LSN, or `None` if the attempt was abandoned (record not durable,
    /// or the pointer swing did not land — e.g. suppressed by fault
    /// injection); an abandoned attempt leaves the previous checkpoint
    /// in force and truncates nothing.
    ///
    /// # Errors
    ///
    /// Substrate errors from the log force.
    pub fn checkpoint_tick(&self) -> SimResult<Option<Lsn>> {
        // Snapshot + append, atomically w.r.t. appliers: the snapshot
        // holds every store shard (acquired in ascending order), so no
        // apply can slip between the table read and the append.
        let (ck, redo_start) = {
            let snapshot = self.inner.store.snapshot();
            let mut log = self.inner.log.lock();
            let dirty = snapshot.dirty_page_table();
            let floor = self.inner.inflight.lock().first().copied();
            let ck_expected = Lsn(log.last_lsn().0 + 1);
            let redo_start = [floor, dirty.iter().map(|&(_, rec)| rec).min()]
                .into_iter()
                .flatten()
                .min()
                // Nothing dirty, nothing in flight: everything logged so
                // far is installed, so recovery need only scan the
                // checkpoint record itself.
                .unwrap_or(ck_expected);
            let ck = log.append(PageOpPayload::FuzzyCheckpoint { dirty, redo_start })?;
            debug_assert_eq!(ck, ck_expected);
            (ck, redo_start)
        };
        // Make the record durable through the group-commit path.
        self.commit_tick();
        // Publish + truncate. Both the force and the pointer swing can
        // be suppressed by fault injection, and each suppression is
        // silent — so verify both before truncating anything. No shard
        // locks here: publication touches only the disk and the log.
        let mut disk = self.inner.store.disk();
        let mut log = self.inner.log.lock();
        if log.stable_lsn() < ck {
            self.inner.daemon.lock().checkpoints_abandoned += 1;
            return Ok(None);
        }
        disk.swing_pointer(ck);
        if disk.master() != ck {
            self.inner.daemon.lock().checkpoints_abandoned += 1;
            return Ok(None);
        }
        let reclaimed = log.truncate_prefix(redo_start)?;
        let mut daemon = self.inner.daemon.lock();
        daemon.checkpoints_taken += 1;
        daemon.truncated_bytes += reclaimed;
        daemon.last_checkpoint = Some(ck);
        Ok(Some(ck))
    }

    /// Checkpoint-daemon telemetry so far.
    #[must_use]
    pub fn daemon_stats(&self) -> DaemonStats {
        *self.inner.daemon.lock()
    }

    /// Drops latches no thread currently holds or awaits. [`latch_for`]
    /// inserts an entry per page id touched and never removes it, so a
    /// workload skewed over a large page universe would grow the maps
    /// without bound; the background loop calls this each tick. A strong
    /// count of 1 means the map holds the only reference, and because
    /// `latch_for` clones under the same latch-shard mutex we hold
    /// while sweeping that shard, no thread can acquire a reference
    /// concurrently with its check.
    ///
    /// [`latch_for`]: SharedDb::execute
    pub fn latch_gc_tick(&self) {
        for shard in self.inner.latches.iter() {
            shard.lock().retain(|_, latch| Arc::strong_count(latch) > 1);
        }
    }

    /// Number of per-page latches currently across the latch shards.
    #[must_use]
    pub fn latch_count(&self) -> usize {
        self.inner.latches.iter().map(|s| s.lock().len()).sum()
    }

    /// Signals background threads to stop.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
    }

    /// Has shutdown been requested?
    #[must_use]
    pub fn stopping(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Spawns the background group-commit + flusher + latch-GC +
    /// checkpoint-daemon loop on the current handle; returns when
    /// [`SharedDb::shutdown`] is called. Intended to run on its own
    /// thread. `checkpoint_every` is the daemon's period in ticks
    /// (`None` disables online checkpointing).
    ///
    /// # Panics
    ///
    /// Panics if a tick hits an unexpected substrate error — a broken
    /// pool or log is not something the background thread can recover
    /// from, and limping on would mask the corruption.
    pub fn background_loop(&self, seed: u64, flush_prob: f64, checkpoint_every: Option<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tick: u64 = 0;
        while !self.stopping() {
            tick += 1;
            self.commit_tick();
            self.flusher_tick(&mut rng, flush_prob)
                .expect("flusher tick hit an unexpected substrate error");
            self.latch_gc_tick();
            if let Some(every) = checkpoint_every {
                if tick.is_multiple_of(every.max(1)) {
                    self.checkpoint_tick()
                        .expect("checkpoint tick hit an unexpected substrate error");
                }
            }
            std::thread::yield_now();
        }
    }

    /// CRASH: tears down the shared database (volatile state vanishes)
    /// and reassembles the surviving parts as a sequential [`Db`] ready
    /// for a §6 recovery method.
    ///
    /// # Panics
    ///
    /// Panics if other clones of this handle still exist (all workers
    /// must have stopped — a crashed machine has no running threads).
    #[must_use]
    pub fn crash(self) -> Db<PageOpPayload> {
        let inner = Arc::try_unwrap(self.inner)
            .unwrap_or_else(|_| panic!("crash requires exclusive ownership"));
        let mut disk = inner.store.into_disk();
        let mut log = inner.log.into_inner();
        log.crash();
        disk.crash();
        let mut db = Db::new(inner.geometry);
        db.disk = disk;
        db.log = log;
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalized::Generalized;
    use crate::RecoveryMethod;
    use redo_workload::pages::{Cell, PageWorkloadSpec};

    /// Replays the stable log's records in log order against a plain
    /// cell map — the serialization the log itself defines.
    fn model_from_stable_log(db: &Db<PageOpPayload>) -> BTreeMap<Cell, u64> {
        let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
        for rec in db.log.decode_stable().expect("log intact") {
            let PageOpPayload::Op(op) = rec.payload else {
                continue;
            };
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
        }
        cells
    }

    fn run_concurrent(n_threads: usize, ops_per_thread: usize, seed: u64) {
        use std::sync::atomic::AtomicUsize;
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let finished = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // Workers on disjoint op-id ranges (ids must be unique; page
            // sets overlap freely).
            for t in 0..n_threads {
                let db = shared.clone();
                let finished = &finished;
                s.spawn(move || {
                    let ops = PageWorkloadSpec {
                        n_ops: ops_per_thread,
                        n_pages: 6,
                        cross_page_fraction: 0.3,
                        multi_page_fraction: 0.2,
                        blind_fraction: 0.2,
                        ..Default::default()
                    }
                    .generate(seed ^ ((t as u64) << 32));
                    for mut op in ops {
                        op.id = op.id * n_threads as u32 + t as u32;
                        db.execute(&op).expect("execute");
                    }
                    finished.fetch_add(1, Ordering::SeqCst);
                });
            }
            // The main thread plays cache cleaner + group committer
            // while the workers run.
            let mut rng = StdRng::seed_from_u64(seed);
            while finished.load(Ordering::SeqCst) < n_threads {
                shared.commit_tick();
                shared.flusher_tick(&mut rng, 0.3).expect("flusher tick");
                std::thread::yield_now();
            }
        });
        shared.shutdown();
        // Reacquire exclusive ownership and crash.
        shared.commit_tick(); // final group commit before the "crash"
        let mut db = shared.crash();
        let stats = Generalized.recover(&mut db).expect("recover");
        // The recovered state must equal the stable log's serialization.
        let model = model_from_stable_log(&db);
        for (cell, v) in model {
            assert_eq!(
                db.read_cell(cell).expect("read"),
                v,
                "cell {cell:?} diverged from the log's serialization"
            );
        }
        let _ = stats;
    }

    #[test]
    fn single_threaded_concurrent_api_matches_log() {
        run_concurrent(1, 40, 1);
    }

    #[test]
    fn four_threads_interleave_recoverably() {
        for seed in 0..3 {
            run_concurrent(4, 30, seed);
        }
    }

    #[test]
    fn eight_threads_heavy_contention() {
        run_concurrent(8, 25, 9);
    }

    #[test]
    fn background_loop_runs_until_shutdown() {
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let bg = shared.clone();
        let handle = std::thread::spawn(move || bg.background_loop(1, 0.5, None));
        let ops = PageWorkloadSpec {
            n_ops: 30,
            n_pages: 4,
            ..Default::default()
        }
        .generate(3);
        for op in &ops {
            shared.execute(op).expect("execute");
        }
        shared.shutdown();
        handle.join().expect("background loop exits");
        shared.commit_tick();
        let mut db = shared.crash();
        Generalized.recover(&mut db).expect("recover");
        let model = model_from_stable_log(&db);
        for (cell, v) in model {
            assert_eq!(db.read_cell(cell).expect("read"), v);
        }
    }

    #[test]
    fn crash_mid_stream_recovers_durable_prefix() {
        // No final commit: whatever the group-commit thread managed to
        // force is what survives; recovery must match exactly that.
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        std::thread::scope(|s| {
            for t in 0..4usize {
                let db = shared.clone();
                s.spawn(move || {
                    let ops = PageWorkloadSpec {
                        n_ops: 25,
                        n_pages: 5,
                        cross_page_fraction: 0.3,
                        ..Default::default()
                    }
                    .generate(77 ^ (t as u64) << 32);
                    for mut op in ops {
                        op.id = op.id * 4 + t as u32;
                        db.execute(&op).expect("execute");
                        if op.id % 7 == 0 {
                            db.commit_tick();
                        }
                    }
                });
            }
        });
        shared.shutdown();
        let mut db = shared.crash(); // volatile tail intentionally lost
        Generalized.recover(&mut db).expect("recover");
        let model = model_from_stable_log(&db);
        for (cell, v) in model {
            assert_eq!(db.read_cell(cell).expect("read"), v);
        }
    }

    #[test]
    fn latches_serialize_conflicting_increments() {
        // All threads read-modify-write the SAME cell; the final value
        // must reflect a chain (each op reads its predecessor's output),
        // which only holds if read-then-write is atomic per op.
        use redo_workload::pages::{PageOpKind, SlotId};
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let cell = Cell {
            page: PageId(0),
            slot: SlotId(0),
        };
        let per_thread = 20u32;
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let db = shared.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        let op = PageOp {
                            id: t * per_thread + i,
                            kind: PageOpKind::Physiological,
                            reads: vec![cell],
                            writes: vec![cell],
                            f_seed: 42,
                        };
                        db.execute(&op).expect("execute");
                    }
                });
            }
        });
        shared.shutdown();
        shared.commit_tick();
        let mut db = shared.crash();
        Generalized.recover(&mut db).expect("recover");
        // Replaying the log serially must land on the same value: if any
        // op's read had been torn, the hash chain would diverge.
        let model = model_from_stable_log(&db);
        assert_eq!(db.read_cell(cell).expect("read"), model[&cell]);
        assert_eq!(db.log.decode_stable().unwrap().len(), 80);
    }

    #[test]
    fn checkpoint_daemon_truncates_and_recovery_stays_exact() {
        // Single-threaded driver: execution order is the log order, so
        // the ops list itself is ground truth — the stable log cannot be
        // (its prefix gets truncated, which is the point of the test).
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let ops = PageWorkloadSpec {
            n_ops: 60,
            n_pages: 6,
            cross_page_fraction: 0.3,
            multi_page_fraction: 0.2,
            blind_fraction: 0.2,
            ..Default::default()
        }
        .generate(11);
        let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(5);
        for (i, op) in ops.iter().enumerate() {
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
            shared.execute(op).expect("execute");
            if (i + 1) % 10 == 0 {
                shared.commit_tick();
                // Two passes so one-level write-order chains drain.
                shared.flusher_tick(&mut rng, 1.0).expect("flusher tick");
                shared.flusher_tick(&mut rng, 1.0).expect("flusher tick");
                let ck = shared.checkpoint_tick().expect("checkpoint tick");
                assert!(ck.is_some(), "no faults injected: every attempt publishes");
            }
        }
        let daemon = shared.daemon_stats();
        assert_eq!(daemon.checkpoints_taken, 6);
        assert_eq!(daemon.checkpoints_abandoned, 0);
        assert!(
            daemon.truncated_bytes > 0,
            "checkpoints reclaimed log prefix"
        );
        shared.commit_tick();
        let mut db = shared.crash();
        assert!(
            db.log.first_stable() > Lsn(1),
            "the stable log's prefix was elided"
        );
        let stats = Generalized.recover(&mut db).expect("recover");
        assert_eq!(stats.checkpoint_lsn, daemon.last_checkpoint);
        assert!(stats.truncated_bytes > 0);
        assert!(
            stats.records_decoded < 25,
            "restart scan must be bounded by the checkpoint, decoded {}",
            stats.records_decoded
        );
        for (cell, v) in cells {
            assert_eq!(
                db.read_cell(cell).expect("read"),
                v,
                "cell {cell:?} diverged from the issue order"
            );
        }
    }

    #[test]
    fn background_daemon_with_workers_recovers_exactly() {
        // Workers on disjoint page universes: each thread's issue order
        // is ground truth for its own pages, and the daemon checkpoints
        // (and truncates) concurrently underneath all of them.
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let bg = shared.clone();
        let handle = std::thread::spawn(move || bg.background_loop(2, 0.4, Some(3)));
        let n_threads = 4usize;
        let pages_per_thread = 3u32;
        let mut models: Vec<BTreeMap<Cell, u64>> = Vec::new();
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..n_threads)
                .map(|t| {
                    let db = shared.clone();
                    s.spawn(move || {
                        let mut ops = PageWorkloadSpec {
                            n_ops: 40,
                            n_pages: pages_per_thread,
                            cross_page_fraction: 0.3,
                            multi_page_fraction: 0.2,
                            ..Default::default()
                        }
                        .generate(31 ^ ((t as u64) << 32));
                        let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
                        for op in &mut ops {
                            op.id = op.id * n_threads as u32 + t as u32;
                            for c in op.reads.iter_mut().chain(op.writes.iter_mut()) {
                                c.page = PageId(c.page.0 + t as u32 * pages_per_thread);
                            }
                            let reads: Vec<u64> = op
                                .reads
                                .iter()
                                .map(|c| cells.get(c).copied().unwrap_or(0))
                                .collect();
                            for &w in &op.writes {
                                cells.insert(w, op.output(w, &reads));
                            }
                            db.execute(op).expect("execute");
                        }
                        cells
                    })
                })
                .collect();
            for w in workers {
                models.push(w.join().expect("worker"));
            }
        });
        // The scheduler may run every worker to completion before the
        // background thread gets a single tick; give the daemon until it
        // publishes one checkpoint before stopping it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while shared.daemon_stats().checkpoints_taken == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        shared.shutdown();
        handle.join().expect("background loop exits");
        shared.commit_tick();
        let daemon = shared.daemon_stats();
        assert!(daemon.checkpoints_taken > 0, "the daemon ran");
        let mut db = shared.crash();
        Generalized.recover(&mut db).expect("recover");
        for cells in models {
            for (cell, v) in cells {
                assert_eq!(
                    db.read_cell(cell).expect("read"),
                    v,
                    "cell {cell:?} diverged from its thread's issue order"
                );
            }
        }
    }

    #[test]
    fn latch_map_stays_bounded_under_zipf_skew() {
        use redo_workload::pages::{PageOpKind, SlotId};
        use redo_workload::Zipf;
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let zipf = Zipf::new(10_000, 1.1);
        let mut rng = StdRng::seed_from_u64(8);
        let mut grew = 0usize;
        for i in 0..600u32 {
            let cell = Cell {
                page: PageId(zipf.sample(&mut rng) as u32),
                slot: SlotId(0),
            };
            let op = PageOp {
                id: i,
                kind: PageOpKind::Physiological,
                reads: vec![cell],
                writes: vec![cell],
                f_seed: 7,
            };
            shared.execute(&op).expect("execute");
            if (i + 1) % 50 == 0 {
                grew = grew.max(shared.latch_count());
                shared.latch_gc_tick();
                // No thread holds a latch between operations, so GC can
                // reclaim the whole map; under real concurrency it keeps
                // exactly the latches workers are standing on.
                assert_eq!(shared.latch_count(), 0);
            }
        }
        assert!(
            grew > 20,
            "the workload must actually exercise map growth (saw {grew})"
        );
    }
}
