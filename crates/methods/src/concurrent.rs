//! Concurrent normal operation over the substrate.
//!
//! The paper's model is sequential, but its central insight — a log need
//! only order *conflicting* operations (Lemma 1) — is what makes
//! concurrent execution recoverable at all: operations on disjoint pages
//! may interleave freely, and any log order consistent with the
//! conflicts replays to the same state. [`SharedDb`] realizes this:
//!
//! * worker threads execute [`PageOp`]s under **per-page latches**
//!   (acquired in sorted order — no deadlocks), so each operation's
//!   read-then-write is atomic with respect to conflicting operations
//!   while non-conflicting operations proceed in parallel;
//! * a **group-commit thread** periodically forces the log;
//! * a **background flusher** cleans dirty pages under the WAL rule and
//!   the write-order constraints, exactly like the sequential cache
//!   manager.
//!
//! Crashing tears the volatile components down and reassembles a
//! sequential [`Db`] for the §6 recovery method to repair; the test
//! suite then verifies the recovered state equals the replay of the
//! stable log — whatever interleaving the threads actually produced.
//!
//! Lock ordering (strict, global): page latches → log → store. The
//! flusher and committer never take latches, workers never take locks
//! out of order, so the system is deadlock-free by construction.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redo_sim::cache::{BufferPool, Constraint};
use redo_sim::db::{Db, Geometry};
use redo_sim::disk::Disk;
use redo_sim::wal::LogManager;
use redo_sim::{SimError, SimResult};
use redo_theory::log::Lsn;
use redo_workload::pages::{PageId, PageOp};

use crate::oprecord::PageOpPayload;

struct Store {
    disk: Disk,
    pool: BufferPool,
}

struct Inner {
    geometry: Geometry,
    log: Mutex<LogManager<PageOpPayload>>,
    store: Mutex<Store>,
    latches: Mutex<BTreeMap<PageId, Arc<Mutex<()>>>>,
    stop: AtomicBool,
}

/// A thread-shareable database executing page operations with
/// physiological/generalized logging.
#[derive(Clone)]
pub struct SharedDb {
    inner: Arc<Inner>,
}

impl SharedDb {
    /// A fresh shared database.
    #[must_use]
    pub fn new(geometry: Geometry) -> SharedDb {
        SharedDb {
            inner: Arc::new(Inner {
                geometry,
                log: Mutex::new(LogManager::new()),
                store: Mutex::new(Store {
                    disk: Disk::new(),
                    pool: BufferPool::new(None),
                }),
                latches: Mutex::new(BTreeMap::new()),
                stop: AtomicBool::new(false),
            }),
        }
    }

    fn latch_for(&self, page: PageId) -> Arc<Mutex<()>> {
        self.inner
            .latches
            .lock()
            .entry(page)
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone()
    }

    /// Executes one operation: latches its page set (sorted), reads its
    /// cells, appends the log record, applies the writes, and registers
    /// any write-order constraints. Returns the operation's LSN.
    ///
    /// # Errors
    ///
    /// Substrate errors (pool exhaustion).
    pub fn execute(&self, op: &PageOp) -> SimResult<Lsn> {
        if op.written_pages().is_empty() {
            return Err(SimError::MethodViolation(
                "operations must write at least one page",
            ));
        }
        // Latch every page the operation touches, in id order.
        let mut pages: Vec<PageId> = op
            .read_pages()
            .into_iter()
            .chain(op.written_pages())
            .collect();
        pages.sort_unstable();
        pages.dedup();
        let latches: Vec<Arc<Mutex<()>>> = pages.iter().map(|&p| self.latch_for(p)).collect();
        let _guards: Vec<_> = latches.iter().map(|l| l.lock()).collect();

        // Read phase (under latches, short store lock).
        let spp = self.inner.geometry.slots_per_page;
        let mut read_values = Vec::with_capacity(op.reads.len());
        {
            let mut store = self.inner.store.lock();
            let store = &mut *store;
            for &cell in &op.reads {
                let page = store
                    .pool
                    .fetch(&mut store.disk, cell.page, spp, Lsn::ZERO)?;
                read_values.push(page.get(cell.slot));
            }
        }
        // Log phase.
        let lsn = self.inner.log.lock().append(PageOpPayload::Op(op.clone()));
        // Apply phase (under the same latches: conflicting operations
        // cannot interleave between our read and our write).
        {
            let mut store = self.inner.store.lock();
            let store = &mut *store;
            for page in op.written_pages() {
                store.pool.fetch(&mut store.disk, page, spp, Lsn::ZERO)?;
            }
            for &cell in &op.writes {
                let v = op.output(cell, &read_values);
                store.pool.update(cell.page, lsn, |p| p.set(cell.slot, v))?;
            }
            let written = op.written_pages();
            for r in op.read_pages() {
                if !written.contains(&r) {
                    for &w in &written {
                        store.pool.add_constraint(Constraint {
                            blocked: r,
                            blocked_above: lsn,
                            requires: w,
                            required_lsn: lsn,
                        });
                    }
                }
            }
            store.pool.add_atomic_group(written, lsn);
        }
        Ok(lsn)
    }

    /// One group-commit tick: forces the whole log.
    pub fn commit_tick(&self) {
        self.inner.log.lock().flush_all();
    }

    /// One background-flusher tick: attempts to flush each dirty page
    /// with probability `p`, skipping any flush the WAL rule or a
    /// write-order constraint forbids.
    pub fn flusher_tick(&self, rng: &mut impl Rng, p: f64) {
        let stable = self.inner.log.lock().stable_lsn();
        let mut store = self.inner.store.lock();
        let store = &mut *store;
        for id in store.pool.dirty_pages() {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                let _ = store.pool.flush_page(&mut store.disk, id, stable);
            }
        }
    }

    /// Signals background threads to stop.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
    }

    /// Has shutdown been requested?
    #[must_use]
    pub fn stopping(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Spawns the background flusher + group-commit loop on the current
    /// handle; returns when [`SharedDb::shutdown`] is called. Intended to
    /// run on its own thread.
    pub fn background_loop(&self, seed: u64, flush_prob: f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        while !self.stopping() {
            self.commit_tick();
            self.flusher_tick(&mut rng, flush_prob);
            std::thread::yield_now();
        }
    }

    /// CRASH: tears down the shared database (volatile state vanishes)
    /// and reassembles the surviving parts as a sequential [`Db`] ready
    /// for a §6 recovery method.
    ///
    /// # Panics
    ///
    /// Panics if other clones of this handle still exist (all workers
    /// must have stopped — a crashed machine has no running threads).
    #[must_use]
    pub fn crash(self) -> Db<PageOpPayload> {
        let inner = Arc::try_unwrap(self.inner)
            .unwrap_or_else(|_| panic!("crash requires exclusive ownership"));
        let Store { mut disk, .. } = inner.store.into_inner();
        let mut log = inner.log.into_inner();
        log.crash();
        disk.crash();
        let mut db = Db::new(inner.geometry);
        db.disk = disk;
        db.log = log;
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalized::Generalized;
    use crate::RecoveryMethod;
    use redo_workload::pages::{Cell, PageWorkloadSpec};

    /// Replays the stable log's records in log order against a plain
    /// cell map — the serialization the log itself defines.
    fn model_from_stable_log(db: &Db<PageOpPayload>) -> BTreeMap<Cell, u64> {
        let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
        for rec in db.log.decode_stable().expect("log intact") {
            let PageOpPayload::Op(op) = rec.payload else {
                continue;
            };
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
        }
        cells
    }

    fn run_concurrent(n_threads: usize, ops_per_thread: usize, seed: u64) {
        use std::sync::atomic::AtomicUsize;
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let finished = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // Workers on disjoint op-id ranges (ids must be unique; page
            // sets overlap freely).
            for t in 0..n_threads {
                let db = shared.clone();
                let finished = &finished;
                s.spawn(move || {
                    let ops = PageWorkloadSpec {
                        n_ops: ops_per_thread,
                        n_pages: 6,
                        cross_page_fraction: 0.3,
                        multi_page_fraction: 0.2,
                        blind_fraction: 0.2,
                        ..Default::default()
                    }
                    .generate(seed ^ ((t as u64) << 32));
                    for mut op in ops {
                        op.id = op.id * n_threads as u32 + t as u32;
                        db.execute(&op).expect("execute");
                    }
                    finished.fetch_add(1, Ordering::SeqCst);
                });
            }
            // The main thread plays cache cleaner + group committer
            // while the workers run.
            let mut rng = StdRng::seed_from_u64(seed);
            while finished.load(Ordering::SeqCst) < n_threads {
                shared.commit_tick();
                shared.flusher_tick(&mut rng, 0.3);
                std::thread::yield_now();
            }
        });
        shared.shutdown();
        // Reacquire exclusive ownership and crash.
        shared.commit_tick(); // final group commit before the "crash"
        let mut db = shared.crash();
        let stats = Generalized.recover(&mut db).expect("recover");
        // The recovered state must equal the stable log's serialization.
        let model = model_from_stable_log(&db);
        for (cell, v) in model {
            assert_eq!(
                db.read_cell(cell).expect("read"),
                v,
                "cell {cell:?} diverged from the log's serialization"
            );
        }
        let _ = stats;
    }

    #[test]
    fn single_threaded_concurrent_api_matches_log() {
        run_concurrent(1, 40, 1);
    }

    #[test]
    fn four_threads_interleave_recoverably() {
        for seed in 0..3 {
            run_concurrent(4, 30, seed);
        }
    }

    #[test]
    fn eight_threads_heavy_contention() {
        run_concurrent(8, 25, 9);
    }

    #[test]
    fn background_loop_runs_until_shutdown() {
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let bg = shared.clone();
        let handle = std::thread::spawn(move || bg.background_loop(1, 0.5));
        let ops = PageWorkloadSpec {
            n_ops: 30,
            n_pages: 4,
            ..Default::default()
        }
        .generate(3);
        for op in &ops {
            shared.execute(op).expect("execute");
        }
        shared.shutdown();
        handle.join().expect("background loop exits");
        shared.commit_tick();
        let mut db = shared.crash();
        Generalized.recover(&mut db).expect("recover");
        let model = model_from_stable_log(&db);
        for (cell, v) in model {
            assert_eq!(db.read_cell(cell).expect("read"), v);
        }
    }

    #[test]
    fn crash_mid_stream_recovers_durable_prefix() {
        // No final commit: whatever the group-commit thread managed to
        // force is what survives; recovery must match exactly that.
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        std::thread::scope(|s| {
            for t in 0..4usize {
                let db = shared.clone();
                s.spawn(move || {
                    let ops = PageWorkloadSpec {
                        n_ops: 25,
                        n_pages: 5,
                        cross_page_fraction: 0.3,
                        ..Default::default()
                    }
                    .generate(77 ^ (t as u64) << 32);
                    for mut op in ops {
                        op.id = op.id * 4 + t as u32;
                        db.execute(&op).expect("execute");
                        if op.id % 7 == 0 {
                            db.commit_tick();
                        }
                    }
                });
            }
        });
        shared.shutdown();
        let mut db = shared.crash(); // volatile tail intentionally lost
        Generalized.recover(&mut db).expect("recover");
        let model = model_from_stable_log(&db);
        for (cell, v) in model {
            assert_eq!(db.read_cell(cell).expect("read"), v);
        }
    }

    #[test]
    fn latches_serialize_conflicting_increments() {
        // All threads read-modify-write the SAME cell; the final value
        // must reflect a chain (each op reads its predecessor's output),
        // which only holds if read-then-write is atomic per op.
        use redo_workload::pages::{PageOpKind, SlotId};
        let shared = SharedDb::new(Geometry { slots_per_page: 8 });
        let cell = Cell {
            page: PageId(0),
            slot: SlotId(0),
        };
        let per_thread = 20u32;
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let db = shared.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        let op = PageOp {
                            id: t * per_thread + i,
                            kind: PageOpKind::Physiological,
                            reads: vec![cell],
                            writes: vec![cell],
                            f_seed: 42,
                        };
                        db.execute(&op).expect("execute");
                    }
                });
            }
        });
        shared.shutdown();
        shared.commit_tick();
        let mut db = shared.crash();
        Generalized.recover(&mut db).expect("recover");
        // Replaying the log serially must land on the same value: if any
        // op's read had been torn, the hash chain would diverge.
        let model = model_from_stable_log(&db);
        assert_eq!(db.read_cell(cell).expect("read"), model[&cell]);
        assert_eq!(db.log.decode_stable().unwrap().len(), 80);
    }
}
