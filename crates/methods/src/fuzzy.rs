//! Physiological recovery with *fuzzy* checkpoints and an analysis pass.
//!
//! §4.3 allows the analysis phase of recovery to be arbitrary: "the
//! analysis function might map the state and the log at the start of
//! recovery to a position in the log for the start of recovery". The
//! [`Physiological`](crate::physiological::Physiological) method uses
//! the degenerate version — a heavyweight checkpoint that flushes every
//! dirty page, so recovery starts at the checkpoint record. Real systems
//! (ARIES) avoid stalling: a **fuzzy checkpoint** merely *records* the
//! dirty-page table — each dirty page with its recovery LSN (`recLSN`,
//! the first update since the page was last clean) — without flushing
//! anything.
//!
//! Recovery then runs an analysis pass: read the checkpoint record,
//! compute `redo_start = min(recLSN)` over the logged dirty-page table,
//! and scan from there. The redo test is the unchanged page-LSN test, so
//! records between `redo_start` and the checkpoint that touch clean
//! pages are scanned but skipped.
//!
//! In invariant terms: the checkpoint no longer installs anything; it
//! only makes the *analysis* smarter about where uninstalled operations
//! can start. The contract stays the same, which is exactly the paper's
//! point about separating the redo test from the machinery feeding it.

use std::collections::BTreeSet;

use redo_sim::db::Db;
use redo_sim::wal::{codec, LogPayload, ShardedScanner};
use redo_sim::{SimError, SimResult};
use redo_theory::log::Lsn;
use redo_workload::pages::{PageId, PageOp};

use crate::{RecoveryMethod, RecoveryStats, SCAN_BATCH};

/// Log payload: operations plus fuzzy checkpoint records carrying the
/// dirty-page table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FuzzyPayload {
    /// A logged operation.
    Op(PageOp),
    /// A fuzzy checkpoint: the dirty-page table at checkpoint time.
    Checkpoint {
        /// `(page, recLSN)` for every page dirty at the checkpoint.
        dirty: Vec<(PageId, Lsn)>,
    },
}

impl LogPayload for FuzzyPayload {
    fn encode(&self, buf: &mut Vec<u8>) -> SimResult<()> {
        match self {
            FuzzyPayload::Op(op) => {
                codec::put_u8(buf, 0);
                codec::put_page_op(buf, op)?;
            }
            FuzzyPayload::Checkpoint { dirty } => {
                codec::put_u8(buf, 1);
                codec::put_u16(
                    buf,
                    codec::count_u16("dirty-page-table length", dirty.len())?,
                );
                for &(p, lsn) in dirty {
                    codec::put_u32(buf, p.0);
                    codec::put_u64(buf, lsn.0);
                }
            }
        }
        Ok(())
    }

    fn decode(input: &[u8], pos: &mut usize) -> SimResult<Self> {
        match codec::get_u8(input, pos)? {
            0 => Ok(FuzzyPayload::Op(codec::get_page_op(input, pos)?)),
            1 => {
                let n = codec::get_u16(input, pos)? as usize;
                let mut dirty = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let p = PageId(codec::get_u32(input, pos)?);
                    let lsn = Lsn(codec::get_u64(input, pos)?);
                    dirty.push((p, lsn));
                }
                Ok(FuzzyPayload::Checkpoint { dirty })
            }
            _ => Err(SimError::Corrupt(*pos - 1)),
        }
    }

    fn write_pages(&self) -> Vec<PageId> {
        match self {
            FuzzyPayload::Op(op) => op.written_pages(),
            FuzzyPayload::Checkpoint { .. } => Vec::new(),
        }
    }
}

/// Physiological recovery with fuzzy checkpoints.
///
/// Checkpoints log the buffer pool's dirty-page table with each page's
/// exact recLSN (tracked by the pool at first-dirty). The table is only
/// a bound on work, never a correctness input — the page-LSN redo test
/// remains the sole decider.
#[derive(Clone, Debug, Default)]
pub struct FuzzyPhysiological;

/// What the analysis pass of a fuzzy recovery computed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzyAnalysis {
    /// The checkpoint record the master pointed at, if any.
    pub checkpoint_lsn: Option<Lsn>,
    /// Where the redo scan started.
    pub redo_start: Lsn,
    /// Records before `redo_start` skipped without examination.
    pub records_elided: usize,
}

impl FuzzyPhysiological {
    /// The dirty-page table to log: every cached dirty page with the
    /// exact recLSN the buffer pool recorded at its first dirtying
    /// update. Exactness only sharpens the analysis bound — the redo
    /// test still decides every record on its own.
    fn dirty_page_table(db: &Db<FuzzyPayload>) -> Vec<(PageId, Lsn)> {
        db.pool.dirty_page_table()
    }

    /// The analysis pass: locate the checkpoint's dirty-page table in
    /// the stable log and compute the redo scan start.
    ///
    /// The checkpoint record is found by *seeking* directly to the
    /// master LSN — one index jump plus a short header walk, decoding a
    /// single record — rather than materializing the whole log. The
    /// elided-record count then falls out of the density invariant
    /// (stable LSNs are exactly `1..=stable_lsn`): everything below
    /// `redo_start` is `redo_start − 1` records, no decoding required.
    ///
    /// # Errors
    ///
    /// Log corruption.
    pub fn analyze(&self, db: &Db<FuzzyPayload>) -> SimResult<FuzzyAnalysis> {
        let master = db.disk.master();
        let mut analysis = FuzzyAnalysis {
            checkpoint_lsn: None,
            redo_start: Lsn(1),
            records_elided: 0,
        };
        if master > Lsn::ZERO {
            let mut cursor = db.log.cursor_from(master);
            if let Some(rec) = cursor.next() {
                let rec = rec?;
                if rec.lsn == master {
                    if let FuzzyPayload::Checkpoint { dirty } = &rec.payload {
                        analysis.checkpoint_lsn = Some(master);
                        // Everything before the checkpoint whose page was
                        // clean at checkpoint time is installed; the scan
                        // needs to start only at the oldest recLSN (or right
                        // after the checkpoint if nothing was dirty).
                        analysis.redo_start = dirty
                            .iter()
                            .map(|&(_, rec_lsn)| rec_lsn)
                            .min()
                            .unwrap_or(master.next());
                    }
                }
            }
        }
        // Density (stable LSNs are exactly first_stable..=stable_lsn)
        // turns the elided count into arithmetic; a truncated prefix
        // was elided before recovery even started.
        analysis.records_elided = (analysis
            .redo_start
            .0
            .saturating_sub(db.log.first_stable().0) as usize)
            .min(db.log.stable_count());
        Ok(analysis)
    }
}

impl RecoveryMethod for FuzzyPhysiological {
    type Payload = FuzzyPayload;

    fn name(&self) -> &'static str {
        "fuzzy-physiological"
    }

    fn execute(&self, db: &mut Db<FuzzyPayload>, op: &PageOp) -> SimResult<Lsn> {
        let written = op.written_pages();
        if written.len() != 1 || op.read_pages().iter().any(|p| *p != written[0]) {
            return Err(SimError::MethodViolation(
                "fuzzy-physiological operations read and write exactly one page",
            ));
        }
        let lsn = db.log.append(FuzzyPayload::Op(op.clone()))?;
        db.apply_page_op(op, lsn)?;
        Ok(lsn)
    }

    fn checkpoint(&self, db: &mut Db<FuzzyPayload>) -> SimResult<()> {
        // Fuzzy: no page flushing, no quiesce. Log the dirty-page table
        // and move the master. The WAL rule still requires the log up to
        // the checkpoint record to be stable before the master moves.
        let dirty = Self::dirty_page_table(db);
        let ck = db.log.append(FuzzyPayload::Checkpoint { dirty })?;
        db.log.flush_all();
        db.disk.set_master(ck)?;
        Ok(())
    }

    fn recover(&self, db: &mut Db<FuzzyPayload>) -> SimResult<RecoveryStats> {
        // Recovery's first act: repair crash damage the media can
        // detect (torn pages, a torn log-tail fragment).
        db.repair_after_crash();
        let analysis = self.analyze(db)?;
        let mut stats = RecoveryStats {
            checkpoint_lsn: analysis.checkpoint_lsn,
            truncated_bytes: db.log.truncated_bytes(),
            ..RecoveryStats::default()
        };
        // The analysis told us where uninstalled operations can start;
        // seek there and decode only the suffix.
        let mut scanner = ShardedScanner::seek(&db.log, analysis.redo_start);
        loop {
            let batch = scanner.next_batch(&db.log, SCAN_BATCH)?;
            if batch.is_empty() {
                break;
            }
            let pages: BTreeSet<PageId> = batch
                .iter()
                .filter_map(|rec| match &rec.payload {
                    FuzzyPayload::Op(op) => Some(op.written_pages()[0]),
                    FuzzyPayload::Checkpoint { .. } => None,
                })
                .collect();
            let pages: Vec<PageId> = pages.into_iter().collect();
            stats.pages_prefetched += db.pool.prefetch(
                &mut db.disk,
                &pages,
                db.geometry.slots_per_page,
                db.log.stable_lsn(),
            );
            for rec in batch {
                stats.scanned += 1;
                let FuzzyPayload::Op(op) = rec.payload else {
                    continue;
                };
                let page = op.written_pages()[0];
                let stable = db.log.stable_lsn();
                let cached =
                    db.pool
                        .fetch(&mut db.disk, page, db.geometry.slots_per_page, stable)?;
                if cached.lsn() < rec.lsn {
                    db.apply_page_op(&op, rec.lsn)?;
                    stats.replayed.push(op.id);
                } else {
                    stats.skipped.push(op.id);
                }
            }
        }
        stats.note_scan(scanner.stats(), db.log.forces());
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use redo_sim::db::Geometry;
    use redo_workload::pages::{Cell, PageWorkloadSpec};

    fn workload(n: usize, seed: u64) -> Vec<PageOp> {
        PageWorkloadSpec {
            n_ops: n,
            n_pages: 5,
            ..Default::default()
        }
        .generate(seed)
    }

    fn model(ops: &[PageOp]) -> std::collections::BTreeMap<Cell, u64> {
        let mut cells = std::collections::BTreeMap::new();
        for op in ops {
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
        }
        cells
    }

    fn assert_matches(db: &mut Db<FuzzyPayload>, ops: &[PageOp]) {
        for (c, v) in model(ops) {
            assert_eq!(db.read_cell(c).unwrap(), v, "cell {c:?}");
        }
    }

    #[test]
    fn payload_roundtrip() {
        let p = FuzzyPayload::Checkpoint {
            dirty: vec![(PageId(1), Lsn(4)), (PageId(3), Lsn(9))],
        };
        let mut buf = Vec::new();
        p.encode(&mut buf).unwrap();
        let mut pos = 0;
        assert_eq!(FuzzyPayload::decode(&buf, &mut pos).unwrap(), p);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn fuzzy_checkpoint_does_not_flush_pages() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(10, 1);
        for op in &ops {
            FuzzyPhysiological.execute(&mut db, op).unwrap();
        }
        let before = db.disk.page_writes();
        FuzzyPhysiological.checkpoint(&mut db).unwrap();
        assert_eq!(
            db.disk.page_writes(),
            before,
            "fuzzy checkpoints never flush pages"
        );
        assert!(!db.pool.dirty_pages().is_empty());
    }

    #[test]
    fn analysis_bounds_the_scan_below_the_checkpoint() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(30, 2);
        // Execute 10, flush everything (all clean), execute 10 more
        // (dirty), fuzzy checkpoint, execute 10 more.
        for op in &ops[..10] {
            FuzzyPhysiological.execute(&mut db, op).unwrap();
        }
        db.flush_everything().unwrap();
        for op in &ops[10..20] {
            FuzzyPhysiological.execute(&mut db, op).unwrap();
        }
        FuzzyPhysiological.checkpoint(&mut db).unwrap();
        for op in &ops[20..] {
            FuzzyPhysiological.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        db.crash();
        let analysis = FuzzyPhysiological.analyze(&db).unwrap();
        assert!(analysis.checkpoint_lsn.is_some());
        // recLSNs are exact (pinned at first-dirty by the pool), so the
        // analysis elides the entire installed prefix: nothing was dirty
        // before op 11, hence redo_start is op 11's LSN and all 10
        // records below it are skipped without decoding.
        assert_eq!(analysis.redo_start, Lsn(11), "{analysis:?}");
        assert_eq!(analysis.records_elided, 10, "{analysis:?}");
        let stats = FuzzyPhysiological.recover(&mut db).unwrap();
        assert_matches(&mut db, &ops);
        assert!(
            stats.scanned < 31,
            "scan must be bounded below the full log: {stats:?}"
        );
    }

    #[test]
    fn recovers_under_chaos_with_fuzzy_checkpoints() {
        for seed in 0..5 {
            let mut db = Db::new(Geometry::default());
            let ops = workload(60, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5a5a);
            for (i, op) in ops.iter().enumerate() {
                FuzzyPhysiological.execute(&mut db, op).unwrap();
                db.chaos_flush(&mut rng, 0.7, 0.3).unwrap();
                if i % 11 == 10 {
                    FuzzyPhysiological.checkpoint(&mut db).unwrap();
                }
            }
            db.log.flush_all();
            db.crash();
            FuzzyPhysiological.recover(&mut db).unwrap();
            assert_matches(&mut db, &ops);
        }
    }

    #[test]
    fn checkpoint_with_no_dirty_pages_elides_everything_before_it() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(12, 3);
        for op in &ops {
            FuzzyPhysiological.execute(&mut db, op).unwrap();
        }
        db.flush_everything().unwrap();
        FuzzyPhysiological.checkpoint(&mut db).unwrap();
        db.crash();
        let stats = FuzzyPhysiological.recover(&mut db).unwrap();
        assert_eq!(stats.scanned, 0);
        assert_matches(&mut db, &ops);
    }

    #[test]
    fn fuzzy_scan_skips_but_examines_clean_page_records() {
        // Pages flushed after the checkpoint make their records scanned
        // but skipped (the page-LSN test bypasses them).
        let mut db = Db::new(Geometry::default());
        let ops = workload(20, 4);
        for op in &ops[..10] {
            FuzzyPhysiological.execute(&mut db, op).unwrap();
        }
        FuzzyPhysiological.checkpoint(&mut db).unwrap();
        for op in &ops[10..] {
            FuzzyPhysiological.execute(&mut db, op).unwrap();
        }
        db.flush_everything().unwrap(); // everything installed
        db.crash();
        let stats = FuzzyPhysiological.recover(&mut db).unwrap();
        assert_eq!(stats.replayed.len(), 0);
        assert!(!stats.skipped.is_empty());
        assert_matches(&mut db, &ops);
    }
}
