//! The self-tuning checkpoint/flush control loop: close the loop the
//! open-loop daemon left dangling.
//!
//! The background daemon ([`crate::concurrent::SharedDb`]) used to run
//! *open loop*: checkpoint every N ticks, flush a uniformly random dirty
//! page, never look at what restart would actually cost. Three
//! pathologies follow. A quiescent system re-publishes identical
//! checkpoint records forever, each one forcing the log and swinging the
//! master for nothing. A skewed workload keeps re-dirtying the same hot
//! pages, so a random flusher almost never picks the *coldest* page —
//! the one whose recLSN pins the truncation horizon — and the stable
//! prefix past redo-start grows without bound. And a fixed cadence is
//! wrong in both directions at once: too slow under a write burst (the
//! suffix a restart must scan balloons between checkpoints), too fast at
//! idle (pure overhead).
//!
//! This module closes the loop. Each tick the controller *estimates*
//! restart cost from telemetry the substrate already exposes — stable
//! bytes past the published redo-start
//! ([`redo_sim::wal::ShardedLog::suffix_bytes`]), the dirty-page-table
//! size, and the per-shard live-byte skew — compares it against a
//! configurable [`RestartBudget`], and emits a [`ControlPlan`] naming
//! which actuators to fire:
//!
//! 1. **Checkpoint cadence** — checkpoint when estimated replay cost
//!    crosses the budget, not on a timer. Checkpoints are *incremental*:
//!    a [`PageOpPayload::DeltaCheckpoint`] carrying the DPT delta
//!    against the previous record, chained by `prev` links to the full
//!    snapshot at `base`, with a full [`PageOpPayload::FuzzyCheckpoint`]
//!    republished every [`Control::FULL_EVERY`] links to bound the
//!    chain analysis must walk.
//! 2. **Targeted flushing** — flush the dirty page with the *minimum*
//!    recLSN, the one pinning the truncation horizon, instead of a
//!    random one.
//! 3. **Archive pressure** — when one shard's live bytes exceed its
//!    share of the budget, drain that shard's prefix to the archive
//!    tier ([`redo_sim::wal::ShardedLog::archive_shard_prefix`])
//!    without waiting for the next global truncation.
//!
//! The planner ([`Controller::plan`]) is a pure function of the
//! estimate, so its policy is unit-testable without a database. The
//! [`Control`] method at the bottom is the *sequential* face of the
//! loop — the same role [`GeneralizedOnline`](crate::online) plays for
//! the concurrent daemon's full checkpoints — and exists chiefly so the
//! crash audit can drive fault injection into every step of
//! delta-chain publication through the generic harness.

use std::collections::BTreeMap;

use redo_sim::db::Db;
use redo_sim::SimResult;
use redo_theory::log::Lsn;
use redo_workload::pages::{PageId, PageOp};

use crate::generalized::Generalized;
use crate::oprecord::PageOpPayload;
use crate::{RecoveryMethod, RecoveryStats};

/// The restart-latency budget the controller steers toward: how much a
/// crash at this instant is allowed to cost the subsequent restart.
#[derive(Clone, Debug, PartialEq)]
pub struct RestartBudget {
    /// Ceiling on stable log bytes past the published redo-start — the
    /// volume restart's redo scan would read.
    pub max_suffix_bytes: u64,
    /// Ceiling on dirty-page-table size — a proxy for the page fetches
    /// restart performs before its redo tests can run.
    pub max_dirty_pages: usize,
    /// A shard whose live bytes exceed `shard_skew_limit` times its
    /// even share of `max_suffix_bytes` gets a targeted archive drain.
    pub shard_skew_limit: f64,
    /// Republish a full snapshot every this many checkpoints; the links
    /// in between are deltas.
    pub full_every: u64,
}

impl Default for RestartBudget {
    fn default() -> Self {
        RestartBudget {
            max_suffix_bytes: 8 * 1024,
            max_dirty_pages: 16,
            shard_skew_limit: 2.0,
            full_every: Control::FULL_EVERY,
        }
    }
}

/// A point-in-time estimate of what restart would cost right now, read
/// off substrate telemetry by [`Controller::estimate`] (or assembled by
/// the concurrent daemon under its own locks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RestartEstimate {
    /// Stable bytes at or past the published redo-start.
    pub suffix_bytes: u64,
    /// Current dirty-page-table size.
    pub dirty_pages: usize,
    /// The redo-start LSN the estimate was measured against.
    pub redo_start: Lsn,
    /// Per-shard live stable bytes (the skew breakdown).
    pub live_bytes_by_shard: Vec<u64>,
}

/// What the controller decided to do this tick.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ControlPlan {
    /// Publish a checkpoint (estimated restart cost crossed the budget).
    pub checkpoint: bool,
    /// Flush the minimum-recLSN dirty page to unpin the truncation
    /// horizon.
    pub flush_coldest: bool,
    /// Shards whose live suffix exceeds their skew-adjusted budget
    /// share: drain each one's prefix to the archive tier.
    pub archive_shards: Vec<usize>,
}

impl ControlPlan {
    /// Does this plan fire any actuator at all?
    #[must_use]
    pub fn is_idle(&self) -> bool {
        !self.checkpoint && !self.flush_coldest && self.archive_shards.is_empty()
    }
}

/// The pure planner: budget in, estimate in, actuator decisions out.
#[derive(Clone, Debug, Default)]
pub struct Controller {
    /// The budget this controller steers toward.
    pub budget: RestartBudget,
}

impl Controller {
    /// A controller steering toward `budget`.
    #[must_use]
    pub fn new(budget: RestartBudget) -> Self {
        Controller { budget }
    }

    /// Reads a [`RestartEstimate`] off a sequential database's
    /// telemetry: redo-start from the published checkpoint analysis,
    /// suffix bytes past it, the current DPT size, per-shard live
    /// bytes.
    ///
    /// # Errors
    ///
    /// Log corruption at the master record.
    pub fn estimate(db: &Db<PageOpPayload>) -> SimResult<RestartEstimate> {
        let (redo_start, _) = Generalized::analyze(db)?;
        Ok(RestartEstimate {
            suffix_bytes: db.log.suffix_bytes(redo_start),
            dirty_pages: db.pool.dirty_pages().len(),
            redo_start,
            live_bytes_by_shard: db.log.live_bytes_by_shard(),
        })
    }

    /// The control decision: which actuators to fire for this estimate.
    ///
    /// Checkpoint when the scan suffix or the DPT crosses its ceiling;
    /// start flushing the coldest page already at half the suffix
    /// budget (cheap, and it lets the *next* checkpoint truncate
    /// deeper); drain any shard whose live bytes exceed
    /// `shard_skew_limit` times its even share of the suffix budget.
    #[must_use]
    pub fn plan(&self, est: &RestartEstimate) -> ControlPlan {
        let b = &self.budget;
        let checkpoint =
            est.suffix_bytes > b.max_suffix_bytes || est.dirty_pages > b.max_dirty_pages;
        let flush_coldest = est.dirty_pages > 0 && est.suffix_bytes > b.max_suffix_bytes / 2;
        let shards = est.live_bytes_by_shard.len().max(1) as u64;
        let share = b.max_suffix_bytes / shards;
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        #[allow(clippy::cast_possible_truncation)]
        let shard_cap = (share as f64 * b.shard_skew_limit) as u64;
        let archive_shards = est
            .live_bytes_by_shard
            .iter()
            .enumerate()
            .filter(|&(_, &live)| live > shard_cap)
            .map(|(s, _)| s)
            .collect();
        ControlPlan {
            checkpoint,
            flush_coldest,
            archive_shards,
        }
    }
}

/// The volatile view of the published checkpoint chain, re-derived from
/// the log each time (the [`Control`] method is stateless — that is
/// what lets the generic crash audit drive faults into any step of
/// publication and still find a consistent system afterwards).
struct ChainInfo {
    /// LSN of the newest published checkpoint record (the master).
    head: Lsn,
    /// LSN of the full snapshot the chain grows from.
    base: Lsn,
    /// Links from `head` back to `base` (0 when `head == base`).
    depth: u64,
    /// The folded dirty-page table as of `head`.
    dpt: BTreeMap<PageId, Lsn>,
    /// The redo-start published at `head`.
    redo_start: Lsn,
}

/// Generalized LSN-based recovery whose checkpoints are budget-driven
/// incremental deltas — the sequential face of the adaptive controller,
/// and the method the crash audit runs under `--method control`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Control;

impl Control {
    /// Republish a full snapshot after this many consecutive deltas.
    pub const FULL_EVERY: u64 = 4;

    /// Re-derives the chain state from the record the master points at:
    /// the folded DPT via [`Generalized::analyze_dpt`], the chain depth
    /// by walking `prev` links. `None` when the master names no healthy
    /// checkpoint (fresh system, orphaned record, torn chain) — the
    /// next publication is then a full snapshot, which is always sound.
    fn chain_state(db: &Db<PageOpPayload>) -> Option<ChainInfo> {
        let master = db.disk.master();
        let rec = db.log.record_at_lsn(master).ok()??;
        let (base, published_redo_start) = match rec.payload {
            PageOpPayload::FuzzyCheckpoint { redo_start, .. } => (master, redo_start),
            PageOpPayload::DeltaCheckpoint {
                base, redo_start, ..
            } => (base, redo_start),
            _ => return None,
        };
        let analysis = Generalized::analyze_dpt(db).ok()?;
        // A fallback analysis (checkpoint_lsn != master, or no DPT)
        // means the chain is torn: start a fresh one.
        if analysis.checkpoint_lsn != Some(master) {
            return None;
        }
        let dpt = analysis.dirty?;
        let mut depth = 0u64;
        let mut at = master;
        while at != base {
            let rec = db.log.record_at_lsn(at).ok()??;
            let PageOpPayload::DeltaCheckpoint { prev, .. } = rec.payload else {
                return None;
            };
            if prev >= at {
                return None;
            }
            at = prev;
            depth += 1;
        }
        Some(ChainInfo {
            head: master,
            base,
            depth,
            dpt,
            redo_start: published_redo_start,
        })
    }

    /// One incremental checkpoint attempt: skip if the system is
    /// quiescent, publish a [`PageOpPayload::DeltaCheckpoint`] against
    /// the live chain (or a full [`PageOpPayload::FuzzyCheckpoint`]
    /// when there is no healthy chain or the chain is
    /// [`Control::FULL_EVERY`] deep), then force / swing / truncate
    /// exactly as [`GeneralizedOnline::checkpoint_online`]
    /// (crate::online::GeneralizedOnline::checkpoint_online) does —
    /// every step remains a faultable crash point, and an abandoned
    /// attempt publishes nothing and truncates nothing.
    ///
    /// Returns the LSN of the checkpoint now in force: the fresh one on
    /// publication, the standing one on a quiescent skip, `None` when
    /// the attempt was abandoned mid-publication.
    ///
    /// # Errors
    ///
    /// Substrate errors. (Fault suppression surfaces as an abandoned
    /// attempt, not an error.)
    pub fn checkpoint_incremental(db: &mut Db<PageOpPayload>) -> SimResult<Option<Lsn>> {
        let dirty = db.pool.dirty_page_table();
        let table: BTreeMap<PageId, Lsn> = dirty.iter().copied().collect();
        let ck_expected = Lsn(db.log.last_lsn().0 + 1);
        let candidate = dirty.iter().map(|&(_, rec)| rec).min();
        let chain = Self::chain_state(db);

        if let Some(chain) = &chain {
            // Quiescent skip: nothing was logged since the standing
            // checkpoint, the DPT is unchanged, and the redo-start
            // would not move (an empty table's candidate is the
            // drifting `ck_expected`, so compare through `unwrap_or`).
            if db.log.last_lsn() == chain.head
                && table == chain.dpt
                && candidate.unwrap_or(chain.redo_start) == chain.redo_start
            {
                return Ok(Some(chain.head));
            }
        }

        let redo_start = candidate.unwrap_or(ck_expected);
        let payload = match &chain {
            Some(chain) if chain.depth + 1 < Self::FULL_EVERY => {
                let added: Vec<(PageId, Lsn)> = table
                    .iter()
                    .filter(|&(page, rec)| chain.dpt.get(page) != Some(rec))
                    .map(|(&page, &rec)| (page, rec))
                    .collect();
                let removed: Vec<PageId> = chain
                    .dpt
                    .keys()
                    .filter(|page| !table.contains_key(page))
                    .copied()
                    .collect();
                PageOpPayload::DeltaCheckpoint {
                    prev: chain.head,
                    base: chain.base,
                    redo_start,
                    added,
                    removed,
                }
            }
            _ => PageOpPayload::FuzzyCheckpoint { dirty, redo_start },
        };
        let ck = db.log.append(payload)?;
        debug_assert_eq!(ck, ck_expected);
        db.log.flush_all();
        if db.log.stable_lsn() < ck {
            return Ok(None);
        }
        db.disk.set_master(ck)?;
        if db.disk.master() != ck {
            return Ok(None);
        }
        db.log.archive_prefix(redo_start)?;
        Ok(Some(ck))
    }
}

impl RecoveryMethod for Control {
    type Payload = PageOpPayload;

    fn name(&self) -> &'static str {
        "control"
    }

    fn execute(&self, db: &mut Db<PageOpPayload>, op: &PageOp) -> SimResult<Lsn> {
        Generalized.execute(db, op)
    }

    fn checkpoint(&self, db: &mut Db<PageOpPayload>) -> SimResult<()> {
        Self::checkpoint_incremental(db).map(|_| ())
    }

    fn recover(&self, db: &mut Db<PageOpPayload>) -> SimResult<RecoveryStats> {
        Generalized.recover(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use redo_sim::db::Geometry;
    use redo_sim::fault::{FaultKind, FaultPlan};
    use redo_workload::pages::{Cell, PageWorkloadSpec};

    fn workload(n: usize, seed: u64) -> Vec<PageOp> {
        PageWorkloadSpec {
            n_ops: n,
            n_pages: 5,
            cross_page_fraction: 0.4,
            multi_page_fraction: 0.2,
            blind_fraction: 0.1,
            ..Default::default()
        }
        .generate(seed)
    }

    fn model(ops: &[PageOp]) -> std::collections::BTreeMap<Cell, u64> {
        let mut cells = std::collections::BTreeMap::new();
        for op in ops {
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
        }
        cells
    }

    fn assert_matches_model(db: &mut Db<PageOpPayload>, ops: &[PageOp]) {
        for (c, v) in model(ops) {
            assert_eq!(db.read_cell(c).unwrap(), v, "cell {c:?}");
        }
    }

    #[test]
    fn planner_fires_checkpoint_on_suffix_budget() {
        let ctl = Controller::new(RestartBudget {
            max_suffix_bytes: 1000,
            max_dirty_pages: 100,
            ..Default::default()
        });
        let mut est = RestartEstimate {
            suffix_bytes: 999,
            dirty_pages: 3,
            redo_start: Lsn(1),
            live_bytes_by_shard: vec![200, 200],
        };
        assert!(!ctl.plan(&est).checkpoint);
        est.suffix_bytes = 1001;
        let plan = ctl.plan(&est);
        assert!(plan.checkpoint);
        assert!(plan.flush_coldest, "past half budget: unpin the horizon");
    }

    #[test]
    fn planner_fires_checkpoint_on_dpt_budget() {
        let ctl = Controller::new(RestartBudget {
            max_suffix_bytes: 1_000_000,
            max_dirty_pages: 4,
            ..Default::default()
        });
        let est = RestartEstimate {
            suffix_bytes: 10,
            dirty_pages: 5,
            redo_start: Lsn(1),
            live_bytes_by_shard: vec![10],
        };
        let plan = ctl.plan(&est);
        assert!(plan.checkpoint);
        assert!(!plan.flush_coldest, "suffix is tiny: no flush pressure");
    }

    #[test]
    fn planner_targets_skewed_shards_only() {
        let ctl = Controller::new(RestartBudget {
            max_suffix_bytes: 4000,
            shard_skew_limit: 2.0,
            ..Default::default()
        });
        // Even share = 1000/shard; cap = 2000. Shard 2 is over.
        let est = RestartEstimate {
            suffix_bytes: 100,
            dirty_pages: 0,
            redo_start: Lsn(1),
            live_bytes_by_shard: vec![500, 1800, 2500, 0],
        };
        assert_eq!(ctl.plan(&est).archive_shards, vec![2]);
    }

    #[test]
    fn idle_estimate_plans_nothing() {
        let ctl = Controller::default();
        let est = RestartEstimate {
            suffix_bytes: 0,
            dirty_pages: 0,
            redo_start: Lsn(1),
            live_bytes_by_shard: vec![0; 4],
        };
        assert!(ctl.plan(&est).is_idle());
    }

    #[test]
    fn delta_chain_publishes_and_recovers_exactly() {
        let ops = workload(40, 3);
        let mut db = Db::new(Geometry::default());
        let mut rng = StdRng::seed_from_u64(99);
        let mut published = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            Control.execute(&mut db, op).unwrap();
            db.chaos_flush(&mut rng, 0.8, 0.5).unwrap();
            if (i + 1) % 5 == 0 {
                let ck = Control::checkpoint_incremental(&mut db)
                    .unwrap()
                    .expect("no faults armed: publication must land");
                published.push(ck);
            }
        }
        assert_eq!(published.len(), 8);
        // The master names the newest checkpoint, and it is a delta
        // (eight publications: full, d, d, d, full, d, d, d).
        let master = db.disk.master();
        assert_eq!(master, *published.last().unwrap());
        let rec = db.log.record_at_lsn(master).unwrap().unwrap();
        assert!(
            matches!(rec.payload, PageOpPayload::DeltaCheckpoint { .. }),
            "{:?}",
            rec.payload
        );
        db.log.flush_all();
        db.crash();
        let stats = Control.recover(&mut db).unwrap();
        assert_eq!(stats.checkpoint_lsn, Some(master));
        assert_matches_model(&mut db, &ops);
    }

    #[test]
    fn full_snapshot_republished_every_fourth_checkpoint() {
        let ops = workload(30, 17);
        let mut db = Db::new(Geometry::default());
        let mut kinds = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            Control.execute(&mut db, op).unwrap();
            if (i + 1) % 3 == 0 {
                let ck = Control::checkpoint_incremental(&mut db)
                    .unwrap()
                    .expect("published");
                let rec = db.log.record_at_lsn(ck).unwrap().unwrap();
                kinds.push(match rec.payload {
                    PageOpPayload::FuzzyCheckpoint { .. } => 'F',
                    PageOpPayload::DeltaCheckpoint { .. } => 'D',
                    _ => '?',
                });
            }
        }
        assert_eq!(kinds.iter().collect::<String>(), "FDDDFDDDFD");
    }

    #[test]
    fn quiescent_system_skips_republication() {
        let ops = workload(12, 7);
        let mut db = Db::new(Geometry::default());
        for op in &ops {
            Control.execute(&mut db, op).unwrap();
        }
        let ck = Control::checkpoint_incremental(&mut db)
            .unwrap()
            .expect("published");
        let last = db.log.last_lsn();
        // Nothing moved: the standing checkpoint must be reused, with
        // no new record appended.
        for _ in 0..3 {
            let again = Control::checkpoint_incremental(&mut db).unwrap();
            assert_eq!(again, Some(ck), "quiescent tick must reuse the head");
            assert_eq!(db.log.last_lsn(), last, "no record may be appended");
        }
        // New work re-arms publication.
        let more = workload(3, 8);
        for op in &more {
            Control.execute(&mut db, op).unwrap();
        }
        let next = Control::checkpoint_incremental(&mut db)
            .unwrap()
            .expect("published");
        assert!(next > ck);
    }

    #[test]
    fn quiescent_skip_survives_clean_pool() {
        // The empty-DPT case: candidate redo-start would be the drifting
        // `ck_expected`, which must not defeat the skip.
        let ops = workload(10, 21);
        let mut db = Db::new(Geometry::default());
        for op in &ops {
            Control.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        db.pool
            .flush_all(&mut db.disk, db.log.stable_lsn())
            .unwrap();
        let ck = Control::checkpoint_incremental(&mut db)
            .unwrap()
            .expect("published");
        let last = db.log.last_lsn();
        let again = Control::checkpoint_incremental(&mut db).unwrap();
        assert_eq!(again, Some(ck));
        assert_eq!(db.log.last_lsn(), last);
    }

    #[test]
    fn torn_chain_falls_back_to_base_snapshot() {
        let ops = workload(20, 5);
        let mut db = Db::new(Geometry::default());
        for op in &ops[..10] {
            Control.execute(&mut db, op).unwrap();
        }
        // A healthy full snapshot to fall back to.
        let base = Control::checkpoint_incremental(&mut db)
            .unwrap()
            .expect("published");
        for op in &ops[10..] {
            Control.execute(&mut db, op).unwrap();
        }
        // Hand-publish a *lying* delta whose `prev` names an operation
        // record: its folded DPT would wrongly claim every page clean
        // and its redo-start would skip live work. Only the torn-chain
        // fallback to `base` keeps recovery exact.
        let bogus_redo = Lsn(db.log.last_lsn().0 + 1);
        let all_pages: Vec<PageId> = (0..5).map(PageId).collect();
        let lying = db
            .log
            .append(PageOpPayload::DeltaCheckpoint {
                prev: Lsn(2),
                base,
                redo_start: bogus_redo,
                added: vec![],
                removed: all_pages,
            })
            .unwrap();
        db.log.flush_all();
        db.disk.set_master(lying).unwrap();
        db.crash();
        let stats = Control.recover(&mut db).unwrap();
        assert_eq!(
            stats.checkpoint_lsn,
            Some(base),
            "analysis must fall back to the base snapshot"
        );
        assert_matches_model(&mut db, &ops);
    }

    #[test]
    fn suppressed_swing_abandons_delta_and_chain_survives() {
        let ops = workload(16, 11);
        let mut db = Db::new(Geometry::default());
        for op in &ops[..8] {
            Control.execute(&mut db, op).unwrap();
        }
        let first = Control::checkpoint_incremental(&mut db)
            .unwrap()
            .expect("published");
        for op in &ops[8..] {
            Control.execute(&mut db, op).unwrap();
        }
        // Pre-force so the checkpoint's own flush moves one record, then
        // suppress the master write (event 2): the delta record becomes
        // durable but orphaned.
        db.log.flush_all();
        db.arm_faults(FaultPlan {
            at: 2,
            kind: FaultKind::Clean,
        });
        let second = Control::checkpoint_incremental(&mut db).unwrap();
        assert_eq!(second, None, "swing suppressed: attempt abandoned");
        assert_eq!(db.disk.master(), first, "previous checkpoint stands");
        db.crash();
        db.repair_after_crash();
        let stats = Control.recover(&mut db).unwrap();
        assert_eq!(stats.checkpoint_lsn, Some(first));
        assert_matches_model(&mut db, &ops);
        // The orphaned delta does not poison the next publication: the
        // chain re-derives from the master (still `first`).
        let next = Control::checkpoint_incremental(&mut db)
            .unwrap()
            .expect("published");
        assert!(next > first);
    }

    #[test]
    fn controller_estimate_tracks_truncation() {
        let ops = workload(24, 13);
        let mut db = Db::new(Geometry::default());
        for op in &ops {
            Control.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        let before = Controller::estimate(&db).unwrap();
        assert!(before.suffix_bytes > 0);
        // Clean pool + checkpoint: the suffix collapses to (roughly) the
        // checkpoint record itself.
        db.pool
            .flush_all(&mut db.disk, db.log.stable_lsn())
            .unwrap();
        Control::checkpoint_incremental(&mut db)
            .unwrap()
            .expect("published");
        let after = Controller::estimate(&db).unwrap();
        assert!(
            after.suffix_bytes < before.suffix_bytes,
            "{} !< {}",
            after.suffix_bytes,
            before.suffix_bytes
        );
        assert_eq!(after.dirty_pages, 0);
    }
}
