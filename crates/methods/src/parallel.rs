//! Page-partitioned, pipelined parallel redo for the physical and
//! physiological methods.
//!
//! Theorem 3 says redo may replay the uninstalled operations in *any*
//! order consistent with the conflict graph. For the §6.2/§6.3 methods
//! every conflict lives inside a single page — physiological operations
//! read and write exactly one page, and a physical record's per-cell
//! after-images commute across pages — so LSN order only matters
//! *within* a page. The stable log tail can therefore be partitioned by
//! [`PageId`] and the partitions redone concurrently, which is precisely
//! the per-variable partition view of
//! [`RedoSchedule::partition_by_var`](redo_theory::schedule::RedoSchedule::partition_by_var)
//! with a page playing the role of a variable.
//!
//! The execution scheme is a *pipeline* whose decode stage scales with
//! the log: one scan thread per log shard runs a streaming frame scan
//! over its shard (a seeked [`LogCursor`](redo_sim::wal::LogCursor) —
//! only the post-checkpoint suffix is ever decoded) and routes its
//! *own* pages' work items, coalesced into batches to amortize channel
//! synchronization, over channels to worker threads, which rebuild
//! page *images* from their durable copies in per-page LSN order
//! **while the scans are still decoding later records** — replay
//! overlaps decode, and with `--log-shards N` the decode itself runs
//! N-wide. Because the log routes a record to the shard of every page
//! it writes (see [`ShardedLog`](redo_sim::wal::ShardedLog)), shard
//! `s`'s scan observes every record touching its pages, and routing
//! only pages homed on `s` ships each page's work exactly once
//! globally, in that shard's LSN order. A page's first routed item
//! carries its starting image (cloned cache copy or durable read), so
//! workers never touch the buffer pool or disk and the substrate needs
//! no internal locking. Scan-settled bookkeeping (skips the dirty-page
//! table proves, checkpoint recognitions) is recorded only by a
//! record's *home* shard — the lowest shard id among its written pages
//! — then merged into global LSN order, so the stats are
//! indistinguishable from a serial scan's. When the scans finish, the
//! channels close, the workers drain, and the calling thread installs
//! the rebuilt images into the buffer pool.
//!
//! Restart is *checkpoint-aware*: the scheduler is fed by the same
//! analysis pass sequential recovery uses
//! ([`Generalized::analyze_dpt`] /
//! [`Physical::analyze`](crate::physical::Physical::analyze)). The
//! scan seeks straight to the checkpoint's redo-start LSN (the minimum
//! recLSN over the logged dirty-page table), checkpoint records are
//! recognized and never routed to a partition, and a record below the
//! checkpoint whose page the DPT proves installed
//! ([`RestartAnalysis::provably_installed`](crate::generalized::RestartAnalysis::provably_installed))
//! is settled as *skipped*
//! at scan time — no partition, and no page fetch, ever sees it.
//!
//! [`ParallelPhysiological`], [`ParallelPhysical`], and
//! [`ParallelOnline`] wrap the scheme in [`RecoveryMethod`] (normal
//! operation delegates to the serial methods), so the harness can
//! crash-test the parallel recovery path exactly like the serial ones.
//! Worker failures stay contained: a panicking redo worker or a routing
//! protocol breach surfaces as a [`SimError`] from `recover_*_parallel`,
//! never as an unwind into the caller.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc;

use redo_sim::db::Db;
use redo_sim::page::Page;
use redo_sim::wal::{LogPayload, ScanStats, ShardFrame, WalRecord};
use redo_sim::{SimError, SimResult};
use redo_theory::log::Lsn;
use redo_workload::pages::{PageId, PageOp, SlotId};

use crate::generalized::Generalized;
use crate::online::GeneralizedOnline;
use crate::oprecord::PageOpPayload;
use crate::physical::{PhysPayload, Physical};
use crate::physiological::Physiological;
use crate::{RecoveryMethod, RecoveryStats};

/// One unit of redo work in flight from the scan thread to a worker:
/// a page's record (or record fragment) plus, with the page's first
/// item, its starting image.
struct WorkItem<T> {
    page: PageId,
    lsn: Lsn,
    op_id: u32,
    payload: T,
    start: Option<Page>,
}

/// Items per channel send. Redo work items are tiny (a page op or a
/// handful of cell writes), so routing them one send apiece would cost
/// more in channel synchronization than the replay itself; the router
/// coalesces this many per worker before handing off.
const ROUTE_BATCH: usize = 256;

/// The outcome of redoing one partition.
struct Rebuilt {
    page: PageId,
    image: Page,
    replayed: Vec<(Lsn, u32)>,
    skipped: Vec<(Lsn, u32)>,
}

/// Bookkeeping a scan thread settles without routing any work — kept
/// as data (rather than mutating shared stats) so the per-shard scans
/// stay lock-free, and merged into global LSN order after they join.
enum ScanEvent {
    /// A record the scan decoded (checkpoints included), counted once
    /// at its home shard.
    Scanned,
    /// A checkpoint record recognized and declined as page work.
    Checkpoint,
    /// An operation settled *replayed* at scan time (physical
    /// fragments replay unconditionally; the op is counted here).
    Replayed(u32),
    /// An operation settled *skipped* at scan time (the dirty-page
    /// table proved every surviving fragment installed).
    Skipped(u32),
}

/// A worker's main loop: consume item batches as the scan routes them,
/// applying each to its page's image the moment it arrives. The channel
/// closing (scan finished) ends the loop.
///
/// An erroring worker drops its receiver early; the router tolerates
/// the resulting send failures and the error surfaces at join time.
fn redo_worker<T, F>(rx: mpsc::Receiver<Vec<WorkItem<T>>>, apply: &F) -> SimResult<Vec<Rebuilt>>
where
    F: Fn(&mut Page, Lsn, &T) -> bool + Sync,
{
    let mut parts: BTreeMap<PageId, Rebuilt> = BTreeMap::new();
    for WorkItem {
        page,
        lsn,
        op_id,
        payload,
        start,
    } in rx.into_iter().flatten()
    {
        let part = match parts.entry(page) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                // The routing protocol ships a page's starting image
                // with its first item; a breach is a structured error,
                // never a panic (the caller may be mid-recovery of a
                // production restart).
                let Some(image) = start else {
                    return Err(SimError::MissingStartImage(page));
                };
                e.insert(Rebuilt {
                    page,
                    image,
                    replayed: Vec::new(),
                    skipped: Vec::new(),
                })
            }
        };
        if apply(&mut part.image, lsn, &payload) {
            part.replayed.push((lsn, op_id));
        } else {
            part.skipped.push((lsn, op_id));
        }
    }
    Ok(parts.into_values().collect())
}

/// A record's *home* shard: the lowest shard id among its written
/// pages (shard 0 for page-less records, which broadcast everywhere).
/// Exactly one scan thread observes a record as home, so per-record
/// bookkeeping settles exactly once even when the record itself is
/// replicated across shards.
fn home_shard<P: LogPayload>(db: &Db<P>, rec: &WalRecord<P>) -> usize {
    rec.payload
        .write_pages()
        .iter()
        .map(|&p| db.log.shard_of(p))
        .min()
        .unwrap_or(0)
}

/// One shard's scan thread: streams the shard's frames from the seeked
/// cursor, shards each record into per-page work items via `shard_fn`,
/// and routes the items homed on this shard to the workers. Returns
/// the home-settled events (in this shard's LSN order) and the scan
/// telemetry.
fn scan_shard<P, T, S>(
    db: &Db<P>,
    s: usize,
    from: Lsn,
    shard_fn: &S,
    txs: &[mpsc::Sender<Vec<WorkItem<T>>>],
) -> SimResult<(Vec<(Lsn, ScanEvent)>, ScanStats)>
where
    P: LogPayload,
    T: Send,
    S: Fn(WalRecord<P>) -> SimResult<(Vec<(PageId, Lsn, u32, T)>, Vec<ScanEvent>)> + Sync,
{
    let threads = txs.len();
    let mut bufs: Vec<Vec<WorkItem<T>>> = (0..threads)
        .map(|_| Vec::with_capacity(ROUTE_BATCH))
        .collect();
    let mut routed: BTreeSet<PageId> = BTreeSet::new();
    let mut events: Vec<(Lsn, ScanEvent)> = Vec::new();
    let mut cursor = db.log.shard_cursor_from(s, from);
    let mut scan_err: Option<SimError> = None;
    'scan: for frame in cursor.by_ref() {
        let frame = match frame {
            Ok(frame) => frame,
            Err(e) => {
                scan_err = Some(e);
                break;
            }
        };
        // Flush-group markers are log plumbing, not records.
        let ShardFrame::Rec(payload) = frame.payload else {
            continue;
        };
        let rec = WalRecord {
            lsn: frame.lsn,
            payload,
        };
        let is_home = home_shard(db, &rec) == s;
        let lsn = rec.lsn;
        let (items, evs) = match shard_fn(rec) {
            Ok(out) => out,
            Err(e) => {
                scan_err = Some(e);
                break;
            }
        };
        if is_home {
            events.extend(evs.into_iter().map(|e| (lsn, e)));
        }
        for (page, lsn, op_id, payload) in items {
            // Every shard holding a copy of the record computes the
            // same item set; only the page's home shard ships it, so
            // each page's work routes exactly once globally.
            if db.log.shard_of(page) != s {
                continue;
            }
            // The page's first item ships its starting image: the
            // cached copy if recovery already progressed, else the
            // durable page.
            let start = match routed
                .insert(page)
                .then(|| start_image(db, page))
                .transpose()
            {
                Ok(start) => start,
                Err(e) => {
                    scan_err = Some(e);
                    break 'scan;
                }
            };
            let w = page.0 as usize % threads;
            bufs[w].push(WorkItem {
                page,
                lsn,
                op_id,
                payload,
                start,
            });
            if bufs[w].len() == ROUTE_BATCH {
                // A failed send means the worker panicked; the join in
                // the driver surfaces it.
                let batch = std::mem::replace(&mut bufs[w], Vec::with_capacity(ROUTE_BATCH));
                let _ = txs[w].send(batch);
            }
        }
    }
    for (w, buf) in bufs.into_iter().enumerate() {
        if !buf.is_empty() {
            let _ = txs[w].send(buf);
        }
    }
    match scan_err {
        Some(e) => Err(e),
        None => Ok((events, cursor.stats())),
    }
}

/// The pipeline's joined output: rebuilt partitions in page-id order,
/// scan telemetry summed over shards, and the scan-settled events
/// merged into global LSN order.
type PipelineOutput = (Vec<Rebuilt>, ScanStats, Vec<(Lsn, ScanEvent)>);

/// Drives the pipeline: one scan thread per log shard streams records
/// from its shard's seeked cursor, shards each into per-page work
/// items via `shard_fn`, and routes them to `threads` workers applying
/// `apply`. Returns the rebuilt partitions in page-id order, the scan
/// telemetry summed over shards, and the scan-settled events merged
/// into global LSN order.
fn pipeline_partitions<P, T, F, S>(
    db: &Db<P>,
    from: Lsn,
    threads: usize,
    shard_fn: S,
    apply: F,
) -> SimResult<PipelineOutput>
where
    P: LogPayload + Sync,
    T: Send,
    F: Fn(&mut Page, Lsn, &T) -> bool + Sync,
    S: Fn(WalRecord<P>) -> SimResult<(Vec<(PageId, Lsn, u32, T)>, Vec<ScanEvent>)> + Sync,
{
    let threads = threads.max(1);
    let n_shards = db.log.n_shards();
    let apply = &apply;
    let shard_fn = &shard_fn;
    std::thread::scope(|scope| {
        let mut txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = mpsc::channel::<Vec<WorkItem<T>>>();
            txs.push(tx);
            handles.push(scope.spawn(move || redo_worker(rx, apply)));
        }
        // One scan thread per log shard; each gets its own sender
        // clones (mpsc preserves per-sender order, and a page's items
        // all come from its home shard's sender, so per-page LSN order
        // survives the multi-producer merge).
        let scan_handles: Vec<_> = (0..n_shards)
            .map(|s| {
                let txs: Vec<mpsc::Sender<Vec<WorkItem<T>>>> = txs.clone();
                scope.spawn(move || scan_shard(db, s, from, shard_fn, &txs))
            })
            .collect();
        let mut events: Vec<(Lsn, ScanEvent)> = Vec::new();
        let mut stats = ScanStats::default();
        let mut scan_err: Option<SimError> = None;
        for h in scan_handles {
            match h.join() {
                Ok(Ok((evs, st))) => {
                    events.extend(evs);
                    stats.absorb(st);
                }
                Ok(Err(e)) => scan_err = scan_err.or(Some(e)),
                Err(_) => scan_err = scan_err.or(Some(SimError::RecoveryWorkerPanic)),
            }
        }
        // Closing the channels ends the workers' loops.
        drop(txs);
        // Every worker is joined before any error returns, so no
        // thread outlives the scope regardless of outcome. A panicking
        // worker is contained here and reported as a recovery error —
        // it must never unwind across `recover_*_parallel`.
        let mut rebuilt: Vec<Rebuilt> = Vec::new();
        let mut worker_err: Option<SimError> = None;
        for h in handles {
            match h.join() {
                Ok(Ok(parts)) => rebuilt.extend(parts),
                Ok(Err(e)) => worker_err = worker_err.or(Some(e)),
                Err(_) => worker_err = worker_err.or(Some(SimError::RecoveryWorkerPanic)),
            }
        }
        if let Some(e) = scan_err {
            return Err(e);
        }
        if let Some(e) = worker_err {
            return Err(e);
        }
        rebuilt.sort_by_key(|r| r.page);
        // Each shard's events arrive in its own LSN order; a stable
        // sort by LSN interleaves them into the global order (events of
        // one record share an LSN and a shard, so their relative order
        // is preserved).
        events.sort_by_key(|&(lsn, _)| lsn);
        Ok((rebuilt, stats, events))
    })
}

/// The durable (or already-cached) starting image for a page: recovery
/// normally begins with an empty pool, but re-entrant recovery must see
/// its own earlier progress just as the serial scan's `fetch` does.
fn start_image<P: LogPayload>(db: &Db<P>, page: PageId) -> SimResult<Page> {
    match db.pool.get(page) {
        Some(p) => Ok(p.clone()),
        None => db.disk.read_page(page, db.geometry.slots_per_page),
    }
}

/// Installs rebuilt images into the buffer pool and folds the
/// per-partition redo decisions — plus the records the DPT let the scan
/// settle as skipped before routing (`elided`) — into `stats` in global
/// LSN order, so the stats are indistinguishable from a serial scan's.
fn install<P: LogPayload>(
    db: &mut Db<P>,
    rebuilt: Vec<Rebuilt>,
    elided: Vec<(Lsn, u32)>,
    stats: &mut RecoveryStats,
) -> SimResult<()> {
    let mut replayed: Vec<(Lsn, u32)> = Vec::new();
    let mut skipped: Vec<(Lsn, u32)> = elided;
    for r in rebuilt {
        replayed.extend(r.replayed.iter().copied());
        skipped.extend(r.skipped.iter().copied());
        if r.replayed.is_empty() {
            // Nothing fired on this page: its image equals the durable
            // copy, so there is nothing to install (and dirtying it
            // would provoke spurious flushes later).
            continue;
        }
        let stable = db.log.stable_lsn();
        db.pool
            .fetch(&mut db.disk, r.page, db.geometry.slots_per_page, stable)?;
        let lsn = r.image.lsn();
        let image = r.image;
        db.pool.update(r.page, lsn, move |p| *p = image)?;
    }
    replayed.sort_unstable();
    skipped.sort_unstable();
    stats
        .replayed
        .extend(replayed.into_iter().map(|(_, id)| id));
    stats.skipped.extend(skipped.into_iter().map(|(_, id)| id));
    Ok(())
}

/// Physiological recovery (§6.3) with page-partitioned, pipelined
/// parallel redo, fed by the checkpoint analysis: the scan seeks to
/// the analysis' redo-start, the streaming scan routes each surviving
/// record to a per-page worker the moment it decodes, and the per-page
/// LSN redo test and replay run concurrently with the rest of the
/// scan. Records below a fuzzy checkpoint whose page the dirty-page
/// table proves installed are settled as skipped at scan time and
/// never reach a partition; checkpoint records themselves are counted
/// ([`ScanStats::checkpoint_records`]) but never routed.
///
/// Works against any [`PageOpPayload`] image whose operations are
/// single-page — [`Physiological`]'s heavyweight checkpoints and
/// [`GeneralizedOnline`]'s fuzzy online checkpoints alike. Reaches the
/// same rebuilt state and semantic stats as the sequential
/// checkpoint-aware scan (the harness, checker, and proptests enforce
/// this differentially).
///
/// # Errors
///
/// Substrate errors, including log corruption, shape violations, and
/// contained worker failures ([`SimError::RecoveryWorkerPanic`],
/// [`SimError::MissingStartImage`]).
pub fn recover_physiological_parallel(
    db: &mut Db<PageOpPayload>,
    threads: usize,
) -> SimResult<RecoveryStats> {
    // Recovery's first act: repair crash damage the media can detect.
    db.repair_after_crash();
    // The analysis pass hands the partitioned scheduler its feed: the
    // redo-start LSN to seek to and the dirty-page table to route by.
    let analysis = Generalized::analyze_dpt(db)?;
    let mut stats = RecoveryStats {
        checkpoint_lsn: analysis.checkpoint_lsn,
        truncated_bytes: db.log.truncated_bytes(),
        ..RecoveryStats::default()
    };
    let analysis_ref = &analysis;
    let (rebuilt, mut scan, events) = pipeline_partitions(
        db,
        analysis.redo_start,
        threads,
        move |rec: WalRecord<PageOpPayload>| {
            let PageOpPayload::Op(op) = rec.payload else {
                // Checkpoint records are not page writes: they must
                // never be routed to a page partition.
                return Ok((Vec::new(), vec![ScanEvent::Scanned, ScanEvent::Checkpoint]));
            };
            let written = op.written_pages();
            if written.len() != 1 || op.read_pages().iter().any(|p| *p != written[0]) {
                return Err(SimError::MethodViolation(
                    "physiological operations access exactly one page",
                ));
            }
            if analysis_ref.provably_installed(written[0], rec.lsn) {
                // The DPT already decided this record: skipped, settled
                // at scan time, no partition or page fetch involved.
                return Ok((
                    Vec::new(),
                    vec![ScanEvent::Scanned, ScanEvent::Skipped(op.id)],
                ));
            }
            Ok((
                vec![(written[0], rec.lsn, op.id, op)],
                vec![ScanEvent::Scanned],
            ))
        },
        |image, lsn, op: &PageOp| {
            if image.lsn() >= lsn {
                return false; // already installed on the durable copy
            }
            // All reads are on this page, and the image holds every earlier
            // operation's effects — the operation is applicable.
            let read_values: Vec<u64> = op.reads.iter().map(|c| image.get(c.slot)).collect();
            for &cell in &op.writes {
                image.set(cell.slot, op.output(cell, &read_values));
            }
            image.set_lsn(lsn);
            true
        },
    )?;
    let mut elided: Vec<(Lsn, u32)> = Vec::new();
    for (lsn, ev) in events {
        match ev {
            ScanEvent::Scanned => stats.scanned += 1,
            ScanEvent::Checkpoint => scan.checkpoint_records += 1,
            ScanEvent::Skipped(id) => elided.push((lsn, id)),
            ScanEvent::Replayed(id) => stats.replayed.push(id),
        }
    }
    install(db, rebuilt, elided, &mut stats)?;
    stats.note_scan(scan, db.log.forces());
    Ok(stats)
}

/// Physical recovery (§6.2) with page-partitioned, pipelined parallel
/// redo, fed by the checkpoint analysis: the blind after-images are
/// split per page as they stream off the scan (a multi-page record
/// contributes a fragment to each page it touches) and replayed on
/// worker threads in per-page LSN order while the scan continues.
///
/// Under a heavyweight checkpoint this is equivalent to
/// [`Physical::recover`]: every record replays, so an operation is
/// counted replayed once even when its cells span pages. Under a
/// *fuzzy* checkpoint ([`Physical::checkpoint_fuzzy`]) the dirty-page
/// table additionally lets the router drop fragments it can prove
/// installed — the sequential path re-applies them harmlessly, the
/// partitioned path never ships them; a record all of whose fragments
/// are provably installed is counted skipped. Both paths rebuild the
/// identical state.
///
/// # Errors
///
/// Substrate errors, including log corruption and contained worker
/// failures ([`SimError::RecoveryWorkerPanic`],
/// [`SimError::MissingStartImage`]).
pub fn recover_physical_parallel(
    db: &mut Db<PhysPayload>,
    threads: usize,
) -> SimResult<RecoveryStats> {
    // Recovery's first act: repair crash damage the media can detect.
    db.repair_after_crash();
    let analysis = Physical::analyze(db)?;
    let mut stats = RecoveryStats {
        checkpoint_lsn: analysis.checkpoint_lsn,
        truncated_bytes: db.log.truncated_bytes(),
        ..RecoveryStats::default()
    };
    let analysis_ref = &analysis;
    let (rebuilt, mut scan, events) = pipeline_partitions(
        db,
        analysis.redo_start,
        threads,
        move |rec: WalRecord<PhysPayload>| {
            let lsn = rec.lsn;
            let PhysPayload::Writes { op_id, writes } = rec.payload else {
                // Checkpoint records are not page writes: count them,
                // never route them.
                return Ok((Vec::new(), vec![ScanEvent::Scanned, ScanEvent::Checkpoint]));
            };
            let mut per_page: BTreeMap<PageId, Vec<(SlotId, u64)>> = BTreeMap::new();
            for (cell, v) in writes {
                per_page.entry(cell.page).or_default().push((cell.slot, v));
            }
            // Fragments the DPT proves installed never reach a
            // partition; surviving fragments replay unconditionally
            // (blind, idempotent), so the per-operation verdict is
            // settled at scan time — at the record's home shard, in
            // LSN order — and the workers only rebuild images.
            per_page.retain(|&page, _| !analysis_ref.provably_installed(page, lsn));
            if per_page.is_empty() {
                return Ok((
                    Vec::new(),
                    vec![ScanEvent::Scanned, ScanEvent::Skipped(op_id)],
                ));
            }
            Ok((
                per_page
                    .into_iter()
                    .map(|(page, cells)| (page, lsn, op_id, cells))
                    .collect(),
                vec![ScanEvent::Scanned, ScanEvent::Replayed(op_id)],
            ))
        },
        |image, lsn, cells: &Vec<(SlotId, u64)>| {
            for &(slot, v) in cells {
                image.set(slot, v);
            }
            image.set_lsn(lsn);
            true
        },
    )?;
    for (_, ev) in events {
        match ev {
            ScanEvent::Scanned => stats.scanned += 1,
            ScanEvent::Checkpoint => scan.checkpoint_records += 1,
            ScanEvent::Skipped(id) => stats.skipped.push(id),
            ScanEvent::Replayed(id) => stats.replayed.push(id),
        }
    }
    // Worker-side replay bookkeeping is per-fragment; the scan already
    // settled the per-operation stats, so the install discards it.
    install(db, rebuilt, Vec::new(), &mut RecoveryStats::default())?;
    stats.note_scan(scan, db.log.forces());
    Ok(stats)
}

/// [`Physiological`] with the recovery path replaced by
/// [`recover_physiological_parallel`]. Normal operation (logging,
/// checkpoints) is identical, so crash states interchange freely with
/// the serial method's.
#[derive(Clone, Copy, Debug)]
pub struct ParallelPhysiological {
    /// Worker threads for the redo phase.
    pub threads: usize,
}

impl RecoveryMethod for ParallelPhysiological {
    type Payload = PageOpPayload;

    fn name(&self) -> &'static str {
        "physiological-parallel"
    }

    fn execute(&self, db: &mut Db<PageOpPayload>, op: &PageOp) -> SimResult<Lsn> {
        Physiological.execute(db, op)
    }

    fn checkpoint(&self, db: &mut Db<PageOpPayload>) -> SimResult<()> {
        Physiological.checkpoint(db)
    }

    fn recover(&self, db: &mut Db<PageOpPayload>) -> SimResult<RecoveryStats> {
        recover_physiological_parallel(db, self.threads)
    }

    fn parallel_restart(
        &self,
        db: &mut Db<PageOpPayload>,
        threads: usize,
    ) -> Option<SimResult<RecoveryStats>> {
        Some(recover_physiological_parallel(db, threads))
    }
}

/// [`Physical`] with the recovery path replaced by
/// [`recover_physical_parallel`] and the checkpoint discipline by the
/// *fuzzy* one ([`Physical::checkpoint_fuzzy`]) — so a crashed image
/// carries a dirty-page table for the partitioned restart to route by.
#[derive(Clone, Copy, Debug)]
pub struct ParallelPhysical {
    /// Worker threads for the redo phase.
    pub threads: usize,
}

impl RecoveryMethod for ParallelPhysical {
    type Payload = PhysPayload;

    fn name(&self) -> &'static str {
        "physical-parallel"
    }

    fn execute(&self, db: &mut Db<PhysPayload>, op: &PageOp) -> SimResult<Lsn> {
        Physical.execute(db, op)
    }

    fn checkpoint(&self, db: &mut Db<PhysPayload>) -> SimResult<()> {
        Physical::checkpoint_fuzzy(db).map(|_| ())
    }

    fn recover(&self, db: &mut Db<PhysPayload>) -> SimResult<RecoveryStats> {
        recover_physical_parallel(db, self.threads)
    }

    fn parallel_restart(
        &self,
        db: &mut Db<PhysPayload>,
        threads: usize,
    ) -> Option<SimResult<RecoveryStats>> {
        Some(recover_physical_parallel(db, threads))
    }
}

/// The online fuzzy-checkpoint discipline
/// ([`GeneralizedOnline::checkpoint_online`]) over physiological
/// (single-page) operations, with the recovery path replaced by the
/// DPT-fed [`recover_physiological_parallel`] — the full tentpole
/// combination: fuzzy checkpoints with log truncation during normal
/// operation, and a checkpoint-aware page-partitioned parallel
/// restart after a crash.
#[derive(Clone, Copy, Debug)]
pub struct ParallelOnline {
    /// Worker threads for the redo phase.
    pub threads: usize,
}

impl RecoveryMethod for ParallelOnline {
    type Payload = PageOpPayload;

    fn name(&self) -> &'static str {
        "online-parallel"
    }

    fn execute(&self, db: &mut Db<PageOpPayload>, op: &PageOp) -> SimResult<Lsn> {
        Physiological.execute(db, op)
    }

    fn checkpoint(&self, db: &mut Db<PageOpPayload>) -> SimResult<()> {
        GeneralizedOnline::checkpoint_online(db).map(|_| ())
    }

    fn recover(&self, db: &mut Db<PageOpPayload>) -> SimResult<RecoveryStats> {
        recover_physiological_parallel(db, self.threads)
    }

    fn parallel_restart(
        &self,
        db: &mut Db<PageOpPayload>,
        threads: usize,
    ) -> Option<SimResult<RecoveryStats>> {
        Some(recover_physiological_parallel(db, threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use redo_sim::db::Geometry;
    use redo_workload::pages::PageWorkloadSpec;

    fn chaotic_crashed_db<M: RecoveryMethod>(
        method: &M,
        ops: &[PageOp],
        seed: u64,
    ) -> Db<M::Payload> {
        let mut db = Db::new(Geometry::default());
        let mut rng = StdRng::seed_from_u64(seed);
        for op in ops {
            method.execute(&mut db, op).unwrap();
            db.chaos_flush(&mut rng, 0.7, 0.4).unwrap();
        }
        db.log.flush_all();
        db.crash();
        db
    }

    #[test]
    fn physiological_parallel_matches_serial() {
        let ops = PageWorkloadSpec {
            n_ops: 40,
            n_pages: 6,
            ..Default::default()
        }
        .generate(11);
        for threads in [1, 2, 4, 8] {
            let mut serial_db = chaotic_crashed_db(&Physiological, &ops, 3);
            let serial = Physiological.recover(&mut serial_db).unwrap();
            let mut par_db = chaotic_crashed_db(&Physiological, &ops, 3);
            let parallel = recover_physiological_parallel(&mut par_db, threads).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
            assert_eq!(
                par_db.volatile_theory_state(),
                serial_db.volatile_theory_state(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn physical_parallel_matches_serial() {
        let ops = PageWorkloadSpec {
            n_ops: 40,
            n_pages: 6,
            blind_fraction: 1.0,
            cross_page_fraction: 0.4,
            multi_page_fraction: 0.4,
            ..Default::default()
        }
        .generate(12);
        for threads in [1, 2, 4, 8] {
            let mut serial_db = chaotic_crashed_db(&Physical, &ops, 5);
            let serial = Physical.recover(&mut serial_db).unwrap();
            let mut par_db = chaotic_crashed_db(&Physical, &ops, 5);
            let parallel = recover_physical_parallel(&mut par_db, threads).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
            assert_eq!(
                par_db.volatile_theory_state(),
                serial_db.volatile_theory_state(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_recovery_survives_repeated_crashes() {
        let ops = PageWorkloadSpec {
            n_ops: 25,
            n_pages: 4,
            ..Default::default()
        }
        .generate(13);
        let method = ParallelPhysiological { threads: 4 };
        let mut db = chaotic_crashed_db(&method, &ops, 7);
        method.recover(&mut db).unwrap();
        let once = db.volatile_theory_state();
        for _ in 0..3 {
            db.crash();
            method.recover(&mut db).unwrap();
            assert_eq!(db.volatile_theory_state(), once);
        }
    }

    #[test]
    fn fuzzy_checkpoint_feeds_the_parallel_scheduler() {
        // The tentpole path: online fuzzy checkpoints during normal
        // operation, then a DPT-fed partitioned restart that must match
        // the sequential checkpoint-aware scan exactly — same state,
        // same semantic stats — at every thread count.
        let ops = PageWorkloadSpec {
            n_ops: 40,
            n_pages: 6,
            ..Default::default()
        }
        .generate(21);
        let method = ParallelOnline { threads: 4 };
        let build = || {
            let mut db = Db::new(Geometry::default());
            let mut rng = StdRng::seed_from_u64(9);
            for (i, op) in ops.iter().enumerate() {
                method.execute(&mut db, op).unwrap();
                db.chaos_flush(&mut rng, 0.5, 0.3).unwrap();
                if (i + 1) % 11 == 0 {
                    method.checkpoint(&mut db).unwrap();
                }
            }
            db.log.flush_all();
            db.crash();
            db
        };
        let mut serial_db = build();
        let serial = Generalized.recover(&mut serial_db).unwrap();
        assert!(serial.checkpoint_lsn.is_some());
        for threads in [1, 2, 4, 8] {
            let mut par_db = build();
            let parallel = recover_physiological_parallel(&mut par_db, threads).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
            assert_eq!(
                par_db.volatile_theory_state(),
                serial_db.volatile_theory_state(),
                "threads={threads}"
            );
            assert_eq!(parallel.checkpoint_lsn, serial.checkpoint_lsn);
            // The scan covers the checkpoint record itself (redo_start
            // ≤ checkpoint LSN), recognizes it, and never routes it.
            assert!(
                parallel.checkpoint_records >= 1,
                "checkpoint records must be counted, not routed: {parallel:?}"
            );
        }
    }

    #[test]
    fn parallel_restart_is_idempotent_across_fuzzy_checkpoints() {
        let ops = PageWorkloadSpec {
            n_ops: 30,
            n_pages: 5,
            ..Default::default()
        }
        .generate(22);
        let method = ParallelOnline { threads: 3 };
        let mut db = Db::new(Geometry::default());
        let mut rng = StdRng::seed_from_u64(17);
        for (i, op) in ops.iter().enumerate() {
            method.execute(&mut db, op).unwrap();
            db.chaos_flush(&mut rng, 0.6, 0.3).unwrap();
            if (i + 1) % 7 == 0 {
                method.checkpoint(&mut db).unwrap();
            }
        }
        db.log.flush_all();
        db.crash();
        method.recover(&mut db).unwrap();
        let once = db.volatile_theory_state();
        for _ in 0..3 {
            db.crash();
            method.recover(&mut db).unwrap();
            assert_eq!(db.volatile_theory_state(), once);
        }
    }

    #[test]
    fn physical_fuzzy_checkpoints_match_serial_recovery() {
        // ParallelPhysical now checkpoints fuzzily: the parallel path
        // routes by the DPT (dropping provably-installed fragments),
        // the serial path blindly re-applies them; both must rebuild
        // the identical state.
        let ops = PageWorkloadSpec {
            n_ops: 30,
            n_pages: 6,
            blind_fraction: 1.0,
            cross_page_fraction: 0.4,
            multi_page_fraction: 0.4,
            ..Default::default()
        }
        .generate(15);
        let method = ParallelPhysical { threads: 3 };
        let build = || {
            let mut db = Db::new(Geometry::default());
            let mut rng = StdRng::seed_from_u64(4);
            for (i, op) in ops.iter().enumerate() {
                method.execute(&mut db, op).unwrap();
                db.chaos_flush(&mut rng, 0.6, 0.4).unwrap();
                if (i + 1) % 9 == 0 {
                    method.checkpoint(&mut db).unwrap();
                }
            }
            db.log.flush_all();
            db.crash();
            db
        };
        let mut serial_db = build();
        let serial = Physical.recover(&mut serial_db).unwrap();
        assert!(serial.checkpoint_lsn.is_some());
        for threads in [1, 2, 4, 8] {
            let mut par_db = build();
            let parallel = recover_physical_parallel(&mut par_db, threads).unwrap();
            assert_eq!(
                par_db.volatile_theory_state(),
                serial_db.volatile_theory_state(),
                "threads={threads}"
            );
            // Everything serial replayed is either replayed by the
            // parallel path too or proven installed by the DPT.
            assert_eq!(
                parallel.replayed.len() + parallel.skipped.len(),
                serial.replayed.len(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn worker_panic_is_contained_as_an_error() {
        let ops = PageWorkloadSpec {
            n_ops: 10,
            n_pages: 3,
            ..Default::default()
        }
        .generate(23);
        let mut db = chaotic_crashed_db(&Physiological, &ops, 3);
        db.repair_after_crash();
        let result = pipeline_partitions(
            &db,
            Lsn(1),
            2,
            |rec: WalRecord<PageOpPayload>| {
                let PageOpPayload::Op(op) = rec.payload else {
                    return Ok((Vec::new(), Vec::new()));
                };
                Ok((
                    vec![(op.written_pages()[0], rec.lsn, op.id, op)],
                    Vec::new(),
                ))
            },
            |_image: &mut Page, _lsn, _op: &PageOp| panic!("injected worker failure"),
        );
        assert!(
            matches!(result, Err(SimError::RecoveryWorkerPanic)),
            "a panicking worker must surface as a recovery error"
        );
    }

    #[test]
    fn missing_start_image_is_a_structured_error() {
        let (tx, rx) = mpsc::channel();
        tx.send(vec![WorkItem {
            page: PageId(3),
            lsn: Lsn(1),
            op_id: 0,
            payload: (),
            start: None,
        }])
        .unwrap();
        drop(tx);
        let apply = |_: &mut Page, _: Lsn, _: &()| true;
        assert!(
            matches!(redo_worker(rx, &apply), Err(SimError::MissingStartImage(p)) if p == PageId(3)),
            "a page routed without its start image must error, not panic"
        );
    }

    #[test]
    fn checkpoint_bounds_the_parallel_scan() {
        let ops = PageWorkloadSpec {
            n_ops: 16,
            n_pages: 4,
            ..Default::default()
        }
        .generate(14);
        let method = ParallelPhysiological { threads: 2 };
        let mut db = Db::new(Geometry::default());
        for op in &ops[..10] {
            method.execute(&mut db, op).unwrap();
        }
        method.checkpoint(&mut db).unwrap();
        for op in &ops[10..] {
            method.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        db.crash();
        let stats = method.recover(&mut db).unwrap();
        assert_eq!(stats.scanned, 6);
        assert_eq!(stats.replay_count() + stats.skipped.len(), 6);
        // The seek index carried the scan past the checkpointed prefix:
        // only the post-checkpoint suffix was decoded.
        assert!(
            stats.records_decoded <= 6,
            "checkpoint must bound decode work: {stats:?}"
        );
    }
}
