//! Generalized recovery with *online* fuzzy checkpoints and log
//! truncation — the sequential face of the concurrent checkpoint daemon
//! ([`crate::concurrent::SharedDb::checkpoint_tick`]).
//!
//! [`crate::generalized::Generalized`]'s heavyweight checkpoint flushes
//! every dirty page before writing its record — simple, but it stalls
//! normal operation for the whole flush storm. The online discipline
//! checkpoints *fuzzily*: snapshot the buffer pool's dirty-page table
//! with per-page recLSNs, append a
//! [`PageOpPayload::FuzzyCheckpoint`] record carrying the snapshot and
//! its precomputed redo-start LSN (the minimum recLSN — every update
//! below it is installed), and publish the checkpoint by atomically
//! moving the disk master pointer. Nothing is flushed; the page-LSN
//! redo tests make scanning from the redo-start exact.
//!
//! Publication is a three-step protocol, and each step is a faultable
//! crash point ([`redo_sim::fault`]):
//!
//! 1. **Force** the checkpoint record through the log. A torn or
//!    suppressed flush leaves `stable_lsn` below the record — the
//!    attempt is *abandoned*: the previous checkpoint stays in force
//!    and recovery falls back to it.
//! 2. **Swing** the master pointer to the record's LSN. The write is
//!    a single faultable atomic act; if it is suppressed the master
//!    still names the previous checkpoint — abandoned again, and the
//!    now-orphaned checkpoint record is harmlessly skipped by the
//!    redo scan (it is not an operation).
//! 3. Only after *verifying* both steps landed does the method
//!    **truncate** the stable-log prefix below the redo-start
//!    ([`redo_sim::wal::ShardedLog::archive_prefix`]): every record
//!    there is applied and its page durably installed, so no future
//!    recovery can need it. Truncating any earlier would be unsound —
//!    a crash before publication must still be able to recover from
//!    the previous checkpoint, whose scan may start inside the
//!    would-be-truncated prefix.
//!
//! Execution and recovery are exactly [`Generalized`]'s —
//! [`Generalized::analyze`] already dispatches on the record the
//! master points at.

use redo_sim::db::Db;
use redo_sim::SimResult;
use redo_theory::log::Lsn;
use redo_workload::pages::PageOp;

use crate::generalized::Generalized;
use crate::oprecord::PageOpPayload;
use crate::{RecoveryMethod, RecoveryStats};

/// Generalized LSN-based recovery whose checkpoints are online fuzzy
/// snapshots with log truncation.
#[derive(Clone, Copy, Debug, Default)]
pub struct GeneralizedOnline;

impl GeneralizedOnline {
    /// One online checkpoint attempt. Returns the published checkpoint
    /// LSN, or `None` if the attempt was abandoned (the record never
    /// became durable, or the pointer swing did not land — both happen
    /// under fault injection); an abandoned attempt publishes nothing
    /// and truncates nothing.
    ///
    /// # Errors
    ///
    /// Substrate errors. (Fault suppression is not an error — it
    /// surfaces as an abandoned attempt.)
    pub fn checkpoint_online(db: &mut Db<PageOpPayload>) -> SimResult<Option<Lsn>> {
        let dirty = db.pool.dirty_page_table();
        let ck_expected = Lsn(db.log.last_lsn().0 + 1);
        // No dirty pages: everything logged so far is installed, and the
        // scan need only start at the checkpoint record itself.
        let redo_start = dirty
            .iter()
            .map(|&(_, rec)| rec)
            .min()
            .unwrap_or(ck_expected);
        let ck = db
            .log
            .append(PageOpPayload::FuzzyCheckpoint { dirty, redo_start })?;
        debug_assert_eq!(ck, ck_expected);
        db.log.flush_all();
        if db.log.stable_lsn() < ck {
            return Ok(None);
        }
        db.disk.set_master(ck)?;
        if db.disk.master() != ck {
            return Ok(None);
        }
        db.log.archive_prefix(redo_start)?;
        Ok(Some(ck))
    }
}

impl RecoveryMethod for GeneralizedOnline {
    type Payload = PageOpPayload;

    fn name(&self) -> &'static str {
        "generalized-online"
    }

    fn execute(&self, db: &mut Db<PageOpPayload>, op: &PageOp) -> SimResult<Lsn> {
        Generalized.execute(db, op)
    }

    fn checkpoint(&self, db: &mut Db<PageOpPayload>) -> SimResult<()> {
        Self::checkpoint_online(db).map(|_| ())
    }

    fn recover(&self, db: &mut Db<PageOpPayload>) -> SimResult<RecoveryStats> {
        Generalized.recover(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use redo_sim::db::Geometry;
    use redo_sim::fault::{FaultKind, FaultPlan};
    use redo_workload::pages::{Cell, PageWorkloadSpec};

    fn workload(n: usize, seed: u64) -> Vec<PageOp> {
        PageWorkloadSpec {
            n_ops: n,
            n_pages: 5,
            cross_page_fraction: 0.4,
            multi_page_fraction: 0.2,
            blind_fraction: 0.1,
            ..Default::default()
        }
        .generate(seed)
    }

    fn model(ops: &[PageOp]) -> std::collections::BTreeMap<Cell, u64> {
        let mut cells = std::collections::BTreeMap::new();
        for op in ops {
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
        }
        cells
    }

    #[test]
    fn online_checkpoints_truncate_and_recover_exactly() {
        let ops = workload(40, 3);
        let mut db = Db::new(Geometry::default());
        let mut rng = StdRng::seed_from_u64(99);
        let mut published = 0u64;
        for (i, op) in ops.iter().enumerate() {
            GeneralizedOnline.execute(&mut db, op).unwrap();
            db.chaos_flush(&mut rng, 0.8, 0.5).unwrap();
            if (i + 1) % 8 == 0 {
                let ck = GeneralizedOnline::checkpoint_online(&mut db).unwrap();
                assert!(ck.is_some(), "no faults armed: publication must land");
                published += 1;
            }
        }
        assert_eq!(published, 5);
        db.log.flush_all();
        db.crash();
        let stats = GeneralizedOnline.recover(&mut db).unwrap();
        assert!(stats.checkpoint_lsn.is_some());
        for (c, v) in model(&ops) {
            assert_eq!(db.read_cell(c).unwrap(), v, "cell {c:?}");
        }
    }

    #[test]
    fn checkpoint_does_not_flush_pages() {
        let ops = workload(12, 7);
        let mut db = Db::new(Geometry::default());
        for op in &ops {
            GeneralizedOnline.execute(&mut db, op).unwrap();
        }
        let dirty_before = db.pool.dirty_pages();
        assert!(!dirty_before.is_empty());
        GeneralizedOnline::checkpoint_online(&mut db)
            .unwrap()
            .expect("published");
        assert_eq!(
            db.pool.dirty_pages(),
            dirty_before,
            "fuzzy checkpoints must not clean pages"
        );
    }

    #[test]
    fn clean_pool_checkpoint_truncates_everything_below_itself() {
        let ops = workload(10, 5);
        let mut db = Db::new(Geometry::default());
        for op in &ops {
            GeneralizedOnline.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        db.pool
            .flush_all(&mut db.disk, db.log.stable_lsn())
            .unwrap();
        let ck = GeneralizedOnline::checkpoint_online(&mut db)
            .unwrap()
            .expect("published");
        assert_eq!(db.log.first_stable(), ck, "only the record itself remains");
        db.crash();
        let stats = GeneralizedOnline.recover(&mut db).unwrap();
        assert_eq!(stats.scanned, 1, "the scan sees only the checkpoint record");
        for (c, v) in model(&ops) {
            assert_eq!(db.read_cell(c).unwrap(), v, "cell {c:?}");
        }
    }

    #[test]
    fn suppressed_pointer_swing_abandons_the_attempt() {
        let ops = workload(16, 11);
        let mut db = Db::new(Geometry::default());
        for op in &ops[..8] {
            GeneralizedOnline.execute(&mut db, op).unwrap();
        }
        let first = GeneralizedOnline::checkpoint_online(&mut db)
            .unwrap()
            .expect("published");
        let first_stable_then = db.log.first_stable();
        for op in &ops[8..] {
            GeneralizedOnline.execute(&mut db, op).unwrap();
        }
        // Pre-force the log so the checkpoint's own flush_all moves
        // exactly one record (the checkpoint record, event 1), then arm
        // a clean stop on event 2 — the master write: the record becomes
        // durable but its publication is suppressed.
        db.log.flush_all();
        db.arm_faults(FaultPlan {
            at: 2,
            kind: FaultKind::Clean,
        });
        let second = GeneralizedOnline::checkpoint_online(&mut db).unwrap();
        assert_eq!(second, None, "swing suppressed: attempt abandoned");
        assert_eq!(db.disk.master(), first, "previous checkpoint stands");
        assert_eq!(
            db.log.first_stable(),
            first_stable_then,
            "an abandoned attempt truncates nothing"
        );
        db.crash();
        db.repair_after_crash();
        let stats = GeneralizedOnline.recover(&mut db).unwrap();
        assert_eq!(stats.checkpoint_lsn, Some(first));
        for (c, v) in model(&ops) {
            assert_eq!(db.read_cell(c).unwrap(), v, "cell {c:?}");
        }
    }
}
