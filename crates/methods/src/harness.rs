//! The crash-injection harness: runs a workload under a recovery method
//! with randomized cache flushes, periodic checkpoints, and injected
//! crashes — verifying both *correctness* (recovery restores exactly the
//! durable prefix) and *theory conformance* (the recovery invariant held
//! at the instant of the crash).
//!
//! The conformance audit is the point of this whole reproduction: at
//! every crash we project the simulated disk into a theory-level
//! [`State`], project the durable operations into a theory-level
//! [`History`], take the realized redo set from the actual recovery run,
//! and check the paper's invariant — `operations(log) − redo_set` is an
//! installation-graph prefix explaining the state. Because page-op
//! semantics are bit-identical to their theory projections, the final
//! comparison is plain equality on states.

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_sim::backend::BackendKind;
use redo_sim::db::{Db, Geometry};
use redo_sim::fault::FaultPlan;
use redo_sim::SimError;
use redo_theory::conflict::ConflictGraph;
use redo_theory::graph::NodeSet;
use redo_theory::history::History;
use redo_theory::installation::InstallationGraph;
use redo_theory::invariant::recovery_invariant;
use redo_theory::log::Log;
use redo_theory::state::State;
use redo_theory::state_graph::StateGraph;
use redo_workload::pages::PageOp;

use crate::RecoveryMethod;

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Take a checkpoint after every `n` operations.
    pub checkpoint_every: Option<usize>,
    /// Crash (and recover) after every `n` operations.
    pub crash_every: Option<usize>,
    /// Background flush probabilities `(log, pages)` applied after each
    /// operation; page chaos is suppressed for methods that forbid it.
    pub chaos: Option<(f64, f64)>,
    /// RNG seed for the chaos schedule.
    pub seed: u64,
    /// Run the theory audit at every crash (quadratic-ish in history
    /// length; disable for large benchmark runs).
    pub audit: bool,
    /// Page geometry.
    pub slots_per_page: u16,
    /// Buffer pool capacity (`None` = unbounded).
    pub pool_capacity: Option<usize>,
    /// A crash-point fault to arm before the first operation: when it
    /// trips, the harness crashes the database at the next operation
    /// boundary (substrate errors in between are expected — the machine
    /// is dying) and verifies recovery as usual.
    pub fault: Option<FaultPlan>,
    /// Which stable-storage backend the run's disk and log live on:
    /// the in-memory simulation or real files in a fresh tempdir.
    pub backend: BackendKind,
    /// How many per-partition log shards the database's WAL is split
    /// into (a power of two; `1` is the classic single log). Sharding
    /// is an access-path change only — every verification in this
    /// harness is identical regardless of the count.
    pub log_shards: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            checkpoint_every: Some(10),
            crash_every: Some(16),
            chaos: Some((0.7, 0.3)),
            seed: 0,
            audit: true,
            slots_per_page: 8,
            pool_capacity: None,
            fault: None,
            backend: BackendKind::Mem,
            log_shards: 1,
        }
    }
}

/// What a harness run observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HarnessReport {
    /// Crashes injected.
    pub crashes: u64,
    /// Operations replayed across all recoveries.
    pub total_replayed: usize,
    /// Operations bypassed as installed across all recoveries.
    pub total_skipped: usize,
    /// Operations that survived to the end (durable at every crash they
    /// predated).
    pub survivors: usize,
    /// Operations lost to crashes (their log records never became
    /// durable).
    pub lost: usize,
    /// Theory audits performed (one per crash plus one final, when
    /// enabled).
    pub audits: usize,
    /// Total log bytes appended.
    pub log_bytes: u64,
    /// Total page writes to disk.
    pub page_writes: u64,
    /// Torn pages repaired from their pre-images across all crashes.
    pub torn_repairs: usize,
    /// Torn log-tail bytes discarded across all crashes.
    pub log_tail_dropped: usize,
    /// Stable-log bytes walked by recovery scans (headers of skipped
    /// frames plus full frames of decoded records).
    pub bytes_scanned: u64,
    /// Log records actually decoded by recovery scans — with a seek
    /// index this tracks the post-checkpoint suffix, not the whole log.
    pub records_decoded: usize,
    /// Recovery scans that entered the log through a seek-index jump.
    pub seek_hits: usize,
    /// Pages warmed by recovery's batched prefetch.
    pub pages_prefetched: usize,
    /// Group-commit log forces (coalesced stable appends) over the run.
    pub log_forces: u64,
}

/// Why a harness run failed.
#[derive(Clone, Debug)]
pub enum HarnessFailure {
    /// The substrate refused an operation.
    Sim(SimError),
    /// The recovery invariant did not hold at a crash.
    Invariant {
        /// Which crash (1-based).
        crash: u64,
        /// The violation, rendered.
        detail: String,
    },
    /// Recovery produced a state different from the durable prefix's
    /// final state.
    StateMismatch {
        /// Which crash (1-based), or `None` for the end-of-run check.
        crash: Option<u64>,
    },
    /// The harness itself failed an out-of-band I/O step (e.g. the media
    /// auditor deleting a page file behind the database's back).
    Io(String),
}

impl fmt::Display for HarnessFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessFailure::Sim(e) => write!(f, "substrate error: {e}"),
            HarnessFailure::Invariant { crash, detail } => {
                write!(f, "recovery invariant violated at crash {crash}: {detail}")
            }
            HarnessFailure::StateMismatch { crash: Some(c) } => {
                write!(f, "recovered state mismatches durable prefix at crash {c}")
            }
            HarnessFailure::StateMismatch { crash: None } => {
                write!(f, "final state mismatches surviving operations")
            }
            HarnessFailure::Io(detail) => write!(f, "harness i/o failed: {detail}"),
        }
    }
}

impl std::error::Error for HarnessFailure {}

impl From<SimError> for HarnessFailure {
    fn from(e: SimError) -> Self {
        HarnessFailure::Sim(e)
    }
}

struct TheoryView {
    history: History,
    cg: ConflictGraph,
    ig: InstallationGraph,
    sg: StateGraph,
    log: Log,
    position_of: BTreeMap<u32, usize>,
}

fn theory_view(committed: &[PageOp], slots_per_page: u16) -> TheoryView {
    let history = History::renumbering(
        committed
            .iter()
            .map(|op| op.to_operation(slots_per_page))
            .collect(),
    );
    let cg = ConflictGraph::generate(&history);
    let ig = InstallationGraph::from_conflict(&cg);
    let sg = StateGraph::from_conflict(&history, &cg, &State::zeroed());
    let log = Log::from_history(&history);
    let position_of = committed
        .iter()
        .enumerate()
        .map(|(i, op)| (op.id, i))
        .collect();
    TheoryView {
        history,
        cg,
        ig,
        sg,
        log,
        position_of,
    }
}

/// Runs `ops` under `method` per `cfg`. See the module docs for what is
/// verified.
///
/// # Errors
///
/// [`HarnessFailure`] describing the first violation found.
pub fn run<M: RecoveryMethod>(
    method: &M,
    ops: &[PageOp],
    cfg: &HarnessConfig,
) -> Result<HarnessReport, HarnessFailure> {
    let mut db: Db<M::Payload> = Db::on_sharded(
        cfg.backend,
        Geometry {
            slots_per_page: cfg.slots_per_page,
        },
        cfg.pool_capacity,
        cfg.log_shards,
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = HarnessReport::default();
    // Operations whose effects the system has promised to keep: durable
    // at every crash that has happened since they ran.
    let mut committed: Vec<(PageOp, redo_theory::log::Lsn)> = Vec::new();

    if let Some(plan) = cfg.fault {
        db.arm_faults(plan);
    }

    for (i, op) in ops.iter().enumerate() {
        // Once the armed fault trips, the machine is dying: substrate
        // errors are expected (post-trip I/O is suppressed, so e.g. a
        // checkpoint's page flush sees a WAL violation) and the next
        // operation boundary crashes for real. An error WITHOUT a trip
        // is a genuine failure.
        match method.execute(&mut db, op) {
            Ok(lsn) => committed.push((op.clone(), lsn)),
            Err(_) if db.fault_tripped() => {}
            Err(e) => return Err(e.into()),
        }
        if let Some((log_p, page_p)) = cfg.chaos {
            let page_p = if method.allows_page_chaos() {
                page_p
            } else {
                0.0
            };
            match db.chaos_flush(&mut rng, log_p, page_p) {
                Ok(()) => {}
                Err(_) if db.fault_tripped() => {}
                Err(e) => return Err(e.into()),
            }
        }
        if let Some(k) = cfg.checkpoint_every {
            if (i + 1) % k == 0 {
                match method.checkpoint(&mut db) {
                    Ok(()) => {}
                    Err(_) if db.fault_tripped() => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        let scheduled_crash = cfg.crash_every.is_some_and(|k| (i + 1) % k == 0);
        if db.fault_tripped() || scheduled_crash {
            crash_and_verify(method, &mut db, &mut committed, cfg, &mut report)?;
        }
    }

    // End-of-run verification against the surviving operations.
    let survivors: Vec<PageOp> = committed.iter().map(|(op, _)| op.clone()).collect();
    report.survivors = survivors.len();
    report.lost = ops.len() - survivors.len();
    let view = theory_view(&survivors, cfg.slots_per_page);
    if db.volatile_theory_state() != view.sg.final_state() {
        return Err(HarnessFailure::StateMismatch { crash: None });
    }
    if cfg.audit {
        report.audits += 1;
    }
    report.log_bytes = db.log.appended_bytes();
    report.page_writes = db.disk.page_writes();
    report.log_forces = db.log.forces();
    Ok(report)
}

fn crash_and_verify<M: RecoveryMethod>(
    method: &M,
    db: &mut Db<M::Payload>,
    committed: &mut Vec<(PageOp, redo_theory::log::Lsn)>,
    cfg: &HarnessConfig,
    report: &mut HarnessReport,
) -> Result<(), HarnessFailure> {
    db.crash();
    report.crashes += 1;
    // Media repair precedes everything: a torn page projects garbage
    // and a torn log tail reads as corruption, so the theory snapshot
    // below is taken from the repaired (= explainable) image — exactly
    // the state recovery itself starts from.
    let repair = db.repair_after_crash();
    report.torn_repairs += repair.torn_pages.len();
    report.log_tail_dropped += repair.log_bytes_dropped;
    let stable = db.log.stable_lsn();
    let pre_crash_disk = db.stable_theory_state();
    // Durable prefix: operations whose log records reached the stable
    // log. Everything after is lost, by design of redo-only recovery.
    committed.retain(|(_, lsn)| *lsn <= stable);
    let stats = method.recover(db)?;
    report.total_replayed += stats.replay_count();
    report.total_skipped += stats.skipped.len();
    report.bytes_scanned += stats.bytes_scanned;
    report.records_decoded += stats.records_decoded;
    report.seek_hits += stats.seek_hits;
    report.pages_prefetched += stats.pages_prefetched;

    let durable: Vec<PageOp> = committed.iter().map(|(op, _)| op.clone()).collect();
    let view = theory_view(&durable, cfg.slots_per_page);

    // Correctness: the recovered (volatile) state is the durable
    // prefix's final state, numerically.
    if db.volatile_theory_state() != view.sg.final_state() {
        return Err(HarnessFailure::StateMismatch {
            crash: Some(report.crashes),
        });
    }

    if cfg.audit {
        // Theory conformance: the realized redo set satisfied the
        // recovery invariant against the pre-recovery disk state.
        let mut redo_set = NodeSet::new(view.history.len());
        for id in &stats.replayed {
            match view.position_of.get(id) {
                Some(&pos) => {
                    redo_set.insert(pos);
                }
                None => {
                    return Err(HarnessFailure::Invariant {
                        crash: report.crashes,
                        detail: format!("recovery replayed non-durable operation {id}"),
                    })
                }
            }
        }
        if let Err(v) = recovery_invariant(
            &view.cg,
            &view.ig,
            &view.sg,
            &view.log,
            &redo_set,
            &pre_crash_disk,
        ) {
            return Err(HarnessFailure::Invariant {
                crash: report.crashes,
                detail: v.to_string(),
            });
        }
        report.audits += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalized::Generalized;
    use crate::logical::Logical;
    use crate::physical::Physical;
    use crate::physiological::Physiological;
    use redo_workload::pages::PageWorkloadSpec;

    fn phys_workload(seed: u64) -> Vec<PageOp> {
        PageWorkloadSpec {
            n_ops: 60,
            n_pages: 6,
            blind_fraction: 1.0,
            ..Default::default()
        }
        .generate(seed)
    }

    fn physio_workload(seed: u64) -> Vec<PageOp> {
        PageWorkloadSpec {
            n_ops: 60,
            n_pages: 6,
            ..Default::default()
        }
        .generate(seed)
    }

    fn general_workload(seed: u64) -> Vec<PageOp> {
        PageWorkloadSpec {
            n_ops: 60,
            n_pages: 6,
            cross_page_fraction: 0.5,
            blind_fraction: 0.1,
            ..Default::default()
        }
        .generate(seed)
    }

    #[test]
    fn physical_method_passes_audit() {
        for seed in 0..3 {
            let cfg = HarnessConfig {
                seed,
                ..Default::default()
            };
            let report = run(&Physical, &phys_workload(seed), &cfg).unwrap();
            assert!(report.crashes >= 3);
            assert!(report.audits > 0);
        }
    }

    #[test]
    fn physiological_method_passes_audit() {
        for seed in 0..3 {
            let cfg = HarnessConfig {
                seed,
                ..Default::default()
            };
            let report = run(&Physiological, &physio_workload(seed), &cfg).unwrap();
            assert!(report.crashes >= 3);
        }
    }

    #[test]
    fn generalized_method_passes_audit() {
        for seed in 0..3 {
            let cfg = HarnessConfig {
                seed,
                ..Default::default()
            };
            let report = run(&Generalized, &general_workload(seed), &cfg).unwrap();
            assert!(report.crashes >= 3);
        }
    }

    #[test]
    fn logical_method_passes_audit() {
        for seed in 0..3 {
            let cfg = HarnessConfig {
                seed,
                ..Default::default()
            };
            let report = run(&Logical, &general_workload(seed), &cfg).unwrap();
            assert!(report.crashes >= 3);
        }
    }

    #[test]
    fn page_lsn_test_skips_installed_work() {
        // With aggressive page flushing, physiological recovery should
        // skip a substantial share of records; physical replays all.
        let cfg = HarnessConfig {
            chaos: Some((1.0, 0.9)),
            checkpoint_every: None,
            ..Default::default()
        };
        let physio = run(&Physiological, &physio_workload(1), &cfg).unwrap();
        assert!(
            physio.total_skipped > physio.total_replayed,
            "{physio:?}: flushed pages should be bypassed"
        );
        let phys = run(&Physical, &phys_workload(1), &cfg).unwrap();
        assert_eq!(
            phys.total_skipped, 0,
            "physical replays everything since checkpoint"
        );
    }

    #[test]
    fn without_log_flushes_everything_is_lost() {
        let cfg = HarnessConfig {
            chaos: None,
            checkpoint_every: None,
            crash_every: Some(40),
            ..Default::default()
        };
        // 60 ops, crash after op 40 with a never-flushed log: the first
        // 40 vanish entirely; ops 41..60 survive only in cache.
        let report = run(&Physiological, &physio_workload(2), &cfg).unwrap();
        assert_eq!(
            report.survivors, 20,
            "ops after the last crash survive in cache"
        );
        assert_eq!(report.lost, 40);
    }

    #[test]
    fn armed_faults_trip_and_recovery_still_passes_audit() {
        // Sweep the crash point across the run: wherever the fault
        // lands — torn page write, torn log flush, or a clean stop —
        // recovery must restore the durable prefix and the invariant
        // must hold. Across the sweep both damage kinds must actually
        // occur (the sweep is vacuous if every fault degrades).
        use redo_sim::fault::FaultKind;
        let mut torn = 0usize;
        let mut dropped = 0usize;
        for at in 1..=24u64 {
            let cfg = HarnessConfig {
                chaos: Some((0.8, 0.6)),
                fault: Some(FaultPlan {
                    at,
                    kind: FaultKind::TornWrite { sectors: 1 },
                }),
                ..Default::default()
            };
            let report = run(&Physiological, &physio_workload(5), &cfg).unwrap();
            torn += report.torn_repairs;
            let cfg = HarnessConfig {
                chaos: Some((0.8, 0.6)),
                fault: Some(FaultPlan {
                    at,
                    kind: FaultKind::TornFlush { bytes: 5 },
                }),
                ..Default::default()
            };
            let report = run(&Physiological, &physio_workload(5), &cfg).unwrap();
            dropped += report.log_tail_dropped;
        }
        assert!(torn > 0, "no torn write ever landed in the sweep");
        assert!(dropped > 0, "no torn flush ever landed in the sweep");
    }

    #[test]
    fn scan_telemetry_reaches_the_report() {
        let cfg = HarnessConfig {
            chaos: Some((1.0, 0.3)),
            checkpoint_every: Some(8),
            crash_every: Some(13),
            ..Default::default()
        };
        let report = run(&Physiological, &physio_workload(4), &cfg).unwrap();
        assert!(report.crashes >= 3);
        assert!(report.bytes_scanned > 0, "{report:?}");
        assert!(report.log_forces > 0, "{report:?}");
        // Recovery decodes exactly what it scans: every replayed or
        // skipped operation was decoded, plus only checkpoint records.
        assert!(
            report.records_decoded >= report.total_replayed + report.total_skipped,
            "{report:?}"
        );
        // Checkpoints advance the master, and the seek index lets the
        // scan jump past the checkpointed prefix at least once.
        assert!(report.seek_hits > 0, "{report:?}");
        assert!(report.pages_prefetched > 0, "{report:?}");
    }

    #[test]
    fn checkpoints_reduce_replay_volume() {
        let base = HarnessConfig {
            chaos: Some((1.0, 0.0)),
            crash_every: Some(20),
            checkpoint_every: None,
            ..Default::default()
        };
        let no_ckpt = run(&Physical, &phys_workload(3), &base).unwrap();
        let with_ckpt = run(
            &Physical,
            &phys_workload(3),
            &HarnessConfig {
                checkpoint_every: Some(5),
                ..base
            },
        )
        .unwrap();
        assert!(
            with_ckpt.total_replayed < no_ckpt.total_replayed,
            "{} !< {}",
            with_ckpt.total_replayed,
            no_ckpt.total_replayed
        );
    }
}
