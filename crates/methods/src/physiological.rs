//! Physiological recovery (§6.3).
//!
//! "A physiological operation reads and writes exactly one page. It
//! identifies the page by a 'physical' page identifier, but performs a
//! 'logical' operation on that page. [...] Each page of the system state
//! is tagged with the LSN of the last operation that updated it."
//!
//! The redo test compares the page's LSN with the record's: `page LSN ≥
//! record LSN` means the operation's effects are already on the page
//! (installed), so it is bypassed. Flushing a page to disk therefore
//! *atomically* installs every operation accumulated on it and removes
//! them from the future redo set — the write-graph collapse of a minimal
//! node into the stable-state node, with the page LSN carrying the redo
//! information. Since operations touch a single page, all uninstalled
//! write-graph nodes are minimal and the cache may flush pages in any
//! order.

use std::collections::BTreeSet;

use redo_sim::db::Db;
use redo_sim::wal::ShardedScanner;
use redo_sim::{SimError, SimResult};
use redo_theory::log::Lsn;
use redo_workload::pages::{PageId, PageOp};

use crate::oprecord::PageOpPayload;
use crate::{RecoveryMethod, RecoveryStats, SCAN_BATCH};

/// The physiological recovery method.
#[derive(Clone, Copy, Debug, Default)]
pub struct Physiological;

/// Validates the §6.3 shape: reads and writes confined to one page.
fn check_shape(op: &PageOp) -> SimResult<()> {
    let written = op.written_pages();
    if written.len() != 1 {
        return Err(SimError::MethodViolation(
            "physiological operations write exactly one page",
        ));
    }
    if op.read_pages().iter().any(|p| *p != written[0]) {
        return Err(SimError::MethodViolation(
            "physiological operations read only the page they write",
        ));
    }
    Ok(())
}

impl RecoveryMethod for Physiological {
    type Payload = PageOpPayload;

    fn name(&self) -> &'static str {
        "physiological"
    }

    fn execute(&self, db: &mut Db<PageOpPayload>, op: &PageOp) -> SimResult<Lsn> {
        check_shape(op)?;
        let lsn = db.log.append(PageOpPayload::Op(op.clone()))?;
        db.apply_page_op(op, lsn)?;
        Ok(lsn)
    }

    fn checkpoint(&self, db: &mut Db<PageOpPayload>) -> SimResult<()> {
        // A heavyweight (flush-everything) checkpoint: afterwards every
        // logged operation is installed, so recovery may start at the
        // checkpoint record.
        db.log.flush_all();
        let stable = db.log.stable_lsn();
        db.pool.flush_all(&mut db.disk, stable)?;
        let ck = db.log.append(PageOpPayload::Checkpoint)?;
        db.log.flush_all();
        db.disk.set_master(ck)?;
        Ok(())
    }

    fn recover(&self, db: &mut Db<PageOpPayload>) -> SimResult<RecoveryStats> {
        // Recovery's first act: repair crash damage the media can
        // detect (torn pages, a torn log-tail fragment).
        db.repair_after_crash();
        let master = db.disk.master();
        let mut stats = RecoveryStats::default();
        // Streaming scan: seek past the checkpointed prefix (never
        // decoding it) and replay batch by batch, prefetching the pages
        // the upcoming records name.
        let mut scanner = ShardedScanner::seek(&db.log, master.next());
        loop {
            let batch = scanner.next_batch(&db.log, SCAN_BATCH)?;
            if batch.is_empty() {
                break;
            }
            let pages: BTreeSet<PageId> = batch
                .iter()
                .filter_map(|rec| match &rec.payload {
                    PageOpPayload::Op(op) => Some(op.written_pages()[0]),
                    PageOpPayload::Checkpoint
                    | PageOpPayload::FuzzyCheckpoint { .. }
                    | PageOpPayload::DeltaCheckpoint { .. } => None,
                })
                .collect();
            let pages: Vec<PageId> = pages.into_iter().collect();
            stats.pages_prefetched += db.pool.prefetch(
                &mut db.disk,
                &pages,
                db.geometry.slots_per_page,
                db.log.stable_lsn(),
            );
            for rec in batch {
                stats.scanned += 1;
                let PageOpPayload::Op(op) = rec.payload else {
                    continue;
                };
                let page = op.written_pages()[0];
                let stable = db.log.stable_lsn();
                let cached =
                    db.pool
                        .fetch(&mut db.disk, page, db.geometry.slots_per_page, stable)?;
                if cached.lsn() < rec.lsn {
                    // redo test fired: the page misses this update. Reads see
                    // the page with every earlier operation already applied
                    // (replayed or installed), so the operation is applicable.
                    db.apply_page_op(&op, rec.lsn)?;
                    stats.replayed.push(op.id);
                } else {
                    stats.skipped.push(op.id);
                }
            }
        }
        stats.note_scan(scanner.stats(), db.log.forces());
        Ok(stats)
    }

    fn parallel_restart(
        &self,
        db: &mut Db<PageOpPayload>,
        threads: usize,
    ) -> Option<SimResult<RecoveryStats>> {
        Some(crate::parallel::recover_physiological_parallel(db, threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use redo_sim::db::Geometry;
    use redo_workload::pages::{Cell, PageId, PageOpKind, PageWorkloadSpec, SlotId};

    fn workload(n: usize, seed: u64) -> Vec<PageOp> {
        PageWorkloadSpec {
            n_ops: n,
            n_pages: 4,
            ..Default::default()
        }
        .generate(seed)
    }

    fn model(ops: &[PageOp]) -> std::collections::BTreeMap<Cell, u64> {
        let mut cells = std::collections::BTreeMap::new();
        for op in ops {
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
        }
        cells
    }

    fn assert_matches_model(db: &mut Db<PageOpPayload>, ops: &[PageOp]) {
        for (c, v) in model(ops) {
            assert_eq!(db.read_cell(c).unwrap(), v, "cell {c:?}");
        }
    }

    #[test]
    fn rejects_cross_page_reads() {
        let op = PageOp {
            id: 0,
            kind: PageOpKind::Generalized,
            reads: vec![Cell {
                page: PageId(1),
                slot: SlotId(0),
            }],
            writes: vec![Cell {
                page: PageId(0),
                slot: SlotId(0),
            }],
            f_seed: 1,
        };
        let mut db = Db::new(Geometry::default());
        assert!(matches!(
            Physiological.execute(&mut db, &op),
            Err(SimError::MethodViolation(_))
        ));
    }

    #[test]
    fn page_lsn_test_skips_flushed_pages() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(12, 1);
        for op in &ops {
            Physiological.execute(&mut db, op).unwrap();
        }
        db.flush_everything().unwrap(); // all installed
        db.crash();
        let stats = Physiological.recover(&mut db).unwrap();
        assert_eq!(
            stats.replay_count(),
            0,
            "everything installed, nothing replays"
        );
        assert_eq!(stats.skipped.len(), 12);
        assert_matches_model(&mut db, &ops);
    }

    #[test]
    fn partial_flush_replays_only_missing_updates() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(20, 2);
        let mut rng = StdRng::seed_from_u64(9);
        for op in &ops {
            Physiological.execute(&mut db, op).unwrap();
            db.chaos_flush(&mut rng, 0.7, 0.4).unwrap();
        }
        db.log.flush_all();
        db.crash();
        let stats = Physiological.recover(&mut db).unwrap();
        assert_eq!(stats.replay_count() + stats.skipped.len(), 20);
        assert_matches_model(&mut db, &ops);
    }

    #[test]
    fn unflushed_log_tail_is_lost() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(10, 3);
        for op in &ops[..6] {
            Physiological.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        for op in &ops[6..] {
            Physiological.execute(&mut db, op).unwrap();
        }
        db.crash();
        Physiological.recover(&mut db).unwrap();
        assert_matches_model(&mut db, &ops[..6]);
    }

    #[test]
    fn checkpoint_bounds_the_scan() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(16, 4);
        for op in &ops[..10] {
            Physiological.execute(&mut db, op).unwrap();
        }
        Physiological.checkpoint(&mut db).unwrap();
        for op in &ops[10..] {
            Physiological.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        db.crash();
        let stats = Physiological.recover(&mut db).unwrap();
        assert_eq!(stats.scanned, 6);
        assert_matches_model(&mut db, &ops);
    }

    #[test]
    fn repeated_crashes_converge() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(15, 5);
        for op in &ops {
            Physiological.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        for _ in 0..3 {
            db.crash();
            Physiological.recover(&mut db).unwrap();
            assert_matches_model(&mut db, &ops);
        }
    }
}
