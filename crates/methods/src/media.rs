//! Media recovery: rebuild pages lost to media failure from
//! `archive ∥ live` plus the last checkpoint image.
//!
//! The crash model so far assumed the page files survive every failure
//! — only *volatile* state and in-flight transfers were at risk. Media
//! failure breaks that assumption: a page's durable copy is destroyed
//! outright ([`redo_sim::disk::Disk::destroy_page`], or a page file
//! deleted out-of-band), and reads answer
//! [`SimError::MediaLoss`](redo_sim::SimError::MediaLoss) instead of
//! data. No page-LSN redo test can help — there is no page to test.
//!
//! What makes the loss recoverable is the archive tier
//! ([`redo_sim::wal::ShardedLog::archive_prefix`] moves drained frames,
//! it never destroys them): per shard, `archive ∥ live` is the complete
//! frame history from LSN 1, and
//! [`ShardedLog::pit_records`](redo_sim::wal::ShardedLog::pit_records)
//! merges it in LSN order. Replaying that merged history *from genesis*
//! into a scratch map reproduces every page's exact content at the
//! stable LSN — the paper's installation-graph reading: the full stable
//! log is an installation sequence for the maximal explainable state,
//! so a fresh replay of all of it lands every page at its final
//! position. The rebuild then installs the scratch images for the lost
//! pages.
//!
//! Installing a *final* image for page `x` is ahead of where the redo
//! scan may need `x` mid-replay: a generalized operation `O` that read
//! `x` and wrote `y` replays against the recovery cache's fetch of `x`,
//! and if `y` is stale the fetch must see `x` as of `O`'s LSN, not the
//! final value. The fix is the **transitive closure**: any operation
//! whose read-or-write footprint meets the rebuild set has its stale
//! written pages pulled in too (whole write sets at a time, preserving
//! install-atomicity), to fixpoint. Every record touching the closure is
//! then *skipped* by the redo test — its written pages already carry
//! their final images — so no replay ever reads a rebuilt page at the
//! wrong moment. Closure images are exact, so over-approximating is
//! always sound.
//!
//! Crash-safety: each image lands through the ordinary faultable
//! [`Disk::write_page`](redo_sim::disk::Disk::write_page). A crash
//! mid-rebuild leaves the uninstalled pages still marked lost — the
//! mark is durable media state — and the next recovery recomputes the
//! same images and finishes the job: the rebuild is idempotent.

use std::collections::{BTreeMap, BTreeSet};

use redo_sim::db::Db;
use redo_sim::page::Page;
use redo_sim::SimResult;
use redo_theory::log::Lsn;
use redo_workload::pages::{PageId, PageOp};

use crate::generalized::Generalized;
use crate::ondemand::OnDemand;
use crate::online::GeneralizedOnline;
use crate::oprecord::PageOpPayload;
use crate::{RecoveryMethod, RecoveryStats};

/// Generalized-LSN recovery (online fuzzy checkpoints, archive-tier
/// truncation) that additionally survives **media failure**: restart
/// detects destroyed page files and rebuilds them from
/// `archive ∥ live` before running the ordinary redo scan.
#[derive(Clone, Copy, Debug, Default)]
pub struct Media;

/// Replays the full merged history `records` from genesis into a
/// scratch page map: reads come from the scratch pages themselves,
/// writes land with the record's LSN. On return every written page
/// holds its exact content as of the last record — for
/// `pit_records(stable)` input, its content at the stable LSN.
fn scratch_replay(records: &[(Lsn, PageOp)], slots_per_page: u16) -> BTreeMap<PageId, Page> {
    let mut scratch: BTreeMap<PageId, Page> = BTreeMap::new();
    for (lsn, op) in records {
        let read_values: Vec<u64> = op
            .reads
            .iter()
            .map(|cell| {
                scratch
                    .get(&cell.page)
                    .map_or(0, |page| page.get(cell.slot))
            })
            .collect();
        for &cell in &op.writes {
            let v = op.output(cell, &read_values);
            let page = scratch
                .entry(cell.page)
                .or_insert_with(|| Page::new(slots_per_page));
            page.set(cell.slot, v);
            page.set_lsn(*lsn);
        }
    }
    scratch
}

/// Computes the rebuild plan for the database's media-lost pages: the
/// transitive closure of the lost set under shared-record footprints,
/// mapped to the exact page images a genesis replay of
/// `pit_records(stable)` produces. Empty when nothing is lost.
///
/// The closure rule: any operation whose read-or-write footprint meets
/// the set contributes every written page the disk has not installed
/// (`page_lsn < record LSN`) — whole write sets at a time, so a
/// part-installed atomic group can never result from the rebuild — to
/// fixpoint. A lost page with no logged history maps to a freshly
/// formatted page: installing it is what clears the loss honestly.
///
/// Pure analysis: nothing is written. Run it after
/// [`Db::repair_after_crash`] so torn pages have been restored to their
/// journaled pre-images and `page_lsn` answers from honest content.
///
/// # Errors
///
/// Log or archive corruption while merging `archive ∥ live`.
pub fn rebuild_images(db: &Db<PageOpPayload>) -> SimResult<BTreeMap<PageId, Page>> {
    let lost = db.disk.lost_pages();
    if lost.is_empty() {
        return Ok(BTreeMap::new());
    }
    let stable = db.log.stable_lsn();
    let records: Vec<(Lsn, PageOp)> = db
        .log
        .pit_records(stable)?
        .into_iter()
        .filter_map(|rec| match rec.payload {
            PageOpPayload::Op(op) => Some((rec.lsn, op)),
            PageOpPayload::Checkpoint
            | PageOpPayload::FuzzyCheckpoint { .. }
            | PageOpPayload::DeltaCheckpoint { .. } => None,
        })
        .collect();
    let scratch = scratch_replay(&records, db.geometry.slots_per_page);
    let mut closure: BTreeSet<PageId> = lost.into_iter().collect();
    loop {
        let mut grew = false;
        for (lsn, op) in &records {
            let written = op.written_pages();
            let touches = op
                .read_pages()
                .into_iter()
                .chain(written.iter().copied())
                .any(|p| closure.contains(&p));
            if !touches {
                continue;
            }
            for &w in &written {
                if !closure.contains(&w) && db.disk.page_lsn(w) < *lsn {
                    closure.insert(w);
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    Ok(closure
        .into_iter()
        .map(|id| {
            let image = scratch
                .get(&id)
                .cloned()
                .unwrap_or_else(|| Page::new(db.geometry.slots_per_page));
            (id, image)
        })
        .collect())
}

/// Installs rebuild images, skipping pages the disk already carries at
/// (or past) the image's LSN — the idempotence that makes a re-run
/// after a crash mid-rebuild finish cleanly. Returns the pages written.
///
/// Every install is an ordinary faultable page write: an armed fault
/// may suppress or tear it, leaving the page lost (torn transfers onto
/// destroyed media land nothing), to be re-detected and re-installed by
/// the next recovery.
pub fn install_images(db: &mut Db<PageOpPayload>, images: &BTreeMap<PageId, Page>) -> Vec<PageId> {
    let mut written = Vec::new();
    for (&id, image) in images {
        if db.disk.is_lost(id) || db.disk.page_lsn(id) < image.lsn() {
            db.disk.write_page(id, image.clone());
            written.push(id);
        }
    }
    written
}

impl RecoveryMethod for Media {
    type Payload = PageOpPayload;

    fn name(&self) -> &'static str {
        "media"
    }

    fn execute(&self, db: &mut Db<PageOpPayload>, op: &PageOp) -> SimResult<Lsn> {
        Generalized.execute(db, op)
    }

    fn checkpoint(&self, db: &mut Db<PageOpPayload>) -> SimResult<()> {
        GeneralizedOnline::checkpoint_online(db).map(|_| ())
    }

    fn recover(&self, db: &mut Db<PageOpPayload>) -> SimResult<RecoveryStats> {
        // Repair first: the rebuild closure consults page LSNs, which
        // must answer from honest (un-torn) durable content.
        db.repair_after_crash();
        let images = rebuild_images(db)?;
        install_images(db, &images);
        // If a fault interrupted the install pass, some page is still
        // lost; the redo scan's first fetch of it surfaces MediaLoss,
        // and the next recovery of the re-crashed image starts over.
        Generalized.recover(db)
    }

    fn ondemand_restart(
        &self,
        db: &mut Db<PageOpPayload>,
        probes: &[redo_workload::pages::Cell],
    ) -> Option<SimResult<(RecoveryStats, Vec<u64>)>> {
        // The on-demand open gates media-lost pages and installs their
        // rebuild images lazily, component by component.
        Some(OnDemand::restart_with_probes(db, probes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use redo_sim::db::Geometry;
    use redo_workload::pages::{Cell, PageWorkloadSpec};

    fn workload(n: usize, seed: u64) -> Vec<PageOp> {
        PageWorkloadSpec {
            n_ops: n,
            n_pages: 6,
            cross_page_fraction: 0.4,
            multi_page_fraction: 0.2,
            blind_fraction: 0.1,
            ..Default::default()
        }
        .generate(seed)
    }

    fn model(ops: &[PageOp]) -> BTreeMap<Cell, u64> {
        let mut cells = BTreeMap::new();
        for op in ops {
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
        }
        cells
    }

    fn crashed_db(ops: &[PageOp], seed: u64) -> Db<PageOpPayload> {
        let mut db = Db::new(Geometry::default());
        let mut rng = StdRng::seed_from_u64(seed);
        for (i, op) in ops.iter().enumerate() {
            Media.execute(&mut db, op).unwrap();
            db.chaos_flush(&mut rng, 0.7, 0.4).unwrap();
            if (i + 1) % 9 == 0 {
                Media.checkpoint(&mut db).unwrap();
            }
        }
        db.log.flush_all();
        db.crash();
        db
    }

    #[test]
    fn lost_page_rebuilds_to_the_undamaged_recovery_state() {
        for seed in 0..4 {
            let ops = workload(36, seed);
            let db = crashed_db(&ops, seed ^ 0xdead);
            let mut undamaged = db.clone();
            Generalized.recover(&mut undamaged).unwrap();
            for victim in db.disk.pages().into_iter().map(|(id, _)| id) {
                let mut damaged = db.clone();
                damaged.disk.destroy_page(victim);
                // Re-crash so the damage sits in a cold image, exactly
                // as restart would find it.
                damaged.crash();
                Media.recover(&mut damaged).unwrap();
                assert!(!damaged.disk.is_lost(victim));
                assert_eq!(
                    damaged.volatile_theory_state(),
                    undamaged.volatile_theory_state(),
                    "seed {seed}, victim {victim:?}"
                );
            }
        }
    }

    #[test]
    fn rebuild_image_equals_genesis_scratch_replay() {
        let ops = workload(40, 11);
        let mut db = crashed_db(&ops, 0xfeed);
        db.repair_after_crash();
        let stable = db.log.stable_lsn();
        let merged: Vec<(Lsn, PageOp)> = db
            .log
            .pit_records(stable)
            .unwrap()
            .into_iter()
            .filter_map(|rec| match rec.payload {
                PageOpPayload::Op(op) => Some((rec.lsn, op)),
                _ => None,
            })
            .collect();
        let scratch = scratch_replay(&merged, db.geometry.slots_per_page);
        for (victim, _) in db.disk.pages() {
            let mut damaged = db.clone();
            damaged.disk.destroy_page(victim);
            let images = rebuild_images(&damaged).unwrap();
            assert_eq!(
                images.get(&victim),
                scratch.get(&victim),
                "rebuild of {victim:?} must be the genesis replay image"
            );
        }
    }

    #[test]
    fn rebuild_without_loss_is_empty_and_writes_nothing() {
        let ops = workload(20, 3);
        let mut db = crashed_db(&ops, 0xabc);
        db.repair_after_crash();
        let images = rebuild_images(&db).unwrap();
        assert!(images.is_empty());
        assert!(install_images(&mut db, &images).is_empty());
    }

    #[test]
    fn crash_mid_rebuild_is_idempotent() {
        use redo_sim::fault::{FaultKind, FaultPlan};
        let ops = workload(36, 21);
        let db = crashed_db(&ops, 0x21);
        let mut undamaged = db.clone();
        Generalized.recover(&mut undamaged).unwrap();
        let mut damaged = db.clone();
        // Destroy two pages so the install pass has at least two writes
        // to interrupt between.
        let victims: Vec<PageId> = damaged
            .disk
            .pages()
            .into_iter()
            .map(|(id, _)| id)
            .take(2)
            .collect();
        assert_eq!(victims.len(), 2, "workload touches at least two pages");
        for &v in &victims {
            damaged.disk.destroy_page(v);
        }
        damaged.crash();
        // The first page write of the recovery is the first rebuild
        // install; suppress it, killing the machine mid-rebuild.
        damaged.arm_faults(FaultPlan {
            at: 1,
            kind: FaultKind::Clean,
        });
        let interrupted = Media.recover(&mut damaged);
        assert!(damaged.fault_tripped(), "the install must hit the fault");
        // Whether the scan limped to an error or not, at least one
        // victim is still lost — the suppressed install left its mark.
        assert!(
            interrupted.is_err() || !damaged.disk.lost_pages().is_empty(),
            "a suppressed install cannot count as rebuilt"
        );
        damaged.crash();
        assert!(
            !damaged.disk.lost_pages().is_empty(),
            "media loss survives the re-crash"
        );
        Media.recover(&mut damaged).unwrap();
        assert!(damaged.disk.lost_pages().is_empty());
        assert_eq!(
            damaged.volatile_theory_state(),
            undamaged.volatile_theory_state(),
            "the re-run rebuild converges"
        );
        for (c, v) in model(&ops) {
            assert_eq!(damaged.read_cell(c).unwrap(), v, "cell {c:?}");
        }
    }

    #[test]
    fn closure_pulls_in_readers_of_lost_pages() {
        use redo_workload::pages::{PageOpKind, SlotId};
        // O1 seeds x; O2 reads x, writes y (generalized); crash with y
        // never flushed, then destroy x. The rebuild must install BOTH:
        // x because it is lost, y because replaying O2 against x's
        // final image would read the wrong moment.
        let x = Cell {
            page: PageId(0),
            slot: SlotId(0),
        };
        let y = Cell {
            page: PageId(1),
            slot: SlotId(0),
        };
        let o1 = PageOp {
            id: 0,
            kind: PageOpKind::Blind,
            reads: vec![],
            writes: vec![x],
            f_seed: 1,
        };
        let o2 = PageOp {
            id: 1,
            kind: PageOpKind::Generalized,
            reads: vec![x],
            writes: vec![y],
            f_seed: 2,
        };
        // O3 overwrites x AFTER O2 — the reason x's final image is the
        // wrong thing for O2's replay to read.
        let o3 = PageOp {
            id: 2,
            kind: PageOpKind::Physiological,
            reads: vec![x],
            writes: vec![x],
            f_seed: 3,
        };
        let ops = [o1, o2, o3];
        let mut db: Db<PageOpPayload> = Db::new(Geometry::default());
        // x durable at O1 only; y (and x's O3 overwrite) never flushed.
        Media.execute(&mut db, &ops[0]).unwrap();
        db.log.flush_all();
        db.pool
            .flush_page(&mut db.disk, PageId(0), db.log.stable_lsn())
            .unwrap();
        Media.execute(&mut db, &ops[1]).unwrap();
        Media.execute(&mut db, &ops[2]).unwrap();
        db.log.flush_all();
        db.crash();
        let mut undamaged = db.clone();
        Generalized.recover(&mut undamaged).unwrap();
        let mut damaged = db.clone();
        damaged.disk.destroy_page(PageId(0));
        damaged.crash();
        damaged.repair_after_crash();
        let images = rebuild_images(&damaged).unwrap();
        assert!(images.contains_key(&PageId(0)), "the lost page itself");
        assert!(
            images.contains_key(&PageId(1)),
            "the stale reader's write page joins the closure: replaying \
             O2 against x's final image would read the wrong moment"
        );
        Media.recover(&mut damaged).unwrap();
        assert_eq!(
            damaged.volatile_theory_state(),
            undamaged.volatile_theory_state()
        );
        for (c, v) in model(&ops) {
            assert_eq!(damaged.read_cell(c).unwrap(), v, "cell {c:?}");
        }
    }

    #[test]
    fn media_recovery_on_file_backend_survives_deleted_page_file() {
        let ops = workload(32, 5);
        let mut db: Db<PageOpPayload> = Db::on(
            redo_sim::backend::BackendKind::File,
            Geometry::default(),
            None,
        );
        let mut rng = StdRng::seed_from_u64(0x5);
        for (i, op) in ops.iter().enumerate() {
            Media.execute(&mut db, op).unwrap();
            db.chaos_flush(&mut rng, 0.7, 0.4).unwrap();
            if (i + 1) % 9 == 0 {
                Media.checkpoint(&mut db).unwrap();
            }
        }
        db.log.flush_all();
        db.crash();
        let mut undamaged = db.clone();
        Generalized.recover(&mut undamaged).unwrap();
        let victim = db
            .disk
            .pages()
            .first()
            .map(|&(id, _)| id)
            .expect("workload installed pages");
        // Delete the page file out-of-band, as a real media failure
        // would, and let crash-rescan detect the manifested-but-missing
        // file.
        let path = db
            .disk
            .dir()
            .expect("file backend has a directory")
            .join("pages")
            .join(format!("p{}.pg", victim.0));
        std::fs::remove_file(&path).unwrap();
        db.crash();
        assert!(db.disk.is_lost(victim), "rescan detects the missing file");
        Media.recover(&mut db).unwrap();
        assert!(!db.disk.is_lost(victim));
        assert_eq!(
            db.volatile_theory_state(),
            undamaged.volatile_theory_state()
        );
    }
}
