//! Logical recovery (§6.1), System R style.
//!
//! "In System R, system stable state on disk is unchanged between
//! checkpoints. Pages updated since the last checkpoint are maintained
//! partially in a main memory cache and partially in a disk staging
//! area. [...] Writing this checkpoint record 'swings a pointer' that
//! atomically installs into stable state all operations logged since the
//! previous checkpoint."
//!
//! Concretely:
//!
//! * between checkpoints, **no page flushes** touch the installed state
//!   (the harness honours [`RecoveryMethod::allows_page_chaos`] = false);
//! * [`Logical::checkpoint`] quiesces: forces the log, writes every
//!   dirty cache page to the staging area, logs a checkpoint record,
//!   forces it, and then performs the pointer swing
//!   ([`Disk::promote_staging`](redo_sim::disk::Disk::promote_staging) +
//!   master update — modeled as one atomic step, as the real pointer
//!   write is);
//! * recovery starts from the installed state (exactly the last
//!   checkpoint's) and replays **every** logged operation after the
//!   checkpoint record — the redo test is constant *true*, which is what
//!   makes fully *logical* operations (reading and writing anything)
//!   recoverable: the starting state is always the complete state the
//!   operations originally ran against.
//!
//! In write-graph terms the staging area is the second node of a
//! two-node write graph (stable state being the first); the pointer
//! swing collapses the two nodes while simultaneously moving the logged
//! operations out of `redo_set` — one atomic change preserving the
//! recovery invariant.

use std::collections::BTreeSet;

use redo_sim::db::Db;
use redo_sim::wal::ShardedScanner;
use redo_sim::SimResult;
use redo_theory::log::Lsn;
use redo_workload::pages::{PageId, PageOp};

use crate::oprecord::PageOpPayload;
use crate::{RecoveryMethod, RecoveryStats, SCAN_BATCH};

/// The logical (System R-style) recovery method.
#[derive(Clone, Copy, Debug, Default)]
pub struct Logical;

impl RecoveryMethod for Logical {
    type Payload = PageOpPayload;

    fn name(&self) -> &'static str {
        "logical"
    }

    fn allows_page_chaos(&self) -> bool {
        false
    }

    fn execute(&self, db: &mut Db<PageOpPayload>, op: &PageOp) -> SimResult<Lsn> {
        // No shape restriction: logical operations may read and write
        // arbitrarily many pages.
        let lsn = db.log.append(PageOpPayload::Op(op.clone()))?;
        db.apply_page_op(op, lsn)?;
        Ok(lsn)
    }

    fn checkpoint(&self, db: &mut Db<PageOpPayload>) -> SimResult<()> {
        // Quiesce: write dirty pages to the staging area.
        db.log.flush_all();
        let dirty = db.pool.dirty_frames();
        if dirty.is_empty() {
            // Nothing to install; still advance the master so recovery
            // scans less log.
            let ck = db.log.append(PageOpPayload::Checkpoint)?;
            db.log.flush_all();
            db.disk.set_master(ck)?;
            return Ok(());
        }
        for (id, page) in &dirty {
            db.disk.write_staging(*id, page.clone());
        }
        let ck = db.log.append(PageOpPayload::Checkpoint)?;
        db.log.flush_all();
        // The pointer swing: staged pages and the new master install in
        // ONE atomic (and singly faultable) act — a crash point between
        // "promote" and "set master" must not exist, or recovery would
        // see checkpoint pages installed while the master still points
        // at the previous checkpoint.
        db.disk.swing_pointer(ck)?;
        for (id, _) in dirty {
            db.pool.mark_clean(id)?;
        }
        Ok(())
    }

    fn recover(&self, db: &mut Db<PageOpPayload>) -> SimResult<RecoveryStats> {
        // Recovery's first act: repair crash damage the media can
        // detect (torn pages, a torn log-tail fragment).
        db.repair_after_crash();
        let master = db.disk.master();
        let mut stats = RecoveryStats::default();
        // Streaming scan: only the post-checkpoint suffix is ever
        // decoded. Logical operations read and write arbitrary pages, so
        // each batch prefetches its whole read+write footprint.
        let mut scanner = ShardedScanner::seek(&db.log, master.next());
        loop {
            let batch = scanner.next_batch(&db.log, SCAN_BATCH)?;
            if batch.is_empty() {
                break;
            }
            let pages: BTreeSet<PageId> = batch
                .iter()
                .filter_map(|rec| match &rec.payload {
                    PageOpPayload::Op(op) => {
                        Some(op.read_pages().into_iter().chain(op.written_pages()))
                    }
                    PageOpPayload::Checkpoint
                    | PageOpPayload::FuzzyCheckpoint { .. }
                    | PageOpPayload::DeltaCheckpoint { .. } => None,
                })
                .flatten()
                .collect();
            let pages: Vec<PageId> = pages.into_iter().collect();
            stats.pages_prefetched += db.pool.prefetch(
                &mut db.disk,
                &pages,
                db.geometry.slots_per_page,
                db.log.stable_lsn(),
            );
            for rec in batch {
                stats.scanned += 1;
                let PageOpPayload::Op(op) = rec.payload else {
                    continue;
                };
                // redo test: constant true.
                db.apply_page_op(&op, rec.lsn)?;
                stats.replayed.push(op.id);
            }
        }
        stats.note_scan(scanner.stats(), db.log.forces());
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redo_sim::db::Geometry;
    use redo_workload::pages::{Cell, PageWorkloadSpec};

    fn workload(n: usize, seed: u64) -> Vec<PageOp> {
        // Logical ops may be arbitrary: include cross-page reads.
        PageWorkloadSpec {
            n_ops: n,
            n_pages: 4,
            cross_page_fraction: 0.5,
            blind_fraction: 0.2,
            ..Default::default()
        }
        .generate(seed)
    }

    fn model(ops: &[PageOp]) -> std::collections::BTreeMap<Cell, u64> {
        let mut cells = std::collections::BTreeMap::new();
        for op in ops {
            let reads: Vec<u64> = op
                .reads
                .iter()
                .map(|c| cells.get(c).copied().unwrap_or(0))
                .collect();
            for &w in &op.writes {
                cells.insert(w, op.output(w, &reads));
            }
        }
        cells
    }

    fn assert_matches_model(db: &mut Db<PageOpPayload>, ops: &[PageOp]) {
        for (c, v) in model(ops) {
            assert_eq!(db.read_cell(c).unwrap(), v, "cell {c:?}");
        }
    }

    #[test]
    fn disk_unchanged_between_checkpoints() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(10, 1);
        for op in &ops {
            Logical.execute(&mut db, op).unwrap();
        }
        assert_eq!(
            db.disk.page_writes(),
            0,
            "no installed-state writes before checkpoint"
        );
    }

    #[test]
    fn checkpoint_installs_atomically() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(10, 2);
        for op in &ops {
            Logical.execute(&mut db, op).unwrap();
        }
        Logical.checkpoint(&mut db).unwrap();
        db.crash();
        let stats = Logical.recover(&mut db).unwrap();
        assert_eq!(stats.replay_count(), 0);
        assert_matches_model(&mut db, &ops);
    }

    #[test]
    fn crash_before_checkpoint_replays_since_last_one() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(12, 3);
        for op in &ops[..7] {
            Logical.execute(&mut db, op).unwrap();
        }
        Logical.checkpoint(&mut db).unwrap();
        for op in &ops[7..] {
            Logical.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        db.crash();
        let stats = Logical.recover(&mut db).unwrap();
        assert_eq!(stats.replay_count(), 5);
        assert_matches_model(&mut db, &ops);
    }

    #[test]
    fn unflushed_tail_lost_but_prefix_recovered() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(9, 4);
        for op in &ops[..4] {
            Logical.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        for op in &ops[4..] {
            Logical.execute(&mut db, op).unwrap();
        }
        db.crash();
        Logical.recover(&mut db).unwrap();
        assert_matches_model(&mut db, &ops[..4]);
    }

    #[test]
    fn empty_checkpoint_still_advances_master() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(4, 5);
        for op in &ops {
            Logical.execute(&mut db, op).unwrap();
        }
        Logical.checkpoint(&mut db).unwrap();
        // Nothing dirty now; checkpoint again.
        Logical.checkpoint(&mut db).unwrap();
        db.crash();
        let stats = Logical.recover(&mut db).unwrap();
        assert_eq!(stats.scanned, 0);
        assert_matches_model(&mut db, &ops);
    }

    #[test]
    fn multiple_checkpoint_cycles() {
        let mut db = Db::new(Geometry::default());
        let ops = workload(30, 6);
        for (i, op) in ops.iter().enumerate() {
            Logical.execute(&mut db, op).unwrap();
            if i % 7 == 6 {
                Logical.checkpoint(&mut db).unwrap();
            }
        }
        db.log.flush_all();
        db.crash();
        Logical.recover(&mut db).unwrap();
        assert_matches_model(&mut db, &ops);
    }
}
