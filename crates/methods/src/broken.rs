//! Deliberately broken recovery methods — the checker's negative
//! controls.
//!
//! A verifier that never rejects anything is worthless. These two
//! methods each violate the recovery invariant in a classic way, and the
//! crash harness / exhaustive checker must catch them:
//!
//! * [`SkippyRedo`] — an off-by-one redo test (`page LSN ≥ record LSN −
//!   1` counts as installed), silently dropping the newest update of a
//!   page whose second-newest update was flushed. The bypassed set then
//!   fails to *explain* the state: an exposed variable holds a stale
//!   value.
//! * [`LyingCheckpoint`] — a checkpoint that advances the master record
//!   *without flushing the cache* while keeping the redo-everything
//!   test. Operations before the checkpoint are treated as installed
//!   but their effects may never have reached disk: the implied
//!   installed set does not explain the stable state.
//!
//! Both are perfectly plausible implementation bugs; both are found by
//! the same audit that passes the four correct methods. Keep them
//! around as regression tests for the checker itself.

use redo_sim::db::Db;
use redo_sim::wal::ShardedScanner;
use redo_sim::SimResult;
use redo_theory::log::Lsn;
use redo_workload::pages::PageOp;

use crate::oprecord::PageOpPayload;
use crate::physiological::Physiological;
use crate::{RecoveryMethod, RecoveryStats, SCAN_BATCH};

/// Physiological recovery with an off-by-one redo test.
#[derive(Clone, Copy, Debug, Default)]
pub struct SkippyRedo;

impl RecoveryMethod for SkippyRedo {
    type Payload = PageOpPayload;

    fn name(&self) -> &'static str {
        "broken-skippy-redo"
    }

    fn execute(&self, db: &mut Db<PageOpPayload>, op: &PageOp) -> SimResult<Lsn> {
        Physiological.execute(db, op)
    }

    fn checkpoint(&self, db: &mut Db<PageOpPayload>) -> SimResult<()> {
        Physiological.checkpoint(db)
    }

    fn recover(&self, db: &mut Db<PageOpPayload>) -> SimResult<RecoveryStats> {
        // Recovery's first act: repair crash damage the media can
        // detect (torn pages, a torn log-tail fragment).
        db.repair_after_crash();
        let master = db.disk.master();
        let mut stats = RecoveryStats::default();
        let mut scanner = ShardedScanner::seek(&db.log, master.next());
        loop {
            let batch = scanner.next_batch(&db.log, SCAN_BATCH)?;
            if batch.is_empty() {
                break;
            }
            for rec in batch {
                stats.scanned += 1;
                let PageOpPayload::Op(op) = rec.payload else {
                    continue;
                };
                let page = op.written_pages()[0];
                let stable = db.log.stable_lsn();
                let cached =
                    db.pool
                        .fetch(&mut db.disk, page, db.geometry.slots_per_page, stable)?;
                // BUG: `rec.lsn - 1` instead of `rec.lsn`. A page flushed at
                // LSN L causes the record at L+1 to be wrongly bypassed.
                if cached.lsn() < Lsn(rec.lsn.0.saturating_sub(1)) {
                    db.apply_page_op(&op, rec.lsn)?;
                    stats.replayed.push(op.id);
                } else {
                    stats.skipped.push(op.id);
                }
            }
        }
        stats.note_scan(scanner.stats(), db.log.forces());
        Ok(stats)
    }
}

/// A checkpoint that claims installation without flushing.
#[derive(Clone, Copy, Debug, Default)]
pub struct LyingCheckpoint;

impl RecoveryMethod for LyingCheckpoint {
    type Payload = PageOpPayload;

    fn name(&self) -> &'static str {
        "broken-lying-checkpoint"
    }

    fn execute(&self, db: &mut Db<PageOpPayload>, op: &PageOp) -> SimResult<Lsn> {
        Physiological.execute(db, op)
    }

    fn checkpoint(&self, db: &mut Db<PageOpPayload>) -> SimResult<()> {
        // BUG: the §6.2/§6.3 checkpoint contract is "flush, THEN move
        // the master". This one skips the flush.
        let ck = db.log.append(PageOpPayload::Checkpoint)?;
        db.log.flush_all();
        db.disk.set_master(ck)?;
        Ok(())
    }

    fn recover(&self, db: &mut Db<PageOpPayload>) -> SimResult<RecoveryStats> {
        // Recovery's first act: repair crash damage the media can
        // detect (torn pages, a torn log-tail fragment).
        db.repair_after_crash();
        Physiological.recover(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run, HarnessConfig, HarnessFailure};
    use redo_workload::pages::PageWorkloadSpec;

    fn workload(seed: u64) -> Vec<PageOp> {
        PageWorkloadSpec {
            n_ops: 80,
            n_pages: 5,
            ..Default::default()
        }
        .generate(seed)
    }

    fn chaotic_cfg(seed: u64) -> HarnessConfig {
        HarnessConfig {
            checkpoint_every: Some(9),
            crash_every: Some(14),
            chaos: Some((0.9, 0.5)),
            seed,
            audit: true,
            slots_per_page: 8,
            pool_capacity: None,
            fault: None,
            ..Default::default()
        }
    }

    #[test]
    fn skippy_redo_is_caught() {
        let mut caught = 0usize;
        for seed in 0..6 {
            match run(&SkippyRedo, &workload(seed), &chaotic_cfg(seed)) {
                Err(HarnessFailure::StateMismatch { .. } | HarnessFailure::Invariant { .. }) => {
                    caught += 1;
                }
                Err(other) => panic!("unexpected failure class: {other}"),
                Ok(_) => {} // some schedules never hit the off-by-one window
            }
        }
        assert!(
            caught > 0,
            "the harness must catch the off-by-one redo test"
        );
    }

    #[test]
    fn lying_checkpoint_is_caught() {
        let mut caught = 0usize;
        for seed in 0..6 {
            match run(&LyingCheckpoint, &workload(seed), &chaotic_cfg(seed)) {
                Err(HarnessFailure::StateMismatch { .. } | HarnessFailure::Invariant { .. }) => {
                    caught += 1;
                }
                Err(other) => panic!("unexpected failure class: {other}"),
                Ok(_) => {}
            }
        }
        assert!(
            caught > 0,
            "the harness must catch the non-flushing checkpoint"
        );
    }

    #[test]
    fn correct_method_passes_where_broken_ones_fail() {
        // Same workloads, same schedules: the reference method is clean.
        for seed in 0..6 {
            crate::harness::run(&Physiological, &workload(seed), &chaotic_cfg(seed))
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
