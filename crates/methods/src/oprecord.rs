//! The shared log payload for operation-logging methods.
//!
//! Logical, physiological, and generalized-LSN recovery all log the
//! *operation* (not its output values): a [`PageOp`] plus checkpoint
//! markers. They differ only in their redo tests and checkpoint
//! disciplines, so they share this payload.

use redo_sim::wal::{codec, LogPayload};
use redo_sim::{SimError, SimResult};
use redo_workload::pages::PageOp;

/// An operation record or a checkpoint marker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PageOpPayload {
    /// A logged operation.
    Op(PageOp),
    /// A checkpoint record.
    Checkpoint,
}

impl LogPayload for PageOpPayload {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PageOpPayload::Op(op) => {
                codec::put_u8(buf, 0);
                codec::put_page_op(buf, op);
            }
            PageOpPayload::Checkpoint => codec::put_u8(buf, 1),
        }
    }

    fn decode(input: &[u8], pos: &mut usize) -> SimResult<Self> {
        match codec::get_u8(input, pos)? {
            0 => Ok(PageOpPayload::Op(codec::get_page_op(input, pos)?)),
            1 => Ok(PageOpPayload::Checkpoint),
            _ => Err(SimError::Corrupt(*pos - 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redo_workload::pages::PageWorkloadSpec;

    #[test]
    fn roundtrip() {
        let spec = PageWorkloadSpec {
            n_ops: 10,
            cross_page_fraction: 0.5,
            ..Default::default()
        };
        for op in spec.generate(1) {
            let p = PageOpPayload::Op(op);
            let mut buf = Vec::new();
            p.encode(&mut buf);
            let mut pos = 0;
            assert_eq!(PageOpPayload::decode(&buf, &mut pos).unwrap(), p);
        }
        let mut buf = Vec::new();
        PageOpPayload::Checkpoint.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(
            PageOpPayload::decode(&buf, &mut pos).unwrap(),
            PageOpPayload::Checkpoint
        );
    }

    #[test]
    fn bad_tag_rejected() {
        let buf = [9u8];
        let mut pos = 0;
        assert!(matches!(
            PageOpPayload::decode(&buf, &mut pos),
            Err(SimError::Corrupt(0))
        ));
    }
}
