//! The shared log payload for operation-logging methods.
//!
//! Logical, physiological, and generalized-LSN recovery all log the
//! *operation* (not its output values): a [`PageOp`] plus checkpoint
//! markers. They differ only in their redo tests and checkpoint
//! disciplines, so they share this payload.

use redo_sim::wal::{codec, LogPayload};
use redo_sim::{SimError, SimResult};
use redo_theory::log::Lsn;
use redo_workload::pages::{PageId, PageOp};

/// An operation record or a checkpoint marker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PageOpPayload {
    /// A logged operation.
    Op(PageOp),
    /// A heavyweight checkpoint record: everything below it is
    /// installed, so recovery scans strictly after it.
    Checkpoint,
    /// A fuzzy checkpoint record, taken online without quiescing or
    /// flushing: the buffer pool's dirty-page table (page, recLSN)
    /// at the moment of the snapshot, plus the precomputed redo-start
    /// LSN (min over recLSNs and any in-flight-but-unapplied LSNs).
    /// Recovery scans from `redo_start`; the per-page redo tests
    /// make replaying already-installed records harmless.
    FuzzyCheckpoint {
        /// Dirty pages with their recovery LSNs, in id order.
        dirty: Vec<(PageId, Lsn)>,
        /// The LSN recovery must scan from.
        redo_start: Lsn,
    },
    /// An incremental checkpoint record: the dirty-page-table *delta*
    /// against the previous checkpoint in the chain, not a full
    /// snapshot. Analysis reconstructs the DPT by walking `prev` links
    /// back to the full [`FuzzyCheckpoint`] at `base` and folding the
    /// deltas oldest→newest; a broken link (truncated past, torn
    /// record, foreign LSN) falls back to reading `base` as a full
    /// snapshot, and failing that to a full log scan — deltas only
    /// ever *narrow* the scan, they can never make recovery wrong.
    DeltaCheckpoint {
        /// The previous checkpoint record in the chain (a
        /// `FuzzyCheckpoint` or another `DeltaCheckpoint`).
        prev: Lsn,
        /// The full `FuzzyCheckpoint` snapshot the chain grows from.
        base: Lsn,
        /// The LSN recovery must scan from, as of this delta.
        redo_start: Lsn,
        /// Pages dirtied (or re-dirtied at a new recLSN) since `prev`.
        added: Vec<(PageId, Lsn)>,
        /// Pages cleaned since `prev`.
        removed: Vec<PageId>,
    },
}

impl LogPayload for PageOpPayload {
    fn encode(&self, buf: &mut Vec<u8>) -> SimResult<()> {
        match self {
            PageOpPayload::Op(op) => {
                codec::put_u8(buf, 0);
                codec::put_page_op(buf, op)?;
            }
            PageOpPayload::Checkpoint => codec::put_u8(buf, 1),
            PageOpPayload::FuzzyCheckpoint { dirty, redo_start } => {
                codec::put_u8(buf, 2);
                codec::put_u64(buf, redo_start.0);
                codec::put_u16(
                    buf,
                    codec::count_u16("dirty-page-table length", dirty.len())?,
                );
                for &(page, rec) in dirty {
                    codec::put_u32(buf, page.0);
                    codec::put_u64(buf, rec.0);
                }
            }
            PageOpPayload::DeltaCheckpoint {
                prev,
                base,
                redo_start,
                added,
                removed,
            } => {
                codec::put_u8(buf, 3);
                codec::put_u64(buf, prev.0);
                codec::put_u64(buf, base.0);
                codec::put_u64(buf, redo_start.0);
                codec::put_u16(buf, codec::count_u16("delta added length", added.len())?);
                for &(page, rec) in added {
                    codec::put_u32(buf, page.0);
                    codec::put_u64(buf, rec.0);
                }
                codec::put_u16(
                    buf,
                    codec::count_u16("delta removed length", removed.len())?,
                );
                for &page in removed {
                    codec::put_u32(buf, page.0);
                }
            }
        }
        Ok(())
    }

    fn decode(input: &[u8], pos: &mut usize) -> SimResult<Self> {
        match codec::get_u8(input, pos)? {
            0 => Ok(PageOpPayload::Op(codec::get_page_op(input, pos)?)),
            1 => Ok(PageOpPayload::Checkpoint),
            2 => {
                let redo_start = Lsn(codec::get_u64(input, pos)?);
                let n = codec::get_u16(input, pos)? as usize;
                let mut dirty = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let page = PageId(codec::get_u32(input, pos)?);
                    let rec = Lsn(codec::get_u64(input, pos)?);
                    dirty.push((page, rec));
                }
                Ok(PageOpPayload::FuzzyCheckpoint { dirty, redo_start })
            }
            3 => {
                let prev = Lsn(codec::get_u64(input, pos)?);
                let base = Lsn(codec::get_u64(input, pos)?);
                let redo_start = Lsn(codec::get_u64(input, pos)?);
                let n = codec::get_u16(input, pos)? as usize;
                let mut added = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let page = PageId(codec::get_u32(input, pos)?);
                    let rec = Lsn(codec::get_u64(input, pos)?);
                    added.push((page, rec));
                }
                let n = codec::get_u16(input, pos)? as usize;
                let mut removed = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    removed.push(PageId(codec::get_u32(input, pos)?));
                }
                Ok(PageOpPayload::DeltaCheckpoint {
                    prev,
                    base,
                    redo_start,
                    added,
                    removed,
                })
            }
            _ => Err(SimError::Corrupt(*pos - 1)),
        }
    }

    fn write_pages(&self) -> Vec<PageId> {
        // Only operation records extend per-page chains; checkpoint
        // markers touch no page.
        match self {
            PageOpPayload::Op(op) => op.written_pages(),
            PageOpPayload::Checkpoint
            | PageOpPayload::FuzzyCheckpoint { .. }
            | PageOpPayload::DeltaCheckpoint { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redo_workload::pages::PageWorkloadSpec;

    #[test]
    fn roundtrip() {
        let spec = PageWorkloadSpec {
            n_ops: 10,
            cross_page_fraction: 0.5,
            ..Default::default()
        };
        for op in spec.generate(1) {
            let p = PageOpPayload::Op(op);
            let mut buf = Vec::new();
            p.encode(&mut buf).unwrap();
            let mut pos = 0;
            assert_eq!(PageOpPayload::decode(&buf, &mut pos).unwrap(), p);
        }
        let mut buf = Vec::new();
        PageOpPayload::Checkpoint.encode(&mut buf).unwrap();
        let mut pos = 0;
        assert_eq!(
            PageOpPayload::decode(&buf, &mut pos).unwrap(),
            PageOpPayload::Checkpoint
        );
    }

    #[test]
    fn fuzzy_checkpoint_roundtrip() {
        for dirty in [
            vec![],
            vec![(PageId(3), Lsn(7))],
            vec![
                (PageId(0), Lsn(1)),
                (PageId(9), Lsn(40)),
                (PageId(12), Lsn(2)),
            ],
        ] {
            let p = PageOpPayload::FuzzyCheckpoint {
                dirty,
                redo_start: Lsn(5),
            };
            let mut buf = Vec::new();
            p.encode(&mut buf).unwrap();
            let mut pos = 0;
            assert_eq!(PageOpPayload::decode(&buf, &mut pos).unwrap(), p);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_fuzzy_checkpoint_is_corrupt() {
        let p = PageOpPayload::FuzzyCheckpoint {
            dirty: vec![(PageId(1), Lsn(2)), (PageId(2), Lsn(3))],
            redo_start: Lsn(2),
        };
        let mut buf = Vec::new();
        p.encode(&mut buf).unwrap();
        for cut in 1..buf.len() {
            let mut pos = 0;
            assert!(
                matches!(
                    PageOpPayload::decode(&buf[..cut], &mut pos),
                    Err(SimError::Corrupt(_))
                ),
                "cut at {cut} must not parse"
            );
        }
    }

    #[test]
    fn delta_checkpoint_roundtrip() {
        for (added, removed) in [
            (vec![], vec![]),
            (vec![(PageId(3), Lsn(7))], vec![PageId(1)]),
            (
                vec![(PageId(0), Lsn(12)), (PageId(9), Lsn(40))],
                vec![PageId(2), PageId(5), PageId(8)],
            ),
        ] {
            let p = PageOpPayload::DeltaCheckpoint {
                prev: Lsn(11),
                base: Lsn(4),
                redo_start: Lsn(6),
                added,
                removed,
            };
            let mut buf = Vec::new();
            p.encode(&mut buf).unwrap();
            let mut pos = 0;
            assert_eq!(PageOpPayload::decode(&buf, &mut pos).unwrap(), p);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_delta_checkpoint_is_corrupt() {
        let p = PageOpPayload::DeltaCheckpoint {
            prev: Lsn(20),
            base: Lsn(10),
            redo_start: Lsn(12),
            added: vec![(PageId(1), Lsn(15)), (PageId(2), Lsn(18))],
            removed: vec![PageId(3)],
        };
        let mut buf = Vec::new();
        p.encode(&mut buf).unwrap();
        for cut in 1..buf.len() {
            let mut pos = 0;
            assert!(
                matches!(
                    PageOpPayload::decode(&buf[..cut], &mut pos),
                    Err(SimError::Corrupt(_))
                ),
                "cut at {cut} must not parse"
            );
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let buf = [9u8];
        let mut pos = 0;
        assert!(matches!(
            PageOpPayload::decode(&buf, &mut pos),
            Err(SimError::Corrupt(0))
        ));
    }
}
