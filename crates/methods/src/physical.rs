//! Physical recovery (§6.2).
//!
//! "Early recovery techniques frequently exploited physical recovery,
//! logging the exact bytes of data and the exact locations written by the
//! logged operations. Physical operations do not read data, they only
//! write." Log records here carry `(cell, value)` after-images; replay is
//! a blind, idempotent overwrite.
//!
//! Because the logged operations never read, the installation graph has
//! only write-write edges (one chain per cell); any cache flush order is
//! legal under the WAL rule, and while an operation sits in the redo set,
//! the cells it wrote are *unexposed* — which is why the checkpoint can
//! simply flush the cache (setting the stable values to whatever the
//! cache holds) and then atomically shift every logged operation out of
//! the redo set by writing the checkpoint record.

use std::collections::BTreeSet;

use redo_sim::db::Db;
use redo_sim::wal::{codec, LogPayload, LogScanner};
use redo_sim::{SimError, SimResult};
use redo_theory::log::Lsn;
use redo_workload::pages::{Cell, PageId, PageOp};

use crate::{RecoveryMethod, RecoveryStats, SCAN_BATCH};

/// Log payload for physical recovery: blind after-images or a checkpoint
/// marker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PhysPayload {
    /// The exact cells and values an operation wrote.
    Writes {
        /// The workload operation id (for auditing; replay ignores it).
        op_id: u32,
        /// After-images in write order.
        writes: Vec<(Cell, u64)>,
    },
    /// A checkpoint record: every earlier operation is installed.
    Checkpoint,
}

impl LogPayload for PhysPayload {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PhysPayload::Writes { op_id, writes } => {
                codec::put_u8(buf, 0);
                codec::put_u32(buf, *op_id);
                codec::put_u16(buf, writes.len() as u16);
                for &(c, v) in writes {
                    codec::put_cell(buf, c);
                    codec::put_u64(buf, v);
                }
            }
            PhysPayload::Checkpoint => codec::put_u8(buf, 1),
        }
    }

    fn decode(input: &[u8], pos: &mut usize) -> SimResult<Self> {
        match codec::get_u8(input, pos)? {
            0 => {
                let op_id = codec::get_u32(input, pos)?;
                let n = codec::get_u16(input, pos)? as usize;
                let mut writes = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let c = codec::get_cell(input, pos)?;
                    let v = codec::get_u64(input, pos)?;
                    writes.push((c, v));
                }
                Ok(PhysPayload::Writes { op_id, writes })
            }
            1 => Ok(PhysPayload::Checkpoint),
            _ => Err(SimError::Corrupt(*pos - 1)),
        }
    }
}

/// The physical recovery method.
#[derive(Clone, Copy, Debug, Default)]
pub struct Physical;

impl RecoveryMethod for Physical {
    type Payload = PhysPayload;

    fn name(&self) -> &'static str {
        "physical"
    }

    fn execute(&self, db: &mut Db<PhysPayload>, op: &PageOp) -> SimResult<Lsn> {
        // Compute the after-images by reading the cache (the *logged*
        // record is blind; the computation that produced it is not our
        // concern, exactly as in real systems).
        let mut read_values = Vec::with_capacity(op.reads.len());
        for &cell in &op.reads {
            read_values.push(db.read_cell(cell)?);
        }
        let writes: Vec<(Cell, u64)> = op
            .writes
            .iter()
            .map(|&c| (c, op.output(c, &read_values)))
            .collect();
        let lsn = db.log.append(PhysPayload::Writes {
            op_id: op.id,
            writes: writes.clone(),
        });
        for (cell, v) in writes {
            let stable = db.log.stable_lsn();
            db.pool
                .fetch(&mut db.disk, cell.page, db.geometry.slots_per_page, stable)?;
            db.pool.update(cell.page, lsn, |p| p.set(cell.slot, v))?;
        }
        Ok(lsn)
    }

    fn checkpoint(&self, db: &mut Db<PhysPayload>) -> SimResult<()> {
        // §6.2: set the stable values to those in the cache (which
        // include every pending operation's effects), then write the
        // checkpoint record — atomically installing the lot.
        db.log.flush_all();
        let stable = db.log.stable_lsn();
        db.pool.flush_all(&mut db.disk, stable)?;
        let ck = db.log.append(PhysPayload::Checkpoint);
        db.log.flush_all();
        db.disk.set_master(ck);
        Ok(())
    }

    fn recover(&self, db: &mut Db<PhysPayload>) -> SimResult<RecoveryStats> {
        // Recovery's first act: repair crash damage the media can
        // detect (torn pages, a torn log-tail fragment).
        db.repair_after_crash();
        let master = db.disk.master();
        let mut stats = RecoveryStats::default();
        // Streaming scan: seek past the checkpointed prefix (never
        // decoding it) and replay batch by batch.
        let mut scanner = LogScanner::seek(&db.log, master.next());
        loop {
            let batch = scanner.next_batch(&db.log, SCAN_BATCH)?;
            if batch.is_empty() {
                break;
            }
            let pages: BTreeSet<PageId> = batch
                .iter()
                .filter_map(|rec| match &rec.payload {
                    PhysPayload::Writes { writes, .. } => Some(writes.iter().map(|&(c, _)| c.page)),
                    PhysPayload::Checkpoint => None,
                })
                .flatten()
                .collect();
            let pages: Vec<PageId> = pages.into_iter().collect();
            stats.pages_prefetched += db.pool.prefetch(
                &mut db.disk,
                &pages,
                db.geometry.slots_per_page,
                db.log.stable_lsn(),
            );
            for rec in batch {
                stats.scanned += 1;
                match rec.payload {
                    PhysPayload::Checkpoint => {}
                    PhysPayload::Writes { op_id, writes } => {
                        // redo test: always replay (blind, idempotent).
                        for (cell, v) in writes {
                            let stable = db.log.stable_lsn();
                            db.pool.fetch(
                                &mut db.disk,
                                cell.page,
                                db.geometry.slots_per_page,
                                stable,
                            )?;
                            db.pool
                                .update(cell.page, rec.lsn, |p| p.set(cell.slot, v))?;
                        }
                        stats.replayed.push(op_id);
                    }
                }
            }
        }
        stats.note_scan(scanner.stats(), db.log.forces());
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redo_sim::db::Geometry;
    use redo_workload::pages::{PageId, PageWorkloadSpec, SlotId};

    fn db() -> Db<PhysPayload> {
        Db::new(Geometry::default())
    }

    #[test]
    fn payload_roundtrip() {
        let p = PhysPayload::Writes {
            op_id: 3,
            writes: vec![(
                Cell {
                    page: PageId(1),
                    slot: SlotId(2),
                },
                99,
            )],
        };
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(PhysPayload::decode(&buf, &mut pos).unwrap(), p);
        assert_eq!(pos, buf.len());
        let mut buf = Vec::new();
        PhysPayload::Checkpoint.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(
            PhysPayload::decode(&buf, &mut pos).unwrap(),
            PhysPayload::Checkpoint
        );
    }

    #[test]
    fn crash_without_any_flush_recovers_nothing() {
        let mut db = db();
        let ops = PageWorkloadSpec {
            blind_fraction: 1.0,
            n_ops: 5,
            ..Default::default()
        }
        .generate(1);
        for op in &ops {
            Physical.execute(&mut db, op).unwrap();
        }
        db.crash();
        let stats = Physical.recover(&mut db).unwrap();
        assert_eq!(stats.replay_count(), 0);
        assert_eq!(
            db.volatile_theory_state(),
            redo_theory::state::State::zeroed()
        );
    }

    #[test]
    fn durable_log_replays_fully() {
        let mut db = db();
        let ops = PageWorkloadSpec {
            blind_fraction: 1.0,
            n_ops: 8,
            ..Default::default()
        }
        .generate(2);
        let mut expect = std::collections::BTreeMap::new();
        for op in &ops {
            Physical.execute(&mut db, op).unwrap();
            for &c in &op.writes {
                expect.insert(c, op.output(c, &[]));
            }
        }
        db.log.flush_all();
        db.crash();
        let stats = Physical.recover(&mut db).unwrap();
        assert_eq!(stats.replay_count(), 8);
        for (c, v) in expect {
            assert_eq!(db.read_cell(c).unwrap(), v);
        }
    }

    #[test]
    fn checkpoint_truncates_recovery_scan() {
        let mut db = db();
        let ops = PageWorkloadSpec {
            blind_fraction: 1.0,
            n_ops: 10,
            ..Default::default()
        }
        .generate(3);
        for op in &ops[..6] {
            Physical.execute(&mut db, op).unwrap();
        }
        Physical.checkpoint(&mut db).unwrap();
        for op in &ops[6..] {
            Physical.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        db.crash();
        let stats = Physical.recover(&mut db).unwrap();
        assert_eq!(
            stats.replay_count(),
            4,
            "only post-checkpoint records replay"
        );
        // And the state is complete nevertheless.
        for op in &ops {
            for &c in &op.writes {
                assert_ne!(db.read_cell(c).unwrap(), 0);
            }
        }
    }

    #[test]
    fn replay_is_idempotent() {
        let mut db = db();
        let ops = PageWorkloadSpec {
            blind_fraction: 1.0,
            n_ops: 6,
            ..Default::default()
        }
        .generate(4);
        for op in &ops {
            Physical.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        // Flush some pages so replay partially overlaps installed state.
        let stable = db.log.stable_lsn();
        db.pool.flush_all(&mut db.disk, stable).unwrap();
        db.crash();
        Physical.recover(&mut db).unwrap();
        let once = db.volatile_theory_state();
        db.crash();
        Physical.recover(&mut db).unwrap();
        assert_eq!(db.volatile_theory_state(), once);
    }
}
