//! Physical recovery (§6.2).
//!
//! "Early recovery techniques frequently exploited physical recovery,
//! logging the exact bytes of data and the exact locations written by the
//! logged operations. Physical operations do not read data, they only
//! write." Log records here carry `(cell, value)` after-images; replay is
//! a blind, idempotent overwrite.
//!
//! Because the logged operations never read, the installation graph has
//! only write-write edges (one chain per cell); any cache flush order is
//! legal under the WAL rule, and while an operation sits in the redo set,
//! the cells it wrote are *unexposed* — which is why the checkpoint can
//! simply flush the cache (setting the stable values to whatever the
//! cache holds) and then atomically shift every logged operation out of
//! the redo set by writing the checkpoint record.

use std::collections::BTreeSet;

use redo_sim::db::Db;
use redo_sim::wal::{codec, LogPayload, ShardedScanner};
use redo_sim::{SimError, SimResult};
use redo_theory::log::Lsn;
use redo_workload::pages::{Cell, PageId, PageOp};

use crate::generalized::RestartAnalysis;
use crate::{RecoveryMethod, RecoveryStats, SCAN_BATCH};

/// Log payload for physical recovery: blind after-images or a checkpoint
/// marker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PhysPayload {
    /// The exact cells and values an operation wrote.
    Writes {
        /// The workload operation id (for auditing; replay ignores it).
        op_id: u32,
        /// After-images in write order.
        writes: Vec<(Cell, u64)>,
    },
    /// A checkpoint record: every earlier operation is installed.
    Checkpoint,
    /// A fuzzy checkpoint record, taken without flushing: the buffer
    /// pool's dirty-page table (page, recLSN) at the snapshot plus the
    /// precomputed redo-start LSN. Blind replay makes re-applying
    /// installed records harmless, so recovery may simply scan from
    /// `redo_start`; a partitioned restart additionally uses the table
    /// to keep provably-installed records out of the page partitions.
    FuzzyCheckpoint {
        /// Dirty pages with their recovery LSNs, in id order.
        dirty: Vec<(PageId, Lsn)>,
        /// The LSN recovery must scan from.
        redo_start: Lsn,
    },
}

impl LogPayload for PhysPayload {
    fn encode(&self, buf: &mut Vec<u8>) -> SimResult<()> {
        match self {
            PhysPayload::Writes { op_id, writes } => {
                codec::put_u8(buf, 0);
                codec::put_u32(buf, *op_id);
                codec::put_u16(buf, codec::count_u16("after-image count", writes.len())?);
                for &(c, v) in writes {
                    codec::put_cell(buf, c);
                    codec::put_u64(buf, v);
                }
            }
            PhysPayload::Checkpoint => codec::put_u8(buf, 1),
            PhysPayload::FuzzyCheckpoint { dirty, redo_start } => {
                codec::put_u8(buf, 2);
                codec::put_u64(buf, redo_start.0);
                codec::put_u16(
                    buf,
                    codec::count_u16("dirty-page-table length", dirty.len())?,
                );
                for &(page, rec) in dirty {
                    codec::put_u32(buf, page.0);
                    codec::put_u64(buf, rec.0);
                }
            }
        }
        Ok(())
    }

    fn decode(input: &[u8], pos: &mut usize) -> SimResult<Self> {
        match codec::get_u8(input, pos)? {
            0 => {
                let op_id = codec::get_u32(input, pos)?;
                let n = codec::get_u16(input, pos)? as usize;
                let mut writes = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let c = codec::get_cell(input, pos)?;
                    let v = codec::get_u64(input, pos)?;
                    writes.push((c, v));
                }
                Ok(PhysPayload::Writes { op_id, writes })
            }
            1 => Ok(PhysPayload::Checkpoint),
            2 => {
                let redo_start = Lsn(codec::get_u64(input, pos)?);
                let n = codec::get_u16(input, pos)? as usize;
                let mut dirty = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let page = PageId(codec::get_u32(input, pos)?);
                    let rec = Lsn(codec::get_u64(input, pos)?);
                    dirty.push((page, rec));
                }
                Ok(PhysPayload::FuzzyCheckpoint { dirty, redo_start })
            }
            _ => Err(SimError::Corrupt(*pos - 1)),
        }
    }

    fn write_pages(&self) -> Vec<PageId> {
        match self {
            PhysPayload::Writes { writes, .. } => {
                let pages: BTreeSet<PageId> = writes.iter().map(|&(c, _)| c.page).collect();
                pages.into_iter().collect()
            }
            PhysPayload::Checkpoint | PhysPayload::FuzzyCheckpoint { .. } => Vec::new(),
        }
    }
}

/// The physical recovery method.
#[derive(Clone, Copy, Debug, Default)]
pub struct Physical;

impl Physical {
    /// The analysis step over the physical log: dispatch on the record
    /// the master points at. A heavyweight [`PhysPayload::Checkpoint`]
    /// installed everything below it; a
    /// [`PhysPayload::FuzzyCheckpoint`] carries its redo-start and
    /// dirty-page table. Anything else falls back to a full scan from
    /// the first retained record — always safe, since blind replay is
    /// idempotent.
    ///
    /// # Errors
    ///
    /// Log corruption at the master record.
    pub fn analyze(db: &Db<PhysPayload>) -> SimResult<RestartAnalysis> {
        let master = db.disk.master();
        if master > Lsn::ZERO {
            let mut cursor = db.log.cursor_from(master);
            if let Some(rec) = cursor.next() {
                let rec = rec?;
                if rec.lsn == master {
                    match rec.payload {
                        PhysPayload::Checkpoint => {
                            return Ok(RestartAnalysis {
                                redo_start: master.next(),
                                checkpoint_lsn: Some(master),
                                dirty: None,
                            })
                        }
                        PhysPayload::FuzzyCheckpoint { dirty, redo_start } => {
                            return Ok(RestartAnalysis {
                                redo_start,
                                checkpoint_lsn: Some(master),
                                dirty: Some(dirty.into_iter().collect()),
                            })
                        }
                        PhysPayload::Writes { .. } => {}
                    }
                }
            }
        }
        Ok(RestartAnalysis::full_scan())
    }

    /// One *online* checkpoint attempt for the physical method: no page
    /// flushing, just a dirty-page-table snapshot published through the
    /// master pointer, followed by prefix truncation. The protocol and
    /// its abandonment semantics mirror
    /// [`crate::online::GeneralizedOnline::checkpoint_online`]; returns
    /// the published checkpoint LSN, or `None` if the attempt was
    /// abandoned under fault injection.
    ///
    /// # Errors
    ///
    /// Substrate errors. (Fault suppression is not an error — it
    /// surfaces as an abandoned attempt.)
    pub fn checkpoint_fuzzy(db: &mut Db<PhysPayload>) -> SimResult<Option<Lsn>> {
        let dirty = db.pool.dirty_page_table();
        let ck_expected = Lsn(db.log.last_lsn().0 + 1);
        let redo_start = dirty
            .iter()
            .map(|&(_, rec)| rec)
            .min()
            .unwrap_or(ck_expected);
        let ck = db
            .log
            .append(PhysPayload::FuzzyCheckpoint { dirty, redo_start })?;
        debug_assert_eq!(ck, ck_expected);
        db.log.flush_all();
        if db.log.stable_lsn() < ck {
            return Ok(None);
        }
        db.disk.set_master(ck)?;
        if db.disk.master() != ck {
            return Ok(None);
        }
        db.log.archive_prefix(redo_start)?;
        Ok(Some(ck))
    }
}

impl RecoveryMethod for Physical {
    type Payload = PhysPayload;

    fn name(&self) -> &'static str {
        "physical"
    }

    fn execute(&self, db: &mut Db<PhysPayload>, op: &PageOp) -> SimResult<Lsn> {
        // Compute the after-images by reading the cache (the *logged*
        // record is blind; the computation that produced it is not our
        // concern, exactly as in real systems).
        let mut read_values = Vec::with_capacity(op.reads.len());
        for &cell in &op.reads {
            read_values.push(db.read_cell(cell)?);
        }
        let writes: Vec<(Cell, u64)> = op
            .writes
            .iter()
            .map(|&c| (c, op.output(c, &read_values)))
            .collect();
        let lsn = db.log.append(PhysPayload::Writes {
            op_id: op.id,
            writes: writes.clone(),
        })?;
        for (cell, v) in writes {
            // Fetch through the steal path: under the fuzzy-checkpoint
            // discipline nothing else cleans the pool, so a bounded
            // pool full of WAL-blocked dirty frames must force the log
            // to evict, not error out.
            db.fetch_with_steal(cell.page)?;
            db.pool.update(cell.page, lsn, |p| p.set(cell.slot, v))?;
        }
        Ok(lsn)
    }

    fn checkpoint(&self, db: &mut Db<PhysPayload>) -> SimResult<()> {
        // §6.2: set the stable values to those in the cache (which
        // include every pending operation's effects), then write the
        // checkpoint record — atomically installing the lot.
        db.log.flush_all();
        let stable = db.log.stable_lsn();
        db.pool.flush_all(&mut db.disk, stable)?;
        let ck = db.log.append(PhysPayload::Checkpoint)?;
        db.log.flush_all();
        db.disk.set_master(ck)?;
        Ok(())
    }

    fn recover(&self, db: &mut Db<PhysPayload>) -> SimResult<RecoveryStats> {
        // Recovery's first act: repair crash damage the media can
        // detect (torn pages, a torn log-tail fragment).
        db.repair_after_crash();
        let analysis = Physical::analyze(db)?;
        let mut stats = RecoveryStats {
            checkpoint_lsn: analysis.checkpoint_lsn,
            truncated_bytes: db.log.truncated_bytes(),
            ..RecoveryStats::default()
        };
        // Streaming scan: seek past the checkpointed (or fuzzily
        // elided) prefix — never decoding it — and replay batch by
        // batch. Records a fuzzy analysis proves installed still
        // replay here: they are blind and idempotent, and the serial
        // path keeps the simplest possible redo test (always yes).
        let mut scanner = ShardedScanner::seek(&db.log, analysis.redo_start);
        loop {
            let batch = scanner.next_batch(&db.log, SCAN_BATCH)?;
            if batch.is_empty() {
                break;
            }
            let pages: BTreeSet<PageId> = batch
                .iter()
                .filter_map(|rec| match &rec.payload {
                    PhysPayload::Writes { writes, .. } => Some(writes.iter().map(|&(c, _)| c.page)),
                    PhysPayload::Checkpoint | PhysPayload::FuzzyCheckpoint { .. } => None,
                })
                .flatten()
                .collect();
            let pages: Vec<PageId> = pages.into_iter().collect();
            stats.pages_prefetched += db.pool.prefetch(
                &mut db.disk,
                &pages,
                db.geometry.slots_per_page,
                db.log.stable_lsn(),
            );
            for rec in batch {
                stats.scanned += 1;
                match rec.payload {
                    PhysPayload::Checkpoint | PhysPayload::FuzzyCheckpoint { .. } => {}
                    PhysPayload::Writes { op_id, writes } => {
                        // redo test: always replay (blind, idempotent).
                        for (cell, v) in writes {
                            let stable = db.log.stable_lsn();
                            db.pool.fetch(
                                &mut db.disk,
                                cell.page,
                                db.geometry.slots_per_page,
                                stable,
                            )?;
                            db.pool
                                .update(cell.page, rec.lsn, |p| p.set(cell.slot, v))?;
                        }
                        stats.replayed.push(op_id);
                    }
                }
            }
        }
        stats.note_scan(scanner.stats(), db.log.forces());
        Ok(stats)
    }

    fn parallel_restart(
        &self,
        db: &mut Db<PhysPayload>,
        threads: usize,
    ) -> Option<SimResult<RecoveryStats>> {
        Some(crate::parallel::recover_physical_parallel(db, threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redo_sim::db::Geometry;
    use redo_workload::pages::{PageId, PageWorkloadSpec, SlotId};

    fn db() -> Db<PhysPayload> {
        Db::new(Geometry::default())
    }

    #[test]
    fn payload_roundtrip() {
        let p = PhysPayload::Writes {
            op_id: 3,
            writes: vec![(
                Cell {
                    page: PageId(1),
                    slot: SlotId(2),
                },
                99,
            )],
        };
        let mut buf = Vec::new();
        p.encode(&mut buf).unwrap();
        let mut pos = 0;
        assert_eq!(PhysPayload::decode(&buf, &mut pos).unwrap(), p);
        assert_eq!(pos, buf.len());
        let mut buf = Vec::new();
        PhysPayload::Checkpoint.encode(&mut buf).unwrap();
        let mut pos = 0;
        assert_eq!(
            PhysPayload::decode(&buf, &mut pos).unwrap(),
            PhysPayload::Checkpoint
        );
    }

    #[test]
    fn fuzzy_checkpoint_roundtrip() {
        for dirty in [
            vec![],
            vec![(PageId(3), Lsn(7))],
            vec![(PageId(0), Lsn(1)), (PageId(9), Lsn(40))],
        ] {
            let p = PhysPayload::FuzzyCheckpoint {
                dirty,
                redo_start: Lsn(5),
            };
            let mut buf = Vec::new();
            p.encode(&mut buf).unwrap();
            let mut pos = 0;
            assert_eq!(PhysPayload::decode(&buf, &mut pos).unwrap(), p);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn fuzzy_checkpoint_publishes_without_flushing() {
        let mut db = db();
        let ops = PageWorkloadSpec {
            blind_fraction: 1.0,
            n_ops: 12,
            ..Default::default()
        }
        .generate(9);
        for op in &ops {
            Physical.execute(&mut db, op).unwrap();
        }
        let dirty_before = db.pool.dirty_pages();
        assert!(!dirty_before.is_empty());
        let ck = Physical::checkpoint_fuzzy(&mut db)
            .unwrap()
            .expect("no faults armed: publication must land");
        assert_eq!(
            db.pool.dirty_pages(),
            dirty_before,
            "fuzzy: nothing flushed"
        );
        assert_eq!(db.disk.master(), ck);
        let analysis = Physical::analyze(&db).unwrap();
        assert_eq!(analysis.checkpoint_lsn, Some(ck));
        assert!(analysis.dirty.is_some());
        db.crash();
        let stats = Physical.recover(&mut db).unwrap();
        assert_eq!(stats.checkpoint_lsn, Some(ck));
        let mut expect = std::collections::BTreeMap::new();
        for op in &ops {
            for &c in &op.writes {
                expect.insert(c, op.output(c, &[]));
            }
        }
        for (c, v) in expect {
            assert_eq!(db.read_cell(c).unwrap(), v);
        }
    }

    #[test]
    fn crash_without_any_flush_recovers_nothing() {
        let mut db = db();
        let ops = PageWorkloadSpec {
            blind_fraction: 1.0,
            n_ops: 5,
            ..Default::default()
        }
        .generate(1);
        for op in &ops {
            Physical.execute(&mut db, op).unwrap();
        }
        db.crash();
        let stats = Physical.recover(&mut db).unwrap();
        assert_eq!(stats.replay_count(), 0);
        assert_eq!(
            db.volatile_theory_state(),
            redo_theory::state::State::zeroed()
        );
    }

    #[test]
    fn durable_log_replays_fully() {
        let mut db = db();
        let ops = PageWorkloadSpec {
            blind_fraction: 1.0,
            n_ops: 8,
            ..Default::default()
        }
        .generate(2);
        let mut expect = std::collections::BTreeMap::new();
        for op in &ops {
            Physical.execute(&mut db, op).unwrap();
            for &c in &op.writes {
                expect.insert(c, op.output(c, &[]));
            }
        }
        db.log.flush_all();
        db.crash();
        let stats = Physical.recover(&mut db).unwrap();
        assert_eq!(stats.replay_count(), 8);
        for (c, v) in expect {
            assert_eq!(db.read_cell(c).unwrap(), v);
        }
    }

    #[test]
    fn checkpoint_truncates_recovery_scan() {
        let mut db = db();
        let ops = PageWorkloadSpec {
            blind_fraction: 1.0,
            n_ops: 10,
            ..Default::default()
        }
        .generate(3);
        for op in &ops[..6] {
            Physical.execute(&mut db, op).unwrap();
        }
        Physical.checkpoint(&mut db).unwrap();
        for op in &ops[6..] {
            Physical.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        db.crash();
        let stats = Physical.recover(&mut db).unwrap();
        assert_eq!(
            stats.replay_count(),
            4,
            "only post-checkpoint records replay"
        );
        // And the state is complete nevertheless.
        for op in &ops {
            for &c in &op.writes {
                assert_ne!(db.read_cell(c).unwrap(), 0);
            }
        }
    }

    #[test]
    fn replay_is_idempotent() {
        let mut db = db();
        let ops = PageWorkloadSpec {
            blind_fraction: 1.0,
            n_ops: 6,
            ..Default::default()
        }
        .generate(4);
        for op in &ops {
            Physical.execute(&mut db, op).unwrap();
        }
        db.log.flush_all();
        // Flush some pages so replay partially overlaps installed state.
        let stable = db.log.stable_lsn();
        db.pool.flush_all(&mut db.disk, stable).unwrap();
        db.crash();
        Physical.recover(&mut db).unwrap();
        let once = db.volatile_theory_state();
        db.crash();
        Physical.recover(&mut db).unwrap();
        assert_eq!(db.volatile_theory_state(), once);
    }
}
