//! Steady-state property test for the adaptive checkpoint/flush
//! controller: under sustained Zipf-skewed traffic with randomized
//! cache chaos, the closed control loop must keep the *restart suffix*
//! (stable log bytes a crash would force recovery to scan) near its
//! configured budget, publish incremental delta checkpoints once a
//! chain exists, and still recover the exact issue-order state after a
//! crash — byte-for-byte the same state an open-loop fixed-period
//! daemon recovers from the identical operation stream.
//!
//! The twin runs share one workload: a controller-driven database
//! (`control_tick` on a cadence) and a fixed-period one
//! (`checkpoint_tick` on the same cadence, no targeted flushing — the
//! open-loop daemon this PR's controller replaces). Checkpoint records
//! differ between the twins, but checkpoints never change operation
//! semantics, so both crashed images must recover to the workload's
//! issue-order model.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use redo_methods::concurrent::SharedDb;
use redo_methods::control::{Controller, RestartBudget};
use redo_methods::generalized::Generalized;
use redo_methods::RecoveryMethod;
use redo_sim::db::Geometry;
use redo_workload::pages::{Cell, PageId, PageOp, PageOpKind, SlotId};
use redo_workload::Zipf;

/// One Zipf-skewed physiological read-modify-write stream, plus the
/// issue-order model of its final cell values.
fn zipf_stream(
    seed: u64,
    n_ops: u32,
    n_pages: usize,
    s: f64,
) -> (Vec<PageOp>, BTreeMap<Cell, u64>) {
    let zipf = Zipf::new(n_pages, s);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cells: BTreeMap<Cell, u64> = BTreeMap::new();
    let mut ops = Vec::with_capacity(n_ops as usize);
    for i in 0..n_ops {
        let cell = Cell {
            page: PageId(zipf.sample(&mut rng) as u32),
            slot: SlotId(0),
        };
        let op = PageOp {
            id: i,
            kind: PageOpKind::Physiological,
            reads: vec![cell],
            writes: vec![cell],
            f_seed: 9,
        };
        let reads = vec![cells.get(&cell).copied().unwrap_or(0)];
        cells.insert(cell, op.output(cell, &reads));
        ops.push(op);
    }
    (ops, cells)
}

/// Crashes `shared`, recovers it through the generalized analysis
/// (which folds delta chains and reads full snapshots alike), and
/// asserts the recovered image equals the issue-order model.
fn crash_and_check(
    shared: SharedDb,
    model: &BTreeMap<Cell, u64>,
    twin: &str,
) -> Result<(), TestCaseError> {
    let mut db = shared.crash();
    let stats = Generalized
        .recover(&mut db)
        .expect("steady-state image recovers");
    prop_assert!(
        stats.checkpoint_lsn.is_some(),
        "{twin}: a long run must have published a checkpoint"
    );
    for (&cell, &v) in model {
        prop_assert_eq!(
            db.read_cell(cell).expect("recovered cell readable"),
            v,
            "{} diverged from the issue order at {:?}",
            twin,
            cell
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// The closed loop vs the open loop, on one workload. The
    /// controller twin must end with its estimated restart suffix under
    /// twice the budget (the slack covers the ops issued since the last
    /// tick); the fixed-period twin is the recovery oracle: both
    /// crashed images recover to the identical issue-order state, so
    /// the delta chains and targeted flushes changed restart *cost*,
    /// never restart *semantics*.
    #[test]
    fn controller_bounds_suffix_and_matches_fixed_daemon_after_crash(
        seed in 0u64..10_000,
        zipf_centi_s in 30u32..120,
        cadence in 3u32..9,
        chaos_centi_p in 0u32..40,
    ) {
        let zipf_s = f64::from(zipf_centi_s) / 100.0;
        let chaos_p = f64::from(chaos_centi_p) / 100.0;
        let (ops, model) = zipf_stream(seed, 240, 40, zipf_s);
        let budget = RestartBudget {
            max_suffix_bytes: 2048,
            max_dirty_pages: 8,
            ..Default::default()
        };
        let controller = Controller::new(budget.clone());

        let adaptive = SharedDb::new(Geometry { slots_per_page: 8 });
        let fixed = SharedDb::new(Geometry { slots_per_page: 8 });
        let mut chaos_a = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut chaos_f = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        for (i, op) in ops.iter().enumerate() {
            adaptive.execute(op).expect("adaptive execute");
            fixed.execute(op).expect("fixed execute");
            adaptive.flusher_tick(&mut chaos_a, chaos_p).expect("chaos");
            fixed.flusher_tick(&mut chaos_f, chaos_p).expect("chaos");
            if (i as u32 + 1).is_multiple_of(cadence) {
                adaptive.commit_tick();
                fixed.commit_tick();
                adaptive.control_tick(&controller).expect("control tick");
                fixed.checkpoint_tick().expect("fixed checkpoint");
            }
        }
        adaptive.commit_tick();
        fixed.commit_tick();
        adaptive.control_tick(&controller).expect("final control tick");

        let est = adaptive.restart_estimate();
        prop_assert!(
            est.suffix_bytes < 2 * budget.max_suffix_bytes,
            "controller failed to bound the restart suffix: {} bytes (budget {})",
            est.suffix_bytes,
            budget.max_suffix_bytes
        );
        let stats = adaptive.daemon_stats();
        prop_assert!(
            stats.checkpoints_taken > 0,
            "the budget never fired a checkpoint: {stats:?}"
        );
        if stats.checkpoints_taken > 1 {
            prop_assert!(
                stats.deltas_published > 0,
                "follow-up checkpoints must ride the delta chain: {stats:?}"
            );
        }
        prop_assert!(
            stats.truncated_bytes > 0,
            "the truncation horizon never advanced: {stats:?}"
        );

        adaptive.shutdown();
        fixed.shutdown();
        crash_and_check(adaptive, &model, "adaptive twin")?;
        crash_and_check(fixed, &model, "fixed-period twin")?;
    }
}
