//! End-to-end acceptance tests for the file-backed durable substrate:
//! out-of-band damage inflicted on the *real files* (a `truncate(2)` of
//! the WAL at an arbitrary byte, a bit flipped in a page file) must be
//! observed on reopen exactly as the crash model promises — a
//! repairable torn tail, a checksum-detected torn page — and an
//! interrupted checkpoint-pointer publication must leave the old master
//! in force.
//!
//! These tests talk to the durable layer the way an external adversary
//! would (through the filesystem), not through the simulator's fault
//! hooks, so they pin down the on-disk formats themselves.

use std::fs::OpenOptions;

use redo_sim::backend::BackendKind;
use redo_sim::db::{Db, Geometry};
use redo_sim::disk::Disk;
use redo_sim::fault::{FaultKind, FaultPlan};
use redo_sim::page::Page;
use redo_sim::wal::{codec, LogManager, LogPayload, FRAME_HEADER};
use redo_sim::{SimError, SimResult};
use redo_theory::log::Lsn;
use redo_workload::pages::{PageId, SlotId};

#[derive(Clone, Debug, PartialEq)]
struct Blob(Vec<u8>);

impl LogPayload for Blob {
    fn encode(&self, buf: &mut Vec<u8>) -> SimResult<()> {
        codec::put_u32(buf, codec::count_u16("blob len", self.0.len())?.into());
        buf.extend_from_slice(&self.0);
        Ok(())
    }
    fn decode(input: &[u8], pos: &mut usize) -> SimResult<Self> {
        let n = codec::get_u32(input, pos)? as usize;
        let end = *pos + n;
        if end > input.len() {
            return Err(SimError::Corrupt(*pos));
        }
        let body = input[*pos..end].to_vec();
        *pos = end;
        Ok(Blob(body))
    }
}

fn blob(i: u64, len: usize) -> Blob {
    Blob((0..len).map(|j| (i as u8).wrapping_add(j as u8)).collect())
}

/// A fully flushed file-backed log with `n` records of varied sizes.
fn file_log(n: u64) -> LogManager<Blob> {
    let mut log: LogManager<Blob> = LogManager::on(BackendKind::File);
    for i in 0..n {
        log.append(blob(i, 3 + (i as usize % 5) * 7))
            .expect("encodable");
    }
    log.flush_all();
    log
}

#[test]
fn out_of_band_wal_truncation_repairs_to_the_longest_whole_prefix() {
    // Cut the real wal.log at several non-boundary offsets; reopen must
    // see exactly the records whose frames survived whole, and
    // repair_tail must discard the dangling fragment.
    for (keep_frames, extra) in [(0usize, 5usize), (2, 7), (2, FRAME_HEADER + 2), (5, 1)] {
        let mut log = file_log(6);
        let all = log.decode_stable().expect("clean log decodes");
        assert_eq!(all.len(), 6);
        // Walk `keep_frames` length headers to find the boundary, then
        // cut strictly inside the next frame.
        let bytes = log.stable_bytes().to_vec();
        let mut cut = 0usize;
        for _ in 0..keep_frames {
            let len = u32::from_le_bytes(bytes[cut + 8..cut + 12].try_into().unwrap()) as usize;
            cut += FRAME_HEADER + len;
        }
        let cut = (cut + extra).min(bytes.len() - 1);

        let path = log.path().expect("file backend has a path").to_path_buf();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("wal.log exists")
            .set_len(cut as u64)
            .expect("truncate");

        log.crash();
        let dropped = log.repair_tail();
        assert!(dropped > 0, "a mid-frame cut leaves a fragment to drop");
        let survived = log.decode_stable().expect("repaired log decodes");
        // The cut may fall inside frame keep_frames (dropping it) — the
        // surviving prefix is exactly the whole frames below the cut.
        assert_eq!(survived.len(), keep_frames);
        assert_eq!(survived, all[..keep_frames].to_vec());
        assert_eq!(
            std::fs::metadata(&path).expect("wal.log exists").len() as usize,
            log.stable_bytes().len(),
            "repair_tail truncates the file itself, not just the mirror"
        );
    }
}

#[test]
fn appends_group_commit_under_one_fsync() {
    let mut log: LogManager<Blob> = LogManager::on(BackendKind::File);
    let mut last = Lsn(0);
    for i in 0..10 {
        last = log.append(blob(i, 8)).expect("encodable");
    }
    assert_eq!(log.syncs(), 0, "appends alone must not touch the file");
    log.flush(last);
    assert_eq!(log.syncs(), 1, "a flush batch is one write + one fsync");
    assert_eq!(log.stable_count(), 10);
}

#[test]
fn out_of_band_page_bit_flip_reads_as_torn_until_repaired() {
    let spp: u16 = 8;
    let id = PageId(5);
    let mut disk = Disk::on(BackendKind::File);
    let mut page = Page::new(spp);
    page.set_lsn(Lsn(9));
    for s in 0..spp {
        page.set(SlotId(s), 0xA5A5_0000 + u64::from(s));
    }
    disk.write_page(id, page.clone());

    // Flip one bit in the page body, behind the simulator's back.
    let file = disk
        .dir()
        .expect("file backend has a directory")
        .join("pages")
        .join("p5.pg");
    let mut bytes = std::fs::read(&file).expect("page file exists");
    let body = bytes.len() - 1;
    bytes[body] ^= 0x04;
    std::fs::write(&file, &bytes).expect("rewrite page file");

    disk.crash(); // reopen: the mirror is relearned from the files
    match disk.read_page(id, spp) {
        Err(SimError::TornPage(p)) => assert_eq!(p, id),
        other => panic!("expected TornPage, got {other:?}"),
    }
    assert_eq!(disk.torn_pages(), vec![id]);

    let repaired = disk.repair_torn();
    assert_eq!(repaired, vec![id]);
    let after = disk.read_page(id, spp).expect("repaired page reads");
    // No journaled pre-image exists for out-of-band damage, so repair
    // scrubs the file to a self-consistent image; the page must at
    // least read cleanly and keep its honest (flipped) content.
    assert_eq!(after.lsn(), Lsn(9));
}

#[test]
fn interrupted_master_publication_keeps_the_old_pointer() {
    let mut db: Db<Blob> = Db::on(BackendKind::File, Geometry { slots_per_page: 4 }, None);
    db.log.append(blob(0, 4)).expect("encodable");
    db.log.append(blob(1, 4)).expect("encodable");
    db.log.flush_all();
    db.disk.set_master(Lsn(2)).unwrap();
    assert_eq!(db.disk.master(), Lsn(2));

    // Die between the temp write and the rename: the new master is
    // fully written to master.tmp but never published.
    db.arm_faults(FaultPlan {
        at: 1,
        kind: FaultKind::Clean,
    });
    db.disk.set_master(Lsn(9)).unwrap();
    assert!(db.fault_tripped());
    let dir = db
        .disk
        .dir()
        .expect("file backend has a directory")
        .to_path_buf();
    assert!(
        dir.join("master.tmp").exists(),
        "the interrupted publication leaves its temp file behind"
    );

    db.crash();
    assert_eq!(
        db.disk.master(),
        Lsn(2),
        "reopen must keep the old pointer: rename is the commit point"
    );
    assert!(
        !dir.join("master.tmp").exists(),
        "reopen sweeps pre-commit debris"
    );

    // The machine is alive again: the next publication goes through.
    db.disk.set_master(Lsn(9)).unwrap();
    assert_eq!(db.disk.master(), Lsn(9));
}
